//! Vendored minimal reimplementation of the `serde_json` API surface
//! used by this workspace: [`to_string`], [`to_string_pretty`] and
//! [`from_str`] over the vendored `serde` data model (see
//! `vendor/README.md` for why the workspace vendors its dependencies).
//!
//! Formatting matches what the workspace needs for reproducibility:
//! object fields print in struct declaration order, floats use Rust's
//! shortest-round-trip `Display` (so parsing the output recovers the
//! exact bits — the crates.io `float_roundtrip` feature), and pretty
//! output indents with two spaces like crates.io `serde_json`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching crates.io `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// crates.io signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// crates.io signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the document does not
/// match the target type's shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Value::U64(v) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Value::F64(v) => write_f64(out, *v),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

/// Writes an `f64` so that parsing the text recovers the exact bits
/// (Rust's `Display` is shortest-round-trip). Non-finite values have no
/// JSON representation and print as `null`, like crates.io `serde_json`.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's `Display` is shortest-round-trip and never uses
        // exponent notation.
        let text = format!("{v}");
        out.push_str(&text);
        // Keep the number recognizably floating-point, matching
        // crates.io serde_json (`1.0`, not `1`).
        if !text.contains('.') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    fn new(s: &'s str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON document"));
        }
        Ok(value)
    }

    fn err(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&-2.0f64).unwrap(), "-2.0");
        assert_eq!(to_string(&vec![0.5f64, 3.0]).unwrap(), "[0.5,3.0]");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &v in &[
            0.1f64,
            0.30000000000000004,
            1.0 / 3.0,
            6.02214076e23,
            5e-324,
            f64::MAX,
        ] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {s}");
        }
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\tüñíçødé \\ backslash";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<f64>("--5").is_err());
    }

    #[test]
    fn nested_objects_parse() {
        let doc = r#"{"a": {"b": [1, 2.5, null]}, "c": "x"}"#;
        let v: serde::Value = Parser::new(doc).parse_document().unwrap();
        match v {
            serde::Value::Object(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
