//! Vendored minimal reimplementation of the `serde` API surface used by
//! this workspace.
//!
//! The build environment has no network access and no crates.io mirror,
//! so the workspace vendors its external dependencies (see
//! `vendor/README.md`). This crate intentionally implements a *reduced*
//! data model: [`Serialize`] lowers a value to an in-memory JSON
//! [`Value`] tree and [`Deserialize`] rebuilds a value from one. The
//! only consumer in the workspace is the vendored `serde_json`, and the
//! only producer of impls is the vendored `serde_derive`, so the
//! crates.io `Serializer`/`Deserializer` visitor machinery is not
//! needed.
//!
//! Supported shapes (everything the workspace derives):
//!
//! * named-field structs, with container-level `#[serde(default)]`;
//! * newtype (single-field tuple) structs, always transparent — which
//!   also covers `#[serde(transparent)]`;
//! * enums with unit, struct and newtype variants, externally tagged
//!   exactly like crates.io serde (`"Unit"`, `{"Variant": {..}}`,
//!   `{"Variant": value}`);
//! * primitives, `String`, `Option<T>`, `Vec<T>` and `[T; N]`.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Error produced when a [`Value`] does not match the shape expected by
/// a [`Deserialize`] impl.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, validating the tree shape.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match the expected
    /// shape (wrong type, missing field, unknown enum variant, ...).
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match *value {
                    Value::U64(v) => v,
                    Value::I64(v) if v >= 0 => v as u64,
                    _ => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, found {value}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match *value {
                    Value::I64(v) => v,
                    Value::U64(v) => i64::try_from(v).map_err(|_| {
                        DeError::custom(format!("integer {v} out of range"))
                    })?,
                    _ => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {value}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::F64(v) => Ok(v as $t),
                    Value::I64(v) => Ok(v as $t),
                    Value::U64(v) => Ok(v as $t),
                    // JSON cannot represent non-finite floats; serde_json
                    // writes them as null, so accept null as NaN here.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::custom(format!(
                        "expected number, found {value}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::custom(format!("expected bool, found {value}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::custom(format!("expected string, found {value}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom(format!("expected array, found {value}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            Value::Array(items) => Err(DeError::custom(format!(
                "expected array of length {N}, found length {}",
                items.len()
            ))),
            _ => Err(DeError::custom(format!("expected array, found {value}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Helpers used by derive-generated code.
// ---------------------------------------------------------------------

/// Support routines for code generated by the vendored `serde_derive`.
///
/// Not part of the public API contract; only derive output calls these.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Looks up a required struct field.
    pub fn req_field<T: Deserialize>(
        obj: &[(String, Value)],
        ty: &str,
        name: &str,
    ) -> Result<T, DeError> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Err(DeError::custom(format!("missing field `{name}` in {ty}"))),
        }
    }

    /// Looks up an optional struct field (container `#[serde(default)]`).
    pub fn opt_field<'o>(obj: &'o [(String, Value)], name: &str) -> Option<&'o Value> {
        obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Views a value as an object, or errors.
    pub fn as_object<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
        match value {
            Value::Object(fields) => Ok(fields),
            _ => Err(DeError::custom(format!(
                "expected object for {ty}, found {value}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn numeric_cross_acceptance() {
        // Integers in JSON deserialize into floats and vice versa when
        // in range, matching crates.io serde_json behavior.
        assert_eq!(f64::from_value(&Value::I64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::I64(3)).unwrap(), 3);
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn non_finite_floats_pass_through_null() {
        assert!(matches!(f64::NAN.to_value(), Value::F64(v) if v.is_nan()));
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [4usize, 5];
        assert_eq!(<[usize; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        assert!(<[usize; 2]>::from_value(&vec![1u64].to_value()).is_err());
        let opt: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn shape_errors_mention_what_was_found() {
        let err = bool::from_value(&Value::U64(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
    }
}
