//! The in-memory data-model tree shared by the vendored `serde` and
//! `serde_json`.

use std::fmt;

/// A JSON-shaped value.
///
/// Object fields keep insertion order so serialization is deterministic
/// (struct field order), which the workspace's bit-identical-output
/// guarantees rely on.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction or exponent).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind())
    }
}
