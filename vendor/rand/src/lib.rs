//! Vendored minimal reimplementation of the `rand` 0.8 API surface used
//! by this workspace.
//!
//! The build environment has no network access and no crates.io mirror,
//! so the workspace vendors the handful of external crates it depends
//! on (see `vendor/README.md`). This crate provides:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] with the blanket impl that
//!   makes `&mut dyn RngCore` usable with [`Rng::gen_range`] and
//!   [`Rng::gen_bool`];
//! * [`rngs::SmallRng`]: xoshiro256++ seeded via SplitMix64, matching
//!   the construction rand 0.8 uses on 64-bit targets.
//!
//! Determinism is the only contract the simulator relies on: equal
//! seeds give equal streams on every platform. The streams are *not*
//! guaranteed to be byte-identical to crates.io `rand`.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same construction rand 0.8 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can serve as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

uint_range_impl!(u8, u16, u32, u64, usize);

macro_rules! int_range_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the exclusive bound.
                if v >= self.end {
                    <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// Uniform value in `0..span` (`span > 0`) via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Compare against p scaled to the full 64-bit range.
        let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < threshold
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        unit_f64(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    ///
    /// Matches the role of `rand::rngs::SmallRng` on 64-bit targets:
    /// cheap per-draw cost and excellent statistical quality for
    /// simulation workloads. Equal seeds give bit-identical streams.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro state must not be all zero; the SplitMix64 path
            // never produces it, but from_seed accepts arbitrary bytes.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen_range(0u64..10);
        assert!(v < 10);
        let _ = dynamic.gen_bool(0.5);
    }

    #[test]
    fn uniform_u64_covers_all_residues() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
