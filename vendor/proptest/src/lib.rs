//! Vendored minimal reimplementation of the `proptest` API surface used
//! by this workspace (see `vendor/README.md` for why dependencies are
//! vendored).
//!
//! Differences from crates.io `proptest`, deliberate for a small
//! offline stub:
//!
//! * cases are generated from a deterministic per-test seed (hash of
//!   the test path and case index), so failures reproduce exactly on
//!   re-run;
//! * no shrinking — a failing case panics with the generated inputs
//!   printed, which is enough to reproduce and debug;
//! * only the strategies the workspace uses are provided: numeric
//!   ranges, tuples of strategies and [`collection::vec`].

use std::fmt::Debug;
use std::ops::Range;

/// Runner configuration (case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a case body.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.below(span) as i128)) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * unit;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

pub mod collection {
    //! Collection strategies.

    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation.

    /// SplitMix64-based generator seeded from the test path and case
    /// index, so every case is reproducible without stored state.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for case `case` of test `path`.
        pub fn deterministic(path: &str, case: u32) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..span` (`span > 0`, fits in `u64`).
        pub fn below(&mut self, span: u128) -> u64 {
            debug_assert!(span > 0 && span <= u128::from(u64::MAX) + 1);
            if span == u128::from(u64::MAX) + 1 {
                return self.next_u64();
            }
            let span = span as u64;
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Single-import convenience, mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. Mirrors the crates.io `proptest!` surface
/// used in this workspace: an optional `#![proptest_config(..)]` inner
/// attribute followed by `fn name(arg in strategy, ...) { body }` items
/// (each carrying its own `#[test]` attribute).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(__path, __case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!("case ", "{}", $(": ", stringify!($arg), " = {:?}",)*),
                        __case, $(&$arg),*
                    );
                    let __case_fn = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    };
                    let __result = __case_fn();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case failed: {e}\n  {}", __inputs);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            // No shrinking machinery: a discarded case simply passes.
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_are_deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        let s = 5usize..50;
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("v", 0);
        let s = crate::collection::vec((0u64..10, 0usize..3), 1..6);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 10 && b < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_in_range(x in 3usize..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn assume_discards(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u8..3) {
            prop_assert_ne!(x, 200);
        }
    }
}
