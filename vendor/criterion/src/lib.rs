//! Vendored minimal reimplementation of the `criterion` API surface
//! used by this workspace (see `vendor/README.md`).
//!
//! Provides the harness pieces the `crates/bench` targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — with a plain
//! wall-clock measurement loop instead of crates.io criterion's
//! statistical machinery. `--test` mode (what CI smoke runs use)
//! executes each benchmark body once, and a positional argument
//! filters benchmarks by substring, both matching crates.io behavior.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver: configuration plus run/filter state.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments (`--test`, a positional substring
    /// filter; other flags cargo passes are ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Cargo passes `--bench`; value-taking flags of the real
                // harness are skipped together with their value.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                flag if flag.starts_with('-') => {}
                name => self.filter = Some(name.to_owned()),
            }
        }
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run_one<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            iterations: if self.test_mode {
                1
            } else {
                self.sample_size as u64
            },
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
        } else {
            let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
            println!(
                "{id:<60} time: {per_iter} ns/iter ({} iters)",
                bencher.iterations
            );
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(id, f);
        self
    }

    /// Ends the group (kept for API parity; dropping works too).
    pub fn finish(self) {}
}

/// Times the benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring crates.io criterion's
/// two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = { $config }.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("counts", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn groups_prefix_ids_and_share_config() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0u64;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(5);
            g.bench_function("inner", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 5);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 1,
            test_mode: false,
            filter: Some("match".to_owned()),
        };
        let mut runs = 0u64;
        c.bench_function("no", |b| b.iter(|| runs += 1));
        c.bench_function("does_match", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(21) * 2, 42);
    }
}
