//! Vendored minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the workspace's offline build (see `vendor/README.md`).
//!
//! Implemented without `syn`/`quote`: the item is parsed directly from
//! the `proc_macro` token stream and the impl is emitted as source text.
//! Supported shapes — exactly what the workspace derives:
//!
//! * named-field structs, honoring container `#[serde(default)]`;
//! * newtype (single-field tuple) structs, always transparent (also
//!   covering `#[serde(transparent)]`);
//! * enums with unit, struct and newtype variants (externally tagged).
//!
//! Unsupported shapes (generics, multi-field tuple structs, field-level
//! serde attributes, ...) produce a compile-time panic naming the item,
//! so accidental use is loud rather than silently wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored reduced data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_serialize(&item))
}

/// Derives `serde::Deserialize` (vendored reduced data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_deserialize(&item))
}

fn emit(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}

// ---------------------------------------------------------------------
// Item model.
// ---------------------------------------------------------------------

struct Item {
    name: String,
    /// Container `#[serde(default)]`.
    default: bool,
    shape: Shape,
}

enum Shape {
    /// Named-field struct with the listed field names.
    Struct(Vec<String>),
    /// Single-field tuple struct.
    Newtype,
    /// Enum with the listed variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Struct variant with the listed field names.
    Struct(Vec<String>),
    /// Single-field tuple variant.
    Newtype,
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let mut default = false;

    // Container attributes and visibility.
    loop {
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(attr)) = tokens.get(pos + 1) {
                    for flag in serde_attr_flags(attr.stream()) {
                        match flag.as_str() {
                            "default" => default = true,
                            // Newtype structs are transparent either way.
                            "transparent" => {}
                            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
                        }
                    }
                }
                pos += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported");
        }
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream(), &name))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    panic!(
                        "serde_derive: tuple struct `{name}` has {arity} fields; \
                         only newtype (1-field) tuple structs are supported"
                    );
                }
                Shape::Newtype
            }
            other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: `{other}` items are not supported"),
    };

    Item {
        name,
        default,
        shape,
    }
}

/// Extracts the flag idents of a `serde(...)` attribute body, e.g.
/// `[serde(default)]` yields `["default"]`. Returns empty for other
/// attributes (`doc`, `non_exhaustive`, `default`, ...).
fn serde_attr_flags(attr_body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = attr_body.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .filter_map(|t| match t {
                    TokenTree::Ident(id) => Some(id.to_string()),
                    _ => None,
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

/// Parses `a: T, b: U, ...` field lists (struct bodies and struct
/// variants), returning the field names in declaration order.
fn parse_named_fields(body: TokenStream, owner: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(pos) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => pos += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    pos += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            pos += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.get(pos) else {
            if pos >= tokens.len() {
                break;
            }
            panic!(
                "serde_derive: expected field name in `{owner}`, found {:?}",
                tokens.get(pos)
            );
        };
        fields.push(field.to_string());
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field in `{owner}`, found {other:?}"),
        }
        // Skip the type up to the next top-level comma. Commas inside
        // grouped tokens are invisible here; only `<...>` generics need
        // explicit depth tracking.
        let mut angle_depth = 0usize;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Counts top-level fields of a tuple-struct body `(T, U, ...)`.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0usize;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => arity += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            arity -= 1;
        }
    }
    arity
}

fn parse_variants(body: TokenStream, owner: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        // Skip variant attributes (e.g. `#[default]` from derive(Default)).
        while let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '#' {
                pos += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(variant)) = tokens.get(pos) else {
            if pos >= tokens.len() {
                break;
            }
            panic!(
                "serde_derive: expected variant name in `{owner}`, found {:?}",
                tokens.get(pos)
            );
        };
        let name = variant.to_string();
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream(), &format!("{owner}::{name}")))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    panic!(
                        "serde_derive: tuple variant `{owner}::{name}` has {arity} fields; \
                         only newtype (1-field) tuple variants are supported"
                    );
                }
                pos += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '=' {
                panic!("serde_derive: explicit discriminants in `{owner}` are not supported");
            }
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------

fn obj_literal(pairs: &[(String, String)]) -> String {
    let entries: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!(
        "::serde::Value::Object(::std::vec::Vec::from([{}]))",
        entries.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })
                .collect();
            obj_literal(&pairs)
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<(String, String)> = fields
                                .iter()
                                .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                                .collect();
                            let inner = obj_literal(&pairs);
                            let tagged = obj_literal(&[(vname.clone(), inner)]);
                            format!("{name}::{vname} {{ {binds} }} => {tagged},")
                        }
                        VariantKind::Newtype => {
                            let tagged = obj_literal(&[(
                                vname.clone(),
                                "::serde::Serialize::to_value(__v0)".to_owned(),
                            )]);
                            format!("{name}::{vname}(__v0) => {tagged},")
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) if item.default => {
            let assigns: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "if let ::std::option::Option::Some(__v) = \
                           ::serde::__private::opt_field(__fields, \"{f}\") {{ \
                             __out.{f} = ::serde::Deserialize::from_value(__v)?; \
                         }}"
                    )
                })
                .collect();
            format!(
                "let __fields = ::serde::__private::as_object(value, \"{name}\")?; \
                 let mut __out = <{name} as ::std::default::Default>::default(); \
                 {} \
                 ::std::result::Result::Ok(__out)",
                assigns.join(" ")
            )
        }
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::__private::req_field(__fields, \"{name}\", \"{f}\")?,")
                })
                .collect();
            format!(
                "let __fields = ::serde::__private::as_object(value, \"{name}\")?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::__private::req_field(\
                                       __inner, \"{name}::{vname}\", \"{f}\")?,"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => {{ \
                               let __inner = ::serde::__private::as_object(\
                                 __value, \"{name}::{vname}\")?; \
                               ::std::result::Result::Ok({name}::{vname} {{ {} }}) \
                             }}",
                            inits.join(" ")
                        ));
                    }
                    VariantKind::Newtype => tagged_arms.push(format!(
                        "\"{vname}\" => ::std::result::Result::Ok(\
                           {name}::{vname}(::serde::Deserialize::from_value(__value)?)),"
                    )),
                }
            }
            format!(
                "match value {{ \
                   ::serde::Value::String(__s) => match __s.as_str() {{ \
                     {} \
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                       ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                   }}, \
                   ::serde::Value::Object(__fields) if __fields.len() == 1 => {{ \
                     let (__tag, __value) = &__fields[0]; \
                     match __tag.as_str() {{ \
                       {} \
                       __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                     }} \
                   }}, \
                   __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"invalid value for enum {name}: {{__other}}\"))), \
                 }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}
