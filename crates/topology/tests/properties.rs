//! Property-based tests for the topology crate: structural invariants,
//! closed-form-vs-BFS agreement, and cross-family orderings for
//! arbitrary node counts.

use noc_topology::{
    analytical, check_topology_invariants, graph::Graph, metrics, IrregularMesh, NodeId, RectMesh,
    Ring, Spidergon, Topology,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_invariants(n in 3usize..80) {
        let ring = Ring::new(n).unwrap();
        check_topology_invariants(&ring);
        prop_assert_eq!(ring.num_links(), analytical::ring_link_count(n));
    }

    #[test]
    fn spidergon_invariants(half in 2usize..40) {
        let n = half * 2;
        let sg = Spidergon::new(n).unwrap();
        check_topology_invariants(&sg);
        prop_assert_eq!(sg.num_links(), analytical::spidergon_link_count(n));
    }

    #[test]
    fn mesh_invariants(m in 1usize..9, n in 2usize..9) {
        let mesh = RectMesh::new(m, n).unwrap();
        check_topology_invariants(&mesh);
        prop_assert_eq!(mesh.num_links(), analytical::mesh_link_count(m, n));
    }

    #[test]
    fn irregular_mesh_invariants(cols in 2usize..8, extra in 0usize..30) {
        let n = cols + extra;
        let mesh = IrregularMesh::new(cols, n).unwrap();
        check_topology_invariants(&mesh);
        prop_assert_eq!(mesh.num_nodes(), n);
    }

    #[test]
    fn ring_closed_forms_match_bfs(n in 3usize..60) {
        let ring = Ring::new(n).unwrap();
        let apd = ring.graph().all_pairs_distances();
        prop_assert_eq!(apd.diameter() as usize, analytical::ring_diameter(n));
        prop_assert!(
            (apd.mean_distance_paper() - analytical::ring_average_distance(n)).abs() < 1e-9
        );
    }

    #[test]
    fn spidergon_closed_forms_match_bfs(half in 2usize..32) {
        let n = half * 2;
        let sg = Spidergon::new(n).unwrap();
        let apd = sg.graph().all_pairs_distances();
        prop_assert_eq!(apd.diameter() as usize, analytical::spidergon_diameter(n));
        let sum: u32 = apd.row(0).iter().sum();
        prop_assert_eq!(sum as usize, analytical::spidergon_distance_sum(n));
    }

    #[test]
    fn spidergon_closed_form_distance_is_shortest_path(half in 2usize..24) {
        let n = half * 2;
        let sg = Spidergon::new(n).unwrap();
        let apd = sg.graph().all_pairs_distances();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    sg.distance(NodeId::new(a), NodeId::new(b)) as u32,
                    apd.distance(a, b)
                );
            }
        }
    }

    #[test]
    fn mesh_manhattan_is_shortest_path(m in 1usize..7, n in 2usize..7) {
        let mesh = RectMesh::new(m, n).unwrap();
        let apd = mesh.graph().all_pairs_distances();
        for a in mesh.node_ids() {
            for b in mesh.node_ids() {
                prop_assert_eq!(
                    mesh.manhattan_distance(a, b) as u32,
                    apd.distance(a.index(), b.index())
                );
            }
        }
    }

    #[test]
    fn irregular_manhattan_is_shortest_path(cols in 2usize..7, extra in 0usize..20) {
        let mesh = IrregularMesh::new(cols, cols + extra).unwrap();
        let apd = mesh.graph().all_pairs_distances();
        for a in mesh.node_ids() {
            for b in mesh.node_ids() {
                prop_assert_eq!(
                    mesh.manhattan_distance(a, b) as u32,
                    apd.distance(a.index(), b.index())
                );
            }
        }
    }

    #[test]
    fn spidergon_never_worse_than_ring(half in 2usize..30) {
        let n = half * 2;
        let ring = metrics::average_distance(&Ring::new(n).unwrap());
        let sg = metrics::average_distance(&Spidergon::new(n).unwrap());
        prop_assert!(sg <= ring + 1e-12);
        let ring_d = metrics::diameter(&Ring::new(n).unwrap());
        let sg_d = metrics::diameter(&Spidergon::new(n).unwrap());
        prop_assert!(sg_d <= ring_d);
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality(n in 3usize..30, seed in 0u64..1000) {
        // Random connected graph: ring backbone + random chords.
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let mut state = seed.wrapping_add(12345);
        for _ in 0..n / 2 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (state >> 33) as usize % n;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = (state >> 33) as usize % n;
            if a != b {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(n, &edges);
        let apd = g.all_pairs_distances();
        for a in 0..n {
            prop_assert_eq!(apd.distance(a, a), 0);
            for b in 0..n {
                prop_assert_eq!(apd.distance(a, b), apd.distance(b, a));
                for c in 0..n {
                    prop_assert!(
                        apd.distance(a, c) <= apd.distance(a, b) + apd.distance(b, c)
                    );
                }
            }
        }
    }
}
