//! The paper's mesh families for Figures 2 and 3: *ideal* meshes
//! (`sqrt(N) x sqrt(N)`, only defined at perfect squares) versus *real*
//! meshes (what you actually get for an arbitrary node count).
//!
//! The point of the paper's Figures 2-3 is that real mesh metrics
//! fluctuate unpredictably between the ideal-mesh curve and the ring
//! curve as `N` varies, while Spidergon stays smooth and competitive.
//! Two "real mesh" constructions are provided:
//!
//! * [`RealMeshStrategy::BalancedRectangle`]: the most square full
//!   rectangle with exactly `N` nodes ([`crate::RectMesh::balanced`]) —
//!   degenerates to a `1 x N` line for prime `N`;
//! * [`RealMeshStrategy::IrregularGrid`]: a `ceil(sqrt(N))`-wide grid
//!   with a partial last row ([`crate::IrregularMesh::realistic`]) —
//!   the irregular-mesh family the paper highlights as its novelty.

use crate::{IrregularMesh, RectMesh, Topology, TopologyError};

/// How to realize a 2D mesh for a node count `N` that is not a perfect
/// square.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RealMeshStrategy {
    /// Most square full rectangle `m x n = N` with `m <= n`.
    BalancedRectangle,
    /// `ceil(sqrt(N))`-wide grid filled row by row (irregular mesh).
    IrregularGrid,
}

impl RealMeshStrategy {
    /// Builds the real mesh for `num_nodes` under this strategy.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_nodes < 2`.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_topology::real_mesh::RealMeshStrategy;
    ///
    /// let t = RealMeshStrategy::BalancedRectangle.build(14)?;
    /// assert_eq!(t.label(), "mesh-2x7");
    /// let t = RealMeshStrategy::IrregularGrid.build(14)?;
    /// assert_eq!(t.label(), "irregular-4w-14");
    /// # Ok::<(), noc_topology::TopologyError>(())
    /// ```
    pub fn build(self, num_nodes: usize) -> Result<Box<dyn Topology>, TopologyError> {
        match self {
            RealMeshStrategy::BalancedRectangle => Ok(Box::new(RectMesh::balanced(num_nodes)?)),
            RealMeshStrategy::IrregularGrid => Ok(Box::new(IrregularMesh::realistic(num_nodes)?)),
        }
    }
}

/// Returns the ideal `k x k` mesh if `num_nodes` is a perfect square,
/// `None` otherwise.
///
/// # Examples
///
/// ```
/// use noc_topology::real_mesh::ideal_mesh;
/// use noc_topology::Topology;
///
/// assert_eq!(ideal_mesh(16).unwrap().label(), "mesh-4x4");
/// assert!(ideal_mesh(15).is_none());
/// ```
pub fn ideal_mesh(num_nodes: usize) -> Option<RectMesh> {
    let k = (num_nodes as f64).sqrt().round() as usize;
    if k * k == num_nodes && k >= 2 {
        RectMesh::new(k, k).ok()
    } else {
        None
    }
}

/// The interpolated "ideal mesh" curve value used when plotting Figure 2
/// for a node count that is not a perfect square: metrics of the
/// fictitious `sqrt(N) x sqrt(N)` mesh evaluated with real-valued
/// `sqrt(N)`.
///
/// Diameter: `2 (sqrt(N) - 1)`; average distance (paper approximation):
/// `2 sqrt(N) / 3`.
pub fn ideal_mesh_diameter_continuous(num_nodes: usize) -> f64 {
    2.0 * ((num_nodes as f64).sqrt() - 1.0)
}

/// Continuous ideal-mesh average-distance curve, `2 sqrt(N) / 3`.
pub fn ideal_mesh_average_distance_continuous(num_nodes: usize) -> f64 {
    2.0 * (num_nodes as f64).sqrt() / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn ideal_mesh_only_at_perfect_squares() {
        assert!(ideal_mesh(4).is_some());
        assert!(ideal_mesh(9).is_some());
        assert!(ideal_mesh(36).is_some());
        assert!(ideal_mesh(8).is_none());
        assert!(ideal_mesh(2).is_none());
        // 1x1 is rejected as degenerate.
        assert!(ideal_mesh(1).is_none());
    }

    #[test]
    fn strategies_build_requested_node_counts() {
        for n in 4..40usize {
            for strategy in [
                RealMeshStrategy::BalancedRectangle,
                RealMeshStrategy::IrregularGrid,
            ] {
                let t = strategy.build(n).unwrap();
                assert_eq!(t.num_nodes(), n, "{strategy:?} n={n}");
            }
        }
    }

    #[test]
    fn real_mesh_diameter_fluctuates_above_ideal() {
        // For prime N the balanced rectangle is a line whose diameter
        // exceeds even the ring's: the paper's "unpredictable
        // fluctuation".
        let line = RealMeshStrategy::BalancedRectangle.build(13).unwrap();
        assert_eq!(metrics::diameter(line.as_ref()), 12);
        let irr = RealMeshStrategy::IrregularGrid.build(13).unwrap();
        assert!(metrics::diameter(irr.as_ref()) < 12);
    }

    #[test]
    fn continuous_curves_match_exact_at_squares() {
        for k in 2..9usize {
            let n = k * k;
            let exact = metrics::diameter(&ideal_mesh(n).unwrap()) as f64;
            assert!((ideal_mesh_diameter_continuous(n) - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn irregular_grid_tracks_ideal_curve_closely() {
        // The irregular real mesh should stay within a couple of hops of
        // the continuous ideal curve for moderate N.
        for n in 6..=48usize {
            let irr = RealMeshStrategy::IrregularGrid.build(n).unwrap();
            let d = metrics::diameter(irr.as_ref()) as f64;
            let ideal = ideal_mesh_diameter_continuous(n);
            assert!(d >= ideal - 1.0, "n={n}: {d} vs ideal {ideal}");
            assert!(d <= ideal + 3.0, "n={n}: {d} vs ideal {ideal}");
        }
    }
}
