//! 2D torus topology: a mesh with wrap-around links — one of the
//! "additional NoC topologies" the paper's future work points at.
//!
//! The torus removes the mesh's edge asymmetry (every node has degree
//! 4, like the Spidergon's constant degree 3 but richer) at the cost of
//! long wrap-around wires and, like the ring, the need for a second
//! virtual channel to break the wrap-induced channel-dependency cycles.

use crate::{Direction, NodeId, Topology, TopologyError, TopologyKind};

/// An `cols x rows` 2D torus: the rectangular mesh of
/// [`crate::RectMesh`] plus wrap-around links in both dimensions.
///
/// Nodes are numbered row-major like the mesh. Every node has exactly
/// four links; the network has `4 * N` unidirectional links, diameter
/// `floor(cols/2) + floor(rows/2)` and an average distance equal to the
/// sum of the two ring averages.
///
/// Both dimensions must have at least three nodes — with two, the wrap
/// link would duplicate an existing link.
///
/// # Examples
///
/// ```
/// use noc_topology::{Direction, NodeId, Topology, Torus};
///
/// let torus = Torus::new(4, 4)?;
/// assert_eq!(torus.num_nodes(), 16);
/// // Wrap-around: east from the last column returns to the first.
/// assert_eq!(
///     torus.neighbor(NodeId::new(3), Direction::East),
///     Some(NodeId::new(0)),
/// );
/// assert_eq!(torus.num_links(), 64);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Torus {
    cols: usize,
    rows: usize,
}

impl Torus {
    /// Minimum extent of each dimension.
    pub const MIN_DIM: usize = 3;

    /// Creates a `cols x rows` torus.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroDimension`] if a dimension is zero
    /// and [`TopologyError::TooFewNodes`] if either dimension is below
    /// three.
    pub fn new(cols: usize, rows: usize) -> Result<Self, TopologyError> {
        if cols == 0 || rows == 0 {
            return Err(TopologyError::ZeroDimension);
        }
        if cols < Self::MIN_DIM || rows < Self::MIN_DIM {
            return Err(TopologyError::TooFewNodes {
                requested: cols * rows,
                minimum: Self::MIN_DIM * Self::MIN_DIM,
            });
        }
        Ok(Torus { cols, rows })
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// `(col, row)` coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        self.check(node);
        (node.index() % self.cols, node.index() / self.cols)
    }

    /// Node at `(col, row)` with coordinates taken modulo the extents.
    pub fn node_at_wrapped(&self, col: usize, row: usize) -> NodeId {
        NodeId::new((row % self.rows) * self.cols + (col % self.cols))
    }

    /// Torus (wrap-aware Manhattan) distance between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn torus_distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        dx.min(self.cols - dx) + dy.min(self.rows - dy)
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.cols * self.rows,
            "node {node} out of range for {}x{} torus",
            self.cols,
            self.rows
        );
    }
}

impl Topology for Torus {
    fn num_nodes(&self) -> usize {
        self.cols * self.rows
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Torus
    }

    fn directions(&self, node: NodeId) -> Vec<Direction> {
        self.check(node);
        vec![
            Direction::North,
            Direction::South,
            Direction::East,
            Direction::West,
        ]
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (col, row) = self.coords(node);
        match dir {
            Direction::North => Some(self.node_at_wrapped(col, row + self.rows - 1)),
            Direction::South => Some(self.node_at_wrapped(col, row + 1)),
            Direction::East => Some(self.node_at_wrapped(col + 1, row)),
            Direction::West => Some(self.node_at_wrapped(col + self.cols - 1, row)),
            _ => None,
        }
    }

    fn label(&self) -> String {
        format!("torus-{}x{}", self.cols, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_topology_invariants;

    #[test]
    fn construction_bounds() {
        assert!(Torus::new(2, 4).is_err());
        assert!(Torus::new(4, 2).is_err());
        assert!(Torus::new(0, 4).is_err());
        assert!(Torus::new(3, 3).is_ok());
        assert!(Torus::new(8, 8).is_ok());
    }

    #[test]
    fn invariants_hold() {
        for (m, n) in [(3usize, 3usize), (3, 5), (4, 4), (5, 3), (6, 4)] {
            check_topology_invariants(&Torus::new(m, n).unwrap());
        }
    }

    #[test]
    fn constant_degree_four_and_4n_links() {
        let t = Torus::new(4, 5).unwrap();
        for v in t.node_ids() {
            assert_eq!(t.degree(v), 4);
        }
        assert_eq!(t.num_links(), 4 * 20);
    }

    #[test]
    fn wraparound_neighbors() {
        let t = Torus::new(4, 3).unwrap();
        // Node 0 = (0, 0).
        assert_eq!(
            t.neighbor(NodeId::new(0), Direction::West),
            Some(NodeId::new(3))
        );
        assert_eq!(
            t.neighbor(NodeId::new(0), Direction::North),
            Some(NodeId::new(8))
        );
        assert_eq!(t.neighbor(NodeId::new(0), Direction::Across), None);
    }

    #[test]
    fn torus_distance_matches_bfs() {
        for (m, n) in [(3usize, 3usize), (4, 4), (5, 3), (4, 6)] {
            let t = Torus::new(m, n).unwrap();
            let apd = t.graph().all_pairs_distances();
            for a in t.node_ids() {
                for b in t.node_ids() {
                    assert_eq!(
                        t.torus_distance(a, b) as u32,
                        apd.distance(a.index(), b.index()),
                        "{m}x{n} {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn diameter_is_sum_of_half_extents() {
        for (m, n) in [(4usize, 4usize), (5, 5), (6, 4), (3, 7)] {
            let t = Torus::new(m, n).unwrap();
            assert_eq!(
                t.graph().all_pairs_distances().diameter() as usize,
                m / 2 + n / 2
            );
        }
    }

    #[test]
    fn torus_beats_equal_sized_mesh_on_distance() {
        use crate::{metrics, RectMesh};
        let torus = Torus::new(4, 4).unwrap();
        let mesh = RectMesh::new(4, 4).unwrap();
        assert!(metrics::average_distance(&torus) < metrics::average_distance(&mesh));
    }

    #[test]
    fn label_and_accessors() {
        let t = Torus::new(3, 5).unwrap();
        assert_eq!(t.label(), "torus-3x5");
        assert_eq!(t.cols(), 3);
        assert_eq!(t.rows(), 5);
        assert_eq!(t.coords(NodeId::new(7)), (1, 2));
    }
}
