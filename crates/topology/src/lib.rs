//! NoC topologies for the DATE 2006 Ring / Spidergon / 2D-Mesh study.
//!
//! This crate provides the three topology families compared by Bononi &
//! Concer, *"Simulation and Analysis of Network on Chip Architectures:
//! Ring, Spidergon and 2D Mesh"* (DATE 2006), plus the graph machinery
//! and analytical formulas needed to reproduce the paper's Figures 2-3:
//!
//! * [`Ring`] — bidirectional ring, `2N` links, degree 2;
//! * [`Spidergon`] — ring plus across links, `3N` links, degree 3;
//! * [`RectMesh`] — full rectangular `m x n` mesh;
//! * [`IrregularMesh`] — mesh with a partially-filled last row (the
//!   paper's "real / irregular mesh" novelty);
//! * [`Torus`] — mesh plus wrap-around links (a future-work topology);
//! * [`graph`] — CSR adjacency + BFS, exact all-pairs distances;
//! * [`metrics`] — exact diameter / average distance / link counts;
//! * [`analytical`] — the paper's closed forms (with a documented
//!   erratum correction for Spidergon `E[D]`);
//! * [`real_mesh`] — ideal-vs-real mesh construction strategies.
//!
//! # Quick start
//!
//! ```
//! use noc_topology::{metrics, Ring, Spidergon, Topology};
//!
//! let ring = Ring::new(16)?;
//! let spidergon = Spidergon::new(16)?;
//!
//! // Spidergon halves the ring diameter with one extra link per node.
//! assert_eq!(metrics::diameter(&ring), 8);
//! assert_eq!(metrics::diameter(&spidergon), 4);
//! assert_eq!(ring.num_links(), 32);
//! assert_eq!(spidergon.num_links(), 48);
//! # Ok::<(), noc_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// This crate's version, folded into `noc_core`'s cache fingerprints
/// so cached results never survive a topology-layer change.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

pub mod analytical;
mod error;
pub mod graph;
mod ids;
mod irregular;
mod mesh;
pub mod metrics;
pub mod real_mesh;
mod ring;
mod spidergon;
mod topology;
mod torus;

pub use error::TopologyError;
pub use ids::{Direction, NodeId};
pub use irregular::IrregularMesh;
pub use mesh::RectMesh;
pub use ring::Ring;
pub use spidergon::Spidergon;
pub use topology::{check_topology_invariants, NodeIds, Topology, TopologyKind};
pub use torus::Torus;
