//! Spidergon topology (paper Figure 1.a): a ring enriched with across
//! links between diametrically opposite nodes.

use crate::{Direction, NodeId, Topology, TopologyError, TopologyKind};

/// The STMicroelectronics Spidergon topology with `N` (even) nodes.
///
/// Node `i` has three links: clockwise to `(i + 1) mod N`,
/// counterclockwise to `(i - 1) mod N`, and across to
/// `(i + N/2) mod N`. Key properties highlighted by the paper:
///
/// * regular topology with **constant node degree 3** (simple router
///   hardware);
/// * vertex symmetry and edge transitivity;
/// * `3N` unidirectional links;
/// * diameter `ceil(N/4)` under Across-First routing.
///
/// # Examples
///
/// ```
/// use noc_topology::{Direction, NodeId, Spidergon, Topology};
///
/// let sg = Spidergon::new(12)?;
/// assert_eq!(sg.num_nodes(), 12);
/// assert_eq!(sg.opposite(NodeId::new(2)), NodeId::new(8));
/// assert_eq!(
///     sg.neighbor(NodeId::new(2), Direction::Across),
///     Some(NodeId::new(8)),
/// );
/// assert_eq!(sg.num_links(), 36);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Spidergon {
    num_nodes: usize,
}

impl Spidergon {
    /// Minimum supported node count (below four nodes the across link
    /// duplicates a ring link).
    pub const MIN_NODES: usize = 4;

    /// Creates a Spidergon with `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::OddNodeCount`] if `num_nodes` is odd and
    /// [`TopologyError::TooFewNodes`] if `num_nodes < 4`.
    pub fn new(num_nodes: usize) -> Result<Self, TopologyError> {
        if !num_nodes.is_multiple_of(2) {
            return Err(TopologyError::OddNodeCount {
                requested: num_nodes,
            });
        }
        if num_nodes < Self::MIN_NODES {
            return Err(TopologyError::TooFewNodes {
                requested: num_nodes,
                minimum: Self::MIN_NODES,
            });
        }
        Ok(Spidergon { num_nodes })
    }

    /// The node diametrically opposite to `node` (its across neighbor).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn opposite(&self, node: NodeId) -> NodeId {
        self.check(node);
        NodeId::new((node.index() + self.num_nodes / 2) % self.num_nodes)
    }

    /// Ring distance (ignoring across links) between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn ring_distance(&self, a: NodeId, b: NodeId) -> usize {
        self.check(a);
        self.check(b);
        let n = self.num_nodes;
        let cw = (b.index() + n - a.index()) % n;
        cw.min(n - cw)
    }

    /// Shortest-path distance under Across-First routing: direct ring
    /// path if the ring distance is at most `N/4`, otherwise one across
    /// hop plus the ring distance from the opposite node.
    ///
    /// This closed form equals the true shortest-path distance in the
    /// Spidergon graph (validated against BFS in tests).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let direct = self.ring_distance(a, b);
        let via_across = 1 + self.ring_distance(self.opposite(a), b);
        direct.min(via_across)
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for spidergon of {} nodes",
            self.num_nodes
        );
    }
}

impl Topology for Spidergon {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Spidergon
    }

    fn directions(&self, node: NodeId) -> Vec<Direction> {
        self.check(node);
        vec![
            Direction::Clockwise,
            Direction::CounterClockwise,
            Direction::Across,
        ]
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.check(node);
        let n = self.num_nodes;
        match dir {
            Direction::Clockwise => Some(NodeId::new((node.index() + 1) % n)),
            Direction::CounterClockwise => Some(NodeId::new((node.index() + n - 1) % n)),
            Direction::Across => Some(NodeId::new((node.index() + n / 2) % n)),
            _ => None,
        }
    }

    fn label(&self) -> String {
        format!("spidergon-{}", self.num_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_topology_invariants;

    #[test]
    fn construction_bounds() {
        assert!(Spidergon::new(3).is_err());
        assert!(Spidergon::new(7).is_err());
        assert!(Spidergon::new(2).is_err());
        assert!(Spidergon::new(4).is_ok());
        assert!(Spidergon::new(6).is_ok());
        assert!(Spidergon::new(60).is_ok());
    }

    #[test]
    fn invariants_hold_for_many_sizes() {
        for n in (4..40).step_by(2) {
            check_topology_invariants(&Spidergon::new(n).unwrap());
        }
    }

    #[test]
    fn degree_is_constant_three() {
        let sg = Spidergon::new(16).unwrap();
        for v in sg.node_ids() {
            assert_eq!(sg.degree(v), 3);
        }
    }

    #[test]
    fn link_count_is_3n() {
        for n in [4usize, 8, 10, 24, 32] {
            assert_eq!(Spidergon::new(n).unwrap().num_links(), 3 * n);
        }
    }

    #[test]
    fn across_is_an_involution() {
        let sg = Spidergon::new(10).unwrap();
        for v in sg.node_ids() {
            assert_eq!(sg.opposite(sg.opposite(v)), v);
            assert_ne!(sg.opposite(v), v);
        }
    }

    #[test]
    fn closed_form_distance_matches_bfs() {
        for n in [4usize, 6, 8, 10, 12, 16, 20, 22, 30] {
            let sg = Spidergon::new(n).unwrap();
            let apd = sg.graph().all_pairs_distances();
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        sg.distance(NodeId::new(a), NodeId::new(b)) as u32,
                        apd.distance(a, b),
                        "n={n} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn diameter_is_ceil_n_over_4() {
        for n in (4..=64usize).step_by(2) {
            let sg = Spidergon::new(n).unwrap();
            let diam = sg.graph().all_pairs_distances().diameter() as usize;
            assert_eq!(diam, n.div_ceil(4), "n={n}");
        }
    }

    #[test]
    fn vertex_symmetry_of_distance_sums() {
        // Every node sees the same multiset of distances (vertex symmetry).
        let sg = Spidergon::new(14).unwrap();
        let apd = sg.graph().all_pairs_distances();
        let sum0: u32 = apd.row(0).iter().sum();
        for v in 1..14 {
            let sum: u32 = apd.row(v).iter().sum();
            assert_eq!(sum, sum0);
        }
    }

    #[test]
    fn label_mentions_size() {
        assert_eq!(Spidergon::new(8).unwrap().label(), "spidergon-8");
    }
}
