//! Bidirectional ring topology (paper Figure 1.b).

use crate::{Direction, NodeId, Topology, TopologyError, TopologyKind};

/// A bidirectional ring of `N` nodes.
///
/// Node `i` is connected clockwise to `(i + 1) mod N` and counter-
/// clockwise to `(i - 1) mod N`. With channels counted as unidirectional
/// pairs, the ring has `2N` links, diameter `floor(N/2)` and (paper
/// convention) average distance `~ N/4`.
///
/// # Examples
///
/// ```
/// use noc_topology::{Direction, NodeId, Ring, Topology};
///
/// let ring = Ring::new(8)?;
/// assert_eq!(ring.num_nodes(), 8);
/// assert_eq!(
///     ring.neighbor(NodeId::new(7), Direction::Clockwise),
///     Some(NodeId::new(0)),
/// );
/// assert_eq!(ring.num_links(), 16);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ring {
    num_nodes: usize,
}

impl Ring {
    /// Minimum supported node count. Below three nodes the clockwise and
    /// counterclockwise neighbors coincide and the ring degenerates.
    pub const MIN_NODES: usize = 3;

    /// Creates a ring with `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooFewNodes`] if `num_nodes < 3`.
    pub fn new(num_nodes: usize) -> Result<Self, TopologyError> {
        if num_nodes < Self::MIN_NODES {
            return Err(TopologyError::TooFewNodes {
                requested: num_nodes,
                minimum: Self::MIN_NODES,
            });
        }
        Ok(Ring { num_nodes })
    }

    /// Ring distance (shortest of the two directions) between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn ring_distance(&self, a: NodeId, b: NodeId) -> usize {
        let n = self.num_nodes;
        assert!(a.index() < n && b.index() < n, "node out of range");
        let cw = (b.index() + n - a.index()) % n;
        cw.min(n - cw)
    }

    /// Number of clockwise hops from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn clockwise_distance(&self, a: NodeId, b: NodeId) -> usize {
        let n = self.num_nodes;
        assert!(a.index() < n && b.index() < n, "node out of range");
        (b.index() + n - a.index()) % n
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for ring of {} nodes",
            self.num_nodes
        );
    }
}

impl Topology for Ring {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Ring
    }

    fn directions(&self, node: NodeId) -> Vec<Direction> {
        self.check(node);
        vec![Direction::Clockwise, Direction::CounterClockwise]
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.check(node);
        let n = self.num_nodes;
        match dir {
            Direction::Clockwise => Some(NodeId::new((node.index() + 1) % n)),
            Direction::CounterClockwise => Some(NodeId::new((node.index() + n - 1) % n)),
            _ => None,
        }
    }

    fn label(&self) -> String {
        format!("ring-{}", self.num_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_topology_invariants;

    #[test]
    fn construction_bounds() {
        assert!(Ring::new(2).is_err());
        assert!(Ring::new(0).is_err());
        assert!(Ring::new(3).is_ok());
        assert!(Ring::new(64).is_ok());
    }

    #[test]
    fn invariants_hold_for_many_sizes() {
        for n in 3..40 {
            check_topology_invariants(&Ring::new(n).unwrap());
        }
    }

    #[test]
    fn wraparound_neighbors() {
        let r = Ring::new(5).unwrap();
        assert_eq!(
            r.neighbor(NodeId::new(4), Direction::Clockwise),
            Some(NodeId::new(0))
        );
        assert_eq!(
            r.neighbor(NodeId::new(0), Direction::CounterClockwise),
            Some(NodeId::new(4))
        );
        assert_eq!(r.neighbor(NodeId::new(0), Direction::Across), None);
        assert_eq!(r.neighbor(NodeId::new(0), Direction::North), None);
    }

    #[test]
    fn degree_is_constant_two() {
        let r = Ring::new(9).unwrap();
        for v in r.node_ids() {
            assert_eq!(r.degree(v), 2);
        }
    }

    #[test]
    fn link_count_is_2n() {
        for n in [3usize, 4, 8, 15, 32] {
            let r = Ring::new(n).unwrap();
            assert_eq!(r.num_links(), 2 * n);
        }
    }

    #[test]
    fn ring_distance_matches_bfs() {
        for n in [3usize, 6, 7, 12] {
            let r = Ring::new(n).unwrap();
            let apd = r.graph().all_pairs_distances();
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        r.ring_distance(NodeId::new(a), NodeId::new(b)) as u32,
                        apd.distance(a, b),
                        "n={n} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn clockwise_distance_is_directional() {
        let r = Ring::new(8).unwrap();
        assert_eq!(r.clockwise_distance(NodeId::new(6), NodeId::new(1)), 3);
        assert_eq!(r.clockwise_distance(NodeId::new(1), NodeId::new(6)), 5);
        assert_eq!(r.ring_distance(NodeId::new(1), NodeId::new(6)), 3);
    }

    #[test]
    fn label_mentions_size() {
        assert_eq!(Ring::new(12).unwrap().label(), "ring-12");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbor_panics_out_of_range() {
        let r = Ring::new(4).unwrap();
        let _ = r.neighbor(NodeId::new(4), Direction::Clockwise);
    }
}
