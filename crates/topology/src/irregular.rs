//! Irregular 2D mesh: a rectangular grid whose last row is only
//! partially filled.
//!
//! The paper stresses that "regular meshes cannot be always assumed as
//! realistic topologies": a SoC floorplan rarely yields a perfect
//! `m x n` rectangle of IPs. The irregular mesh models the natural
//! fallback — fill a grid row by row and stop when the IPs run out —
//! and is the "real 2D mesh" family whose diameter and average distance
//! fluctuate unpredictably between the ideal-mesh and ring values in
//! Figures 2 and 3.

use crate::{Direction, NodeId, Topology, TopologyError, TopologyKind};

/// A 2D mesh on `num_nodes` nodes laid out row-major on a grid with
/// `cols` columns; all rows are full except possibly the last, which is
/// filled as a prefix.
///
/// Because the partial row is a *prefix*, dimension-order (XY) routing
/// remains valid: moving along X inside any row, then along Y inside any
/// column, never crosses a missing node (columns are filled top-down and
/// rows left-to-right).
///
/// # Examples
///
/// ```
/// use noc_topology::{IrregularMesh, NodeId, Topology};
///
/// // 7 nodes on a 3-wide grid: rows [0,1,2], [3,4,5], [6].
/// let mesh = IrregularMesh::new(3, 7)?;
/// assert_eq!(mesh.num_nodes(), 7);
/// assert_eq!(mesh.rows(), 3);
/// assert_eq!(mesh.coords(NodeId::new(6)), (0, 2));
/// assert_eq!(mesh.degree(NodeId::new(6)), 1); // only its north link
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IrregularMesh {
    cols: usize,
    num_nodes: usize,
}

impl IrregularMesh {
    /// Creates an irregular mesh with `num_nodes` nodes on a grid with
    /// `cols` columns.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroDimension`] if `cols == 0`,
    /// [`TopologyError::TooFewNodes`] if `num_nodes < 2`, and
    /// [`TopologyError::InvalidIrregularShape`] if `num_nodes < cols`
    /// (a single partial row would be a bare line better modeled by
    /// [`crate::RectMesh`] — and would leave declared columns empty).
    pub fn new(cols: usize, num_nodes: usize) -> Result<Self, TopologyError> {
        if cols == 0 {
            return Err(TopologyError::ZeroDimension);
        }
        if num_nodes < 2 {
            return Err(TopologyError::TooFewNodes {
                requested: num_nodes,
                minimum: 2,
            });
        }
        if num_nodes < cols {
            return Err(TopologyError::InvalidIrregularShape { cols, num_nodes });
        }
        Ok(IrregularMesh { cols, num_nodes })
    }

    /// The paper's "real mesh" for an arbitrary node count: a grid with
    /// `ceil(sqrt(N))` columns filled row by row.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_nodes < 2`.
    pub fn realistic(num_nodes: usize) -> Result<Self, TopologyError> {
        if num_nodes < 2 {
            return Err(TopologyError::TooFewNodes {
                requested: num_nodes,
                minimum: 2,
            });
        }
        let cols = (num_nodes as f64).sqrt().ceil() as usize;
        IrregularMesh::new(cols.max(1), num_nodes)
    }

    /// Number of columns of the underlying grid.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of (full or partial) rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.num_nodes.div_ceil(self.cols)
    }

    /// Number of nodes in the last row (equals `cols` when the grid is
    /// a full rectangle).
    #[inline]
    pub fn last_row_len(&self) -> usize {
        let rem = self.num_nodes % self.cols;
        if rem == 0 {
            self.cols
        } else {
            rem
        }
    }

    /// Returns `true` if the grid is actually a full rectangle.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.num_nodes.is_multiple_of(self.cols)
    }

    /// `(col, row)` coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        self.check(node);
        (node.index() % self.cols, node.index() / self.cols)
    }

    /// Node at `(col, row)`, or `None` if that grid position is empty or
    /// outside the grid.
    pub fn node_at(&self, col: usize, row: usize) -> Option<NodeId> {
        if col >= self.cols {
            return None;
        }
        let id = row * self.cols + col;
        if id < self.num_nodes {
            Some(NodeId::new(id))
        } else {
            None
        }
    }

    /// Manhattan distance between two nodes. Because the last row is a
    /// prefix, every XY route of this length exists in the mesh, so this
    /// equals the true shortest-path distance (validated against BFS in
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn manhattan_distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for irregular mesh of {} nodes",
            self.num_nodes
        );
    }
}

impl Topology for IrregularMesh {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::IrregularMesh
    }

    fn directions(&self, node: NodeId) -> Vec<Direction> {
        self.check(node);
        let mut dirs = Vec::with_capacity(4);
        for d in [
            Direction::North,
            Direction::South,
            Direction::East,
            Direction::West,
        ] {
            if self.neighbor(node, d).is_some() {
                dirs.push(d);
            }
        }
        dirs
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (col, row) = self.coords(node);
        match dir {
            Direction::North => row.checked_sub(1).and_then(|r| self.node_at(col, r)),
            Direction::South => self.node_at(col, row + 1),
            Direction::East => self.node_at(col + 1, row),
            Direction::West => col.checked_sub(1).and_then(|c| self.node_at(c, row)),
            _ => None,
        }
    }

    fn label(&self) -> String {
        format!("irregular-{}w-{}", self.cols, self.num_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_topology_invariants;

    #[test]
    fn construction_bounds() {
        assert!(IrregularMesh::new(0, 5).is_err());
        assert!(IrregularMesh::new(3, 1).is_err());
        assert!(IrregularMesh::new(4, 3).is_err()); // partial single row
        assert!(IrregularMesh::new(3, 3).is_ok());
        assert!(IrregularMesh::new(3, 7).is_ok());
    }

    #[test]
    fn invariants_hold_for_many_shapes() {
        for cols in 2..6 {
            for n in cols..30 {
                check_topology_invariants(&IrregularMesh::new(cols, n).unwrap());
            }
        }
    }

    #[test]
    fn full_grid_matches_rect_mesh_distances() {
        use crate::RectMesh;
        let irr = IrregularMesh::new(4, 12).unwrap();
        assert!(irr.is_full());
        let rect = RectMesh::new(4, 3).unwrap();
        assert_eq!(
            irr.graph().all_pairs_distances().total_distance(),
            rect.graph().all_pairs_distances().total_distance()
        );
    }

    #[test]
    fn partial_row_geometry() {
        let mesh = IrregularMesh::new(3, 7).unwrap();
        assert_eq!(mesh.rows(), 3);
        assert_eq!(mesh.last_row_len(), 1);
        assert!(!mesh.is_full());
        assert_eq!(mesh.node_at(1, 2), None); // missing grid position
        assert_eq!(mesh.node_at(0, 2), Some(NodeId::new(6)));
    }

    #[test]
    fn manhattan_distance_equals_bfs_despite_missing_nodes() {
        for (cols, n) in [(3usize, 7usize), (4, 10), (5, 23), (3, 8), (6, 33)] {
            let mesh = IrregularMesh::new(cols, n).unwrap();
            let apd = mesh.graph().all_pairs_distances();
            for a in mesh.node_ids() {
                for b in mesh.node_ids() {
                    assert_eq!(
                        mesh.manhattan_distance(a, b) as u32,
                        apd.distance(a.index(), b.index()),
                        "cols={cols} n={n} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn realistic_uses_ceil_sqrt_columns() {
        let mesh = IrregularMesh::realistic(10).unwrap();
        assert_eq!(mesh.cols(), 4);
        assert_eq!(mesh.num_nodes(), 10);
        let mesh = IrregularMesh::realistic(16).unwrap();
        assert_eq!(mesh.cols(), 4);
        assert!(mesh.is_full());
        assert!(IrregularMesh::realistic(1).is_err());
    }

    #[test]
    fn realistic_small_counts_are_valid() {
        for n in 2..50 {
            let mesh = IrregularMesh::realistic(n).unwrap();
            assert_eq!(mesh.num_nodes(), n);
            check_topology_invariants(&mesh);
        }
    }

    #[test]
    fn lone_last_node_has_degree_one() {
        let mesh = IrregularMesh::new(3, 7).unwrap();
        assert_eq!(mesh.degree(NodeId::new(6)), 1);
        assert_eq!(
            mesh.neighbor(NodeId::new(6), Direction::North),
            Some(NodeId::new(3))
        );
        assert_eq!(mesh.neighbor(NodeId::new(6), Direction::East), None);
    }
}
