//! Closed-form topology metrics from Section 2 of the paper.
//!
//! The paper quotes, for a NoC of `N` nodes:
//!
//! | Topology | `ND` | `E[D]` |
//! |---|---|---|
//! | Ring | `floor(N/2)` | `N/4` |
//! | `m x n` Mesh | `m + n - 2` | `(m + n)/3` (approximation) |
//! | Spidergon | `ceil(N/4)` | `(2x^2 + 2x - 1)/N` for `N = 4x`, `(2x^2 + 4x + 1)/N` for `N = 4x + 2` |
//!
//! **Erratum.** The paper's text swaps the two Spidergon `E[D]`
//! numerators. Checking against exact BFS distances (see tests and
//! `DESIGN.md`): for `N = 8` (`x = 2`) the per-node distance sum is 11,
//! which is `2x^2 + 2x - 1`, not `2x^2 + 4x + 1 = 17`; for `N = 10`
//! (`x = 2`) the sum is 17, which is `2x^2 + 4x + 1`. This module
//! implements the corrected assignment; the property tests prove it
//! exact for every even `N`.
//!
//! All `E[D]` values use the paper's normalization — per-source distance
//! sum divided by `N` — which matches
//! [`crate::graph::DistanceMatrix::mean_distance_paper`] for
//! vertex-symmetric topologies.

/// Ring network diameter: `floor(N/2)`.
///
/// # Examples
///
/// ```
/// assert_eq!(noc_topology::analytical::ring_diameter(12), 6);
/// assert_eq!(noc_topology::analytical::ring_diameter(13), 6);
/// ```
pub fn ring_diameter(n: usize) -> usize {
    n / 2
}

/// Ring average distance, paper convention: exactly `N/4` for even `N`,
/// `(N^2 - 1) / (4N)` for odd `N` (which the paper rounds to `N/4`).
pub fn ring_average_distance(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n.is_multiple_of(2) {
        n as f64 / 4.0
    } else {
        ((n * n - 1) as f64) / (4.0 * n as f64)
    }
}

/// Number of unidirectional links of a ring: `2N`.
pub fn ring_link_count(n: usize) -> usize {
    2 * n
}

/// `m x n` mesh network diameter: `(m - 1) + (n - 1) = m + n - 2`.
///
/// # Examples
///
/// ```
/// assert_eq!(noc_topology::analytical::mesh_diameter(4, 6), 8);
/// ```
pub fn mesh_diameter(m: usize, n: usize) -> usize {
    m + n - 2
}

/// The paper's mesh average-distance approximation `(m + n)/3`.
pub fn mesh_average_distance_approx(m: usize, n: usize) -> f64 {
    (m + n) as f64 / 3.0
}

/// Exact mesh average distance over ordered pairs (`src != dst`).
///
/// The mean absolute coordinate difference along a dimension of extent
/// `k` (uniform endpoints) is `(k^2 - 1) / (3k)`; the Manhattan mean is
/// the sum over the two dimensions, rescaled from "all ordered pairs" to
/// "ordered pairs with distinct endpoints".
pub fn mesh_average_distance_exact(m: usize, n: usize) -> f64 {
    let total = (m * n) as f64;
    if total < 2.0 {
        return 0.0;
    }
    let ex = ((m * m - 1) as f64) / (3.0 * m as f64);
    let ey = ((n * n - 1) as f64) / (3.0 * n as f64);
    (ex + ey) * total / (total - 1.0)
}

/// Exact mesh average distance with the paper's `sum / N^2`
/// normalization (includes the zero `src == dst` terms).
pub fn mesh_average_distance_paper(m: usize, n: usize) -> f64 {
    let ex = ((m * m - 1) as f64) / (3.0 * m as f64);
    let ey = ((n * n - 1) as f64) / (3.0 * n as f64);
    ex + ey
}

/// Number of unidirectional links of an `m x n` mesh:
/// `2(m-1)n + 2(n-1)m`.
pub fn mesh_link_count(m: usize, n: usize) -> usize {
    2 * (m - 1) * n + 2 * (n - 1) * m
}

/// Spidergon network diameter: `ceil(N/4)`.
///
/// # Examples
///
/// ```
/// assert_eq!(noc_topology::analytical::spidergon_diameter(16), 4);
/// assert_eq!(noc_topology::analytical::spidergon_diameter(18), 5);
/// ```
pub fn spidergon_diameter(n: usize) -> usize {
    n.div_ceil(4)
}

/// Per-node distance sum of a Spidergon with even `N` (exact, corrected
/// from the paper's swapped formulas; see the module docs).
///
/// * `N = 4x`: `2x^2 + 2x - 1`
/// * `N = 4x + 2`: `2x^2 + 4x + 1`
///
/// # Panics
///
/// Panics if `n` is odd or `n < 4`.
pub fn spidergon_distance_sum(n: usize) -> usize {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "spidergon requires even n >= 4"
    );
    let x = n / 4;
    if n.is_multiple_of(4) {
        2 * x * x + 2 * x - 1
    } else {
        2 * x * x + 4 * x + 1
    }
}

/// Spidergon average distance, paper convention (`sum / N`).
///
/// # Panics
///
/// Panics if `n` is odd or `n < 4`.
pub fn spidergon_average_distance(n: usize) -> f64 {
    spidergon_distance_sum(n) as f64 / n as f64
}

/// Number of unidirectional links of a Spidergon: `3N`.
pub fn spidergon_link_count(n: usize) -> usize {
    3 * n
}

/// Torus network diameter: `floor(m/2) + floor(n/2)`.
///
/// # Examples
///
/// ```
/// assert_eq!(noc_topology::analytical::torus_diameter(4, 4), 4);
/// ```
pub fn torus_diameter(m: usize, n: usize) -> usize {
    m / 2 + n / 2
}

/// Torus average distance, paper convention (`sum / N^2`): the sum of
/// the per-dimension ring averages.
pub fn torus_average_distance(m: usize, n: usize) -> f64 {
    ring_average_distance(m) + ring_average_distance(n)
}

/// Number of unidirectional links of a torus: `4N`.
pub fn torus_link_count(m: usize, n: usize) -> usize {
    4 * m * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RectMesh, Ring, Spidergon, Topology};

    #[test]
    fn ring_formulas_match_bfs() {
        for n in 3..40usize {
            let ring = Ring::new(n).unwrap();
            let apd = ring.graph().all_pairs_distances();
            assert_eq!(apd.diameter() as usize, ring_diameter(n), "n={n}");
            assert!(
                (apd.mean_distance_paper() - ring_average_distance(n)).abs() < 1e-9,
                "n={n}"
            );
            assert_eq!(ring.num_links(), ring_link_count(n));
        }
    }

    #[test]
    fn mesh_formulas_match_bfs() {
        for (m, n) in [(2usize, 4usize), (4, 6), (3, 3), (5, 5), (2, 9), (1, 6)] {
            let mesh = RectMesh::new(m, n).unwrap();
            let apd = mesh.graph().all_pairs_distances();
            assert_eq!(apd.diameter() as usize, mesh_diameter(m, n));
            assert!(
                (apd.mean_distance() - mesh_average_distance_exact(m, n)).abs() < 1e-9,
                "m={m} n={n}"
            );
            assert!(
                (apd.mean_distance_paper() - mesh_average_distance_paper(m, n)).abs() < 1e-9,
                "m={m} n={n}"
            );
            assert_eq!(mesh.num_links(), mesh_link_count(m, n));
        }
    }

    #[test]
    fn mesh_approximation_is_close_for_square_meshes() {
        for k in 2..10usize {
            let approx = mesh_average_distance_approx(k, k);
            let exact = mesh_average_distance_paper(k, k);
            assert!(
                (approx - exact).abs() / exact < 0.35,
                "k={k}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn spidergon_formulas_match_bfs_for_all_even_n() {
        for n in (4..=64usize).step_by(2) {
            let sg = Spidergon::new(n).unwrap();
            let apd = sg.graph().all_pairs_distances();
            assert_eq!(apd.diameter() as usize, spidergon_diameter(n), "n={n}");
            let sum: u32 = apd.row(0).iter().sum();
            assert_eq!(sum as usize, spidergon_distance_sum(n), "n={n}");
            assert!(
                (apd.mean_distance_paper() - spidergon_average_distance(n)).abs() < 1e-9,
                "n={n}"
            );
            assert_eq!(sg.num_links(), spidergon_link_count(n));
        }
    }

    #[test]
    fn paper_erratum_documented_values() {
        // The concrete counterexamples recorded in DESIGN.md.
        assert_eq!(spidergon_distance_sum(8), 11);
        assert_eq!(spidergon_distance_sum(10), 17);
        assert_eq!(spidergon_distance_sum(12), 23);
        assert_eq!(spidergon_distance_sum(16), 39);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn spidergon_sum_rejects_odd() {
        let _ = spidergon_distance_sum(7);
    }
}
