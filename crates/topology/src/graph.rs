//! Minimal undirected graph machinery (CSR adjacency + BFS).
//!
//! The analytical figures of the paper (network diameter and average
//! network distance, Figures 2 and 3) need exact shortest-path distances
//! for every topology and every node count. Rather than trusting the
//! closed-form expressions, everything in [`crate::metrics`] is computed
//! from breadth-first search over this graph, and the closed forms in
//! [`crate::analytical`] are *validated* against it.

use core::fmt;

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// An immutable undirected graph in compressed sparse row form.
///
/// # Examples
///
/// ```
/// use noc_topology::graph::Graph;
///
/// // A triangle.
/// let g = Graph::from_neighbors(3, |v| vec![(v + 1) % 3, (v + 2) % 3]);
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert!(g.is_connected());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    edges: Vec<usize>,
}

impl Graph {
    /// Builds a graph with `n` nodes from a neighbor function.
    ///
    /// `neighbors_of(v)` must return the adjacency list of node `v`;
    /// entries must be valid node indices.
    ///
    /// # Panics
    ///
    /// Panics if a neighbor index is `>= n`.
    pub fn from_neighbors<F>(n: usize, neighbors_of: F) -> Self
    where
        F: Fn(usize) -> Vec<usize>,
    {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for v in 0..n {
            for u in neighbors_of(v) {
                assert!(u < n, "neighbor {u} of node {v} out of range (n = {n})");
                edges.push(u);
            }
            offsets.push(edges.len());
        }
        Graph { offsets, edges }
    }

    /// Builds a graph with `n` nodes from an undirected edge list.
    ///
    /// Each `(u, v)` pair adds both `u -> v` and `v -> u`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edge_list: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edge_list {
            assert!(u < n && v < n, "edge ({u}, {v}) out of range (n = {n})");
            adj[u].push(v);
            adj[v].push(u);
        }
        Graph::from_neighbors(n, |v| adj[v].clone())
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed adjacency entries (twice the undirected edge
    /// count for a symmetric graph).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adjacency list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.edges[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Single-source BFS distances from `src`, in hops.
    ///
    /// Unreachable nodes get [`UNREACHABLE`].
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bfs_distances(&self, src: usize) -> Vec<u32> {
        let n = self.num_nodes();
        assert!(src < n, "source {src} out of range (n = {n})");
        let mut dist = vec![UNREACHABLE; n];
        let mut queue = std::collections::VecDeque::with_capacity(n);
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v];
            for &u in self.neighbors(v) {
                if dist[u] == UNREACHABLE {
                    dist[u] = dv + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path distances (one BFS per node).
    pub fn all_pairs_distances(&self) -> DistanceMatrix {
        let n = self.num_nodes();
        let mut data = Vec::with_capacity(n * n);
        for src in 0..n {
            data.extend_from_slice(&self.bfs_distances(src));
        }
        DistanceMatrix { n, data }
    }

    /// Returns `true` if every node is reachable from node 0 (or the
    /// graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != UNREACHABLE)
    }

    /// Returns `true` if the adjacency relation is symmetric.
    pub fn is_symmetric(&self) -> bool {
        (0..self.num_nodes()).all(|v| {
            self.neighbors(v)
                .iter()
                .all(|&u| self.neighbors(u).contains(&v))
        })
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("num_nodes", &self.num_nodes())
            .field("num_directed_edges", &self.num_directed_edges())
            .finish()
    }
}

/// Dense `n x n` matrix of pairwise shortest-path distances in hops.
///
/// Produced by [`Graph::all_pairs_distances`].
///
/// # Examples
///
/// ```
/// use noc_topology::graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let d = g.all_pairs_distances();
/// assert_eq!(d.distance(0, 2), 2);
/// assert_eq!(d.eccentricity(1), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<u32>,
}

impl DistanceMatrix {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Distance in hops from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    #[inline]
    pub fn distance(&self, src: usize, dst: usize) -> u32 {
        assert!(src < self.n && dst < self.n, "index out of range");
        self.data[src * self.n + dst]
    }

    /// The row of distances from `src` to every node.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[inline]
    pub fn row(&self, src: usize) -> &[u32] {
        assert!(src < self.n, "index out of range");
        &self.data[src * self.n..(src + 1) * self.n]
    }

    /// Maximum distance from `src` to any node (its eccentricity).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or any node is unreachable.
    pub fn eccentricity(&self, src: usize) -> u32 {
        let m = *self.row(src).iter().max().expect("nonempty row");
        assert_ne!(m, UNREACHABLE, "graph is disconnected");
        m
    }

    /// Network diameter: the maximum shortest-path length over all pairs.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or empty.
    pub fn diameter(&self) -> u32 {
        (0..self.n)
            .map(|v| self.eccentricity(v))
            .max()
            .expect("nonempty graph")
    }

    /// Sum of all pairwise distances (ordered pairs, `src != dst`).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn total_distance(&self) -> u64 {
        let mut sum = 0u64;
        for src in 0..self.n {
            for &d in self.row(src) {
                assert_ne!(d, UNREACHABLE, "graph is disconnected");
                sum += u64::from(d);
            }
        }
        sum
    }

    /// Average distance over ordered pairs with `src != dst`.
    ///
    /// Returns 0 for graphs with fewer than two nodes.
    pub fn mean_distance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.total_distance() as f64 / (self.n * (self.n - 1)) as f64
    }

    /// The paper's normalization of average distance: per-source distance
    /// sum divided by `N` (not `N - 1`), averaged over sources.
    ///
    /// For vertex-symmetric topologies (ring, spidergon) this equals
    /// `sum_dist_from_any_node / N`, the convention used in the paper's
    /// `E[D]` formulas.
    pub fn mean_distance_paper(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.total_distance() as f64 / (self.n * self.n) as f64
    }
}

impl fmt::Debug for DistanceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistanceMatrix")
            .field("num_nodes", &self.n)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    fn cycle_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn path_graph_distances() {
        let g = path_graph(5);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = g.bfs_distances(2);
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn cycle_graph_diameter_is_half() {
        let g = cycle_graph(8);
        let apd = g.all_pairs_distances();
        assert_eq!(apd.diameter(), 4);
        let g = cycle_graph(9);
        assert_eq!(g.all_pairs_distances().diameter(), 4);
    }

    #[test]
    fn disconnected_graph_reports_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        let d = g.bfs_distances(0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn eccentricity_panics_on_disconnected() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        g.all_pairs_distances().eccentricity(0);
    }

    #[test]
    fn mean_distance_of_complete_graph_is_one() {
        let n = 6;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(n, &edges);
        let apd = g.all_pairs_distances();
        assert!((apd.mean_distance() - 1.0).abs() < 1e-12);
        // Paper convention divides by N instead of N-1.
        let expected = (n - 1) as f64 / n as f64;
        assert!((apd.mean_distance_paper() - expected).abs() < 1e-12);
    }

    #[test]
    fn singleton_graph_is_connected_with_zero_mean() {
        let g = Graph::from_edges(1, &[]);
        assert!(g.is_connected());
        let apd = g.all_pairs_distances();
        assert_eq!(apd.mean_distance(), 0.0);
        assert_eq!(apd.diameter(), 0);
    }

    #[test]
    fn from_neighbors_and_from_edges_agree() {
        let a = cycle_graph(6);
        let b = Graph::from_neighbors(6, |v| vec![(v + 1) % 6, (v + 5) % 6]);
        // Same distance structure even if adjacency order differs.
        assert_eq!(
            a.all_pairs_distances().total_distance(),
            b.all_pairs_distances().total_distance()
        );
    }

    #[test]
    fn symmetry_check() {
        assert!(cycle_graph(5).is_symmetric());
        let asym = Graph::from_neighbors(2, |v| if v == 0 { vec![1] } else { vec![] });
        assert!(!asym.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_bad_endpoint() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = cycle_graph(4);
        assert!(!format!("{g:?}").is_empty());
        assert!(!format!("{:?}", g.all_pairs_distances()).is_empty());
    }
}
