//! Exact, BFS-based topology metrics: network diameter, average network
//! distance, link counts.
//!
//! These are the quantities plotted in the paper's Figures 2 and 3. The
//! closed-form counterparts live in [`crate::analytical`]; everything
//! here is computed from the actual graph so it also works for irregular
//! topologies with no closed form.

use crate::graph::DistanceMatrix;
use crate::Topology;

/// Summary of the exact distance structure of a topology.
///
/// # Examples
///
/// ```
/// use noc_topology::{metrics::TopologyMetrics, Spidergon};
///
/// let m = TopologyMetrics::compute(&Spidergon::new(16)?);
/// assert_eq!(m.diameter, 4); // ceil(16 / 4)
/// assert_eq!(m.num_links, 48); // 3N
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TopologyMetrics {
    /// Human-readable topology label.
    pub label: String,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of unidirectional links.
    pub num_links: usize,
    /// Network diameter `ND`: maximum shortest-path length over all
    /// pairs.
    pub diameter: u32,
    /// Average network distance over ordered pairs with `src != dst`.
    pub mean_distance: f64,
    /// Average network distance with the paper's normalization
    /// (distance sum divided by `N^2`, i.e. per-source sum over `N`).
    pub mean_distance_paper: f64,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Maximum node degree.
    pub max_degree: usize,
}

impl TopologyMetrics {
    /// Computes exact metrics for `topo` via all-pairs BFS.
    ///
    /// # Panics
    ///
    /// Panics if the topology is disconnected (all [`Topology`]
    /// implementations in this crate are connected by construction).
    pub fn compute<T: Topology + ?Sized>(topo: &T) -> Self {
        let apd = topo.graph().all_pairs_distances();
        Self::from_distances(topo, &apd)
    }

    /// Computes metrics from a precomputed distance matrix (avoids
    /// repeating the all-pairs BFS when the caller already has one).
    ///
    /// # Panics
    ///
    /// Panics if `apd` has a different node count than `topo`, or the
    /// graph is disconnected.
    pub fn from_distances<T: Topology + ?Sized>(topo: &T, apd: &DistanceMatrix) -> Self {
        assert_eq!(
            apd.num_nodes(),
            topo.num_nodes(),
            "distance matrix does not match topology"
        );
        let degrees: Vec<usize> = topo.node_ids().map(|v| topo.degree(v)).collect();
        TopologyMetrics {
            label: topo.label(),
            num_nodes: topo.num_nodes(),
            num_links: topo.num_links(),
            diameter: apd.diameter(),
            mean_distance: apd.mean_distance(),
            mean_distance_paper: apd.mean_distance_paper(),
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Network diameter `ND` of a topology (maximum shortest path length).
///
/// # Examples
///
/// ```
/// use noc_topology::{metrics, Ring};
///
/// assert_eq!(metrics::diameter(&Ring::new(8)?), 4);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
pub fn diameter<T: Topology + ?Sized>(topo: &T) -> u32 {
    topo.graph().all_pairs_distances().diameter()
}

/// Average network distance `E[D]` over ordered pairs (`src != dst`).
pub fn average_distance<T: Topology + ?Sized>(topo: &T) -> f64 {
    topo.graph().all_pairs_distances().mean_distance()
}

/// Average network distance with the paper's `sum / N` normalization.
pub fn average_distance_paper<T: Topology + ?Sized>(topo: &T) -> f64 {
    topo.graph().all_pairs_distances().mean_distance_paper()
}

/// Number of unidirectional links of a topology.
pub fn link_count<T: Topology + ?Sized>(topo: &T) -> usize {
    topo.num_links()
}

/// Expected per-link channel load under uniform traffic, per unit of
/// aggregate injection: `E[D] * N / num_links` (each of the `N`
/// injected flits occupies `E[D]` link-cycles spread over the links).
///
/// This single number explains the saturation ordering of the paper's
/// Figure 10: the topology with the highest channel load saturates
/// first. Ring: `(N/4)·N / 2N = N/8` (grows linearly). Spidergon:
/// `~(N/8)·N / 3N = N/24` (linear, 3x lower). Mesh: `~(2·sqrt(N)/3)·N /
/// ~4N = sqrt(N)/6` (sub-linear). The mean loads cross between N = 16
/// and N = 24 — which is why the mesh overtakes the Spidergon only
/// "with many nodes", exactly the paper's observation (at equal mean
/// load the mesh still saturates later, because XY spreads traffic
/// more evenly than Across-First, which concentrates it on the across
/// links).
///
/// # Examples
///
/// ```
/// use noc_topology::{metrics, Ring, Spidergon};
///
/// let ring = metrics::uniform_channel_load(&Ring::new(16)?);
/// let spidergon = metrics::uniform_channel_load(&Spidergon::new(16)?);
/// assert!(spidergon < ring / 2.0);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
pub fn uniform_channel_load<T: Topology + ?Sized>(topo: &T) -> f64 {
    let n = topo.num_nodes();
    if n == 0 || topo.num_links() == 0 {
        return 0.0;
    }
    average_distance(topo) * n as f64 / topo.num_links() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IrregularMesh, RectMesh, Ring, Spidergon};

    #[test]
    fn ring_metrics() {
        let m = TopologyMetrics::compute(&Ring::new(12).unwrap());
        assert_eq!(m.diameter, 6);
        assert_eq!(m.num_links, 24);
        assert_eq!(m.min_degree, 2);
        assert_eq!(m.max_degree, 2);
        // E[D] paper convention ~ N/4.
        assert!((m.mean_distance_paper - 3.0).abs() < 1e-12);
    }

    #[test]
    fn spidergon_beats_ring_on_average_distance() {
        for n in (8..=32usize).step_by(2) {
            let ring = average_distance(&Ring::new(n).unwrap());
            let sg = average_distance(&Spidergon::new(n).unwrap());
            assert!(sg < ring, "n={n}: spidergon {sg} !< ring {ring}");
        }
    }

    #[test]
    fn spidergon_diameter_below_real_mesh_up_to_40() {
        // Paper: Spidergon has lower ND than real meshes at least up to
        // 40-45 nodes (here tested against the irregular real mesh).
        for n in (8..=40usize).step_by(2) {
            let sg = diameter(&Spidergon::new(n).unwrap());
            let real = diameter(&IrregularMesh::realistic(n).unwrap());
            assert!(sg <= real, "n={n}: spidergon ND {sg} > real mesh ND {real}");
        }
    }

    #[test]
    fn ideal_mesh_metrics() {
        let m = TopologyMetrics::compute(&RectMesh::new(4, 4).unwrap());
        assert_eq!(m.diameter, 6);
        assert_eq!(m.min_degree, 2);
        assert_eq!(m.max_degree, 4);
        // Exact mean over ordered pairs: 2 * (m^2 - 1) / (3m) scaled.
        let exact = 2.0 * (16.0 - 1.0) / (3.0 * 4.0) * (16.0 / 15.0);
        assert!((m.mean_distance - exact).abs() < 1e-9);
    }

    #[test]
    fn from_distances_matches_compute() {
        let sg = Spidergon::new(10).unwrap();
        let apd = sg.graph().all_pairs_distances();
        assert_eq!(
            TopologyMetrics::from_distances(&sg, &apd),
            TopologyMetrics::compute(&sg)
        );
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_distances_rejects_mismatched_matrix() {
        let sg = Spidergon::new(10).unwrap();
        let other = Ring::new(5).unwrap().graph().all_pairs_distances();
        let _ = TopologyMetrics::from_distances(&sg, &other);
    }

    #[test]
    fn channel_load_predicts_saturation_ordering() {
        // Ring always has the highest load; the spidergon/mesh
        // crossover sits between N = 16 and N = 24 (paper: mesh wins
        // "only with many nodes").
        for n in [8usize, 16, 24, 32] {
            let ring = uniform_channel_load(&Ring::new(n).unwrap());
            let sg = uniform_channel_load(&Spidergon::new(n).unwrap());
            assert!(ring > sg, "n={n}");
        }
        for n in [24usize, 32, 48] {
            let sg = uniform_channel_load(&Spidergon::new(n).unwrap());
            let mesh = uniform_channel_load(&RectMesh::balanced(n).unwrap());
            assert!(sg > mesh, "n={n}: {sg} !> {mesh}");
        }
        let sg8 = uniform_channel_load(&Spidergon::new(8).unwrap());
        let mesh8 = uniform_channel_load(&RectMesh::balanced(8).unwrap());
        assert!(sg8 < mesh8, "at N=8 the spidergon is the lighter one");
        // Spidergon load grows linearly with N, mesh like sqrt(N):
        let sg_ratio = uniform_channel_load(&Spidergon::new(64).unwrap())
            / uniform_channel_load(&Spidergon::new(16).unwrap());
        let mesh_ratio = uniform_channel_load(&RectMesh::balanced(64).unwrap())
            / uniform_channel_load(&RectMesh::balanced(16).unwrap());
        assert!(sg_ratio > 3.0, "{sg_ratio}");
        assert!(mesh_ratio < 2.5, "{mesh_ratio}");
    }

    #[test]
    fn helper_functions_agree_with_struct() {
        let topo = RectMesh::new(3, 4).unwrap();
        let m = TopologyMetrics::compute(&topo);
        assert_eq!(diameter(&topo), m.diameter);
        assert_eq!(average_distance(&topo), m.mean_distance);
        assert_eq!(average_distance_paper(&topo), m.mean_distance_paper);
        assert_eq!(link_count(&topo), m.num_links);
    }
}
