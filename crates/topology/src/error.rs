//! Error types for topology construction and queries.

use core::fmt;

/// Error returned when a topology cannot be constructed or a query is
/// given out-of-range arguments.
///
/// # Examples
///
/// ```
/// use noc_topology::{Ring, TopologyError};
///
/// let err = Ring::new(1).unwrap_err();
/// assert!(matches!(err, TopologyError::TooFewNodes { .. }));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// The requested node count is below the minimum for the family.
    TooFewNodes {
        /// Number of nodes requested.
        requested: usize,
        /// Minimum number of nodes supported by the family.
        minimum: usize,
    },
    /// Spidergon requires an even number of nodes (across links pair
    /// diametrically opposite nodes).
    OddNodeCount {
        /// Number of nodes requested.
        requested: usize,
    },
    /// A mesh dimension was zero.
    ZeroDimension,
    /// A node identifier was outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the topology.
        num_nodes: usize,
    },
    /// An irregular mesh was requested with more nodes than the grid can
    /// hold, or fewer nodes than one full row (which would disconnect
    /// the column structure).
    InvalidIrregularShape {
        /// Number of columns of the grid.
        cols: usize,
        /// Number of nodes requested.
        num_nodes: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyError::TooFewNodes { requested, minimum } => write!(
                f,
                "topology requires at least {minimum} nodes, got {requested}"
            ),
            TopologyError::OddNodeCount { requested } => {
                write!(f, "spidergon requires an even node count, got {requested}")
            }
            TopologyError::ZeroDimension => write!(f, "mesh dimensions must be nonzero"),
            TopologyError::NodeOutOfRange { node, num_nodes } => write!(
                f,
                "node index {node} out of range for topology with {num_nodes} nodes"
            ),
            TopologyError::InvalidIrregularShape { cols, num_nodes } => write!(
                f,
                "irregular mesh with {cols} columns cannot hold {num_nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: [(TopologyError, &str); 5] = [
            (
                TopologyError::TooFewNodes {
                    requested: 1,
                    minimum: 3,
                },
                "at least 3",
            ),
            (TopologyError::OddNodeCount { requested: 7 }, "even"),
            (TopologyError::ZeroDimension, "nonzero"),
            (
                TopologyError::NodeOutOfRange {
                    node: 9,
                    num_nodes: 4,
                },
                "out of range",
            ),
            (
                TopologyError::InvalidIrregularShape {
                    cols: 3,
                    num_nodes: 100,
                },
                "irregular",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg:?}");
        }
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<TopologyError>();
    }
}
