//! The [`Topology`] trait: the contract between topology families and the
//! routing / simulation layers.

use crate::graph::Graph;
use crate::{Direction, NodeId};
use core::fmt;

/// Family tag of a topology, used for dispatching family-specific logic
/// (e.g. default routing algorithm or virtual-channel policy).
///
/// # Examples
///
/// ```
/// use noc_topology::{Ring, Topology, TopologyKind};
///
/// let ring = Ring::new(8)?;
/// assert_eq!(ring.kind(), TopologyKind::Ring);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TopologyKind {
    /// Bidirectional ring.
    Ring,
    /// Spidergon: ring plus across links between opposite nodes.
    Spidergon,
    /// Full rectangular 2D mesh.
    Mesh,
    /// 2D mesh whose last row is only partially filled.
    IrregularMesh,
    /// 2D torus: mesh plus wrap-around links.
    Torus,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologyKind::Ring => "ring",
            TopologyKind::Spidergon => "spidergon",
            TopologyKind::Mesh => "mesh",
            TopologyKind::IrregularMesh => "irregular-mesh",
            TopologyKind::Torus => "torus",
        };
        f.write_str(s)
    }
}

/// A NoC topology: a set of nodes `0..num_nodes` connected by
/// bidirectional links, where each end of a link is identified by a
/// [`Direction`] port at its router.
///
/// All links are bidirectional pairs of unidirectional channels, as in
/// the paper: a Ring with `N` nodes has `2N` unidirectional links, a
/// Spidergon `3N`, and an `m x n` mesh `2(m-1)n + 2(n-1)m`.
///
/// Implementations guarantee:
///
/// * `neighbor(v, d)` is `Some` exactly when `d` is in `directions(v)`;
/// * links are symmetric: if `neighbor(v, d) == Some(u)` then
///   `neighbor(u, d.opposite().unwrap()) == Some(v)`;
/// * the topology is connected.
///
/// The trait is object-safe ([C-OBJECT]); the simulator stores topologies
/// as `Box<dyn Topology>`.
///
/// [C-OBJECT]: https://rust-lang.github.io/api-guidelines/flexibility.html
pub trait Topology: fmt::Debug {
    /// Number of nodes in the topology.
    fn num_nodes(&self) -> usize;

    /// Family tag of this topology.
    fn kind(&self) -> TopologyKind;

    /// Link directions present at `node`, excluding [`Direction::Local`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn directions(&self, node: NodeId) -> Vec<Direction>;

    /// The node reached by leaving `node` through direction `dir`, or
    /// `None` if `node` has no such port.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId>;

    /// Short human-readable name, e.g. `"spidergon-16"` or `"mesh-4x6"`.
    fn label(&self) -> String;

    /// Number of links (ports) at `node`, excluding the local port.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn degree(&self, node: NodeId) -> usize {
        self.directions(node).len()
    }

    /// All neighbors of `node`, in the canonical direction order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.directions(node)
            .into_iter()
            .filter_map(|d| self.neighbor(node, d))
            .collect()
    }

    /// The direction of the port at `from` that leads directly to `to`,
    /// or `None` if the nodes are not adjacent.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    fn direction_to(&self, from: NodeId, to: NodeId) -> Option<Direction> {
        self.directions(from)
            .into_iter()
            .find(|&d| self.neighbor(from, d) == Some(to))
    }

    /// Returns `true` if `node` is a valid node of this topology.
    fn contains(&self, node: NodeId) -> bool {
        node.index() < self.num_nodes()
    }

    /// All unidirectional links as `(from, direction, to)` triples, in
    /// node order then canonical direction order.
    fn links(&self) -> Vec<(NodeId, Direction, NodeId)> {
        let mut out = Vec::new();
        for v in self.node_ids() {
            for d in self.directions(v) {
                if let Some(u) = self.neighbor(v, d) {
                    out.push((v, d, u));
                }
            }
        }
        out
    }

    /// Number of unidirectional links in the topology.
    fn num_links(&self) -> usize {
        self.links().len()
    }

    /// Iterator over all node identifiers (`0..num_nodes`).
    fn node_ids(&self) -> NodeIds {
        NodeIds {
            next: 0,
            end: self.num_nodes(),
        }
    }

    /// Builds the undirected adjacency [`Graph`] of this topology, used
    /// for BFS-based exact metrics.
    fn graph(&self) -> Graph {
        let n = self.num_nodes();
        Graph::from_neighbors(n, |v| {
            self.neighbors(NodeId::new(v))
                .into_iter()
                .map(NodeId::index)
                .collect()
        })
    }
}

/// Iterator over the node identifiers of a topology.
///
/// Created by [`Topology::node_ids`].
#[derive(Clone, Debug)]
pub struct NodeIds {
    next: usize,
    end: usize,
}

impl Iterator for NodeIds {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.end {
            let id = NodeId::new(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.end - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NodeIds {}

/// Checks the structural invariants every [`Topology`] must uphold.
///
/// Intended for use in tests of new topology implementations; panics with
/// a descriptive message on the first violation.
///
/// # Panics
///
/// Panics if link symmetry, direction/port consistency, or connectivity
/// is violated.
///
/// # Examples
///
/// ```
/// use noc_topology::{check_topology_invariants, Spidergon};
///
/// check_topology_invariants(&Spidergon::new(12)?);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
pub fn check_topology_invariants<T: Topology + ?Sized>(topo: &T) {
    let n = topo.num_nodes();
    assert!(n > 0, "topology must have at least one node");
    for v in topo.node_ids() {
        let dirs = topo.directions(v);
        // No duplicate directions, no Local in the link set.
        for (i, &d) in dirs.iter().enumerate() {
            assert_ne!(d, Direction::Local, "{v}: Local must not be a link port");
            assert!(!dirs[i + 1..].contains(&d), "{v}: duplicate direction {d}");
            let u = topo
                .neighbor(v, d)
                .unwrap_or_else(|| panic!("{v}: listed direction {d} has no neighbor"));
            assert!(topo.contains(u), "{v} -> {u} out of range");
            let back = d.opposite().expect("link direction has an opposite");
            assert_eq!(
                topo.neighbor(u, back),
                Some(v),
                "link {v} -[{d}]-> {u} is not symmetric"
            );
        }
        // Directions not listed must have no neighbor.
        for d in Direction::ALL {
            if d != Direction::Local && !dirs.contains(&d) {
                assert_eq!(
                    topo.neighbor(v, d),
                    None,
                    "{v}: unlisted direction {d} has a neighbor"
                );
            }
        }
    }
    assert!(topo.graph().is_connected(), "topology must be connected");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_kind_display_is_stable() {
        assert_eq!(TopologyKind::Ring.to_string(), "ring");
        assert_eq!(TopologyKind::Spidergon.to_string(), "spidergon");
        assert_eq!(TopologyKind::Mesh.to_string(), "mesh");
        assert_eq!(TopologyKind::IrregularMesh.to_string(), "irregular-mesh");
    }

    #[test]
    fn node_ids_iterator_is_exact_size() {
        let it = NodeIds { next: 0, end: 5 };
        assert_eq!(it.len(), 5);
        let ids: Vec<_> = it.collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[0], NodeId::new(0));
        assert_eq!(ids[4], NodeId::new(4));
    }

    #[test]
    fn node_ids_size_hint_shrinks() {
        let mut it = NodeIds { next: 0, end: 3 };
        assert_eq!(it.size_hint(), (3, Some(3)));
        it.next();
        assert_eq!(it.size_hint(), (2, Some(2)));
    }
}
