//! Full rectangular 2D mesh topology (paper Figure 1.c).

use crate::{Direction, NodeId, Topology, TopologyError, TopologyKind};

/// An `m x n` rectangular 2D mesh with `m` columns and `n` rows.
///
/// Nodes are numbered row-major as in the paper's Figure 1.c: node
/// `id = row * cols + col`, so the first row is `0 .. m-1`, the second
/// `m .. 2m-1`, and so on. Interior nodes have degree 4, edge nodes 3 and
/// corner nodes 2.
///
/// With channels counted as unidirectional pairs, an `m x n` mesh has
/// `2(m-1)n + 2(n-1)m` links; its diameter is `(m-1) + (n-1) = m+n-2`.
///
/// # Examples
///
/// ```
/// use noc_topology::{Direction, NodeId, RectMesh, Topology};
///
/// let mesh = RectMesh::new(4, 2)?; // the paper's 2x4 = 8-node mesh
/// assert_eq!(mesh.num_nodes(), 8);
/// assert_eq!(mesh.coords(NodeId::new(5)), (1, 1)); // (col, row)
/// assert_eq!(
///     mesh.neighbor(NodeId::new(1), Direction::South),
///     Some(NodeId::new(5)),
/// );
/// assert_eq!(mesh.num_links(), 2 * 3 * 2 + 2 * 1 * 4);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RectMesh {
    cols: usize,
    rows: usize,
}

impl RectMesh {
    /// Creates an `cols x rows` mesh.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroDimension`] if either dimension is
    /// zero, and [`TopologyError::TooFewNodes`] for the degenerate 1x1
    /// mesh.
    pub fn new(cols: usize, rows: usize) -> Result<Self, TopologyError> {
        if cols == 0 || rows == 0 {
            return Err(TopologyError::ZeroDimension);
        }
        if cols * rows < 2 {
            return Err(TopologyError::TooFewNodes {
                requested: cols * rows,
                minimum: 2,
            });
        }
        Ok(RectMesh { cols, rows })
    }

    /// Creates the most square mesh holding exactly `num_nodes` nodes:
    /// `cols` is the largest divisor of `num_nodes` not exceeding
    /// `sqrt(num_nodes)` (so `cols <= rows`).
    ///
    /// This is the paper's "real mesh" as a full rectangle: for prime
    /// `N` it degenerates to a `1 x N` line, which is exactly the
    /// fluctuation towards ring-like behavior visible in Figures 2-3.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_nodes < 2`.
    pub fn balanced(num_nodes: usize) -> Result<Self, TopologyError> {
        if num_nodes < 2 {
            return Err(TopologyError::TooFewNodes {
                requested: num_nodes,
                minimum: 2,
            });
        }
        let mut best = 1;
        let mut d = 1;
        while d * d <= num_nodes {
            if num_nodes.is_multiple_of(d) {
                best = d;
            }
            d += 1;
        }
        RectMesh::new(best, num_nodes / best)
    }

    /// Number of columns (`m` in the paper).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (`n` in the paper).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns `true` if the mesh is square (`cols == rows`), the
    /// paper's "ideal" shape.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.cols == self.rows
    }

    /// `(col, row)` coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        self.check(node);
        (node.index() % self.cols, node.index() / self.cols)
    }

    /// Node at `(col, row)`, or `None` if outside the grid.
    pub fn node_at(&self, col: usize, row: usize) -> Option<NodeId> {
        if col < self.cols && row < self.rows {
            Some(NodeId::new(row * self.cols + col))
        } else {
            None
        }
    }

    /// Manhattan distance between two nodes (the length of every
    /// dimension-order route).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn manhattan_distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes(),
            "node {node} out of range for {}x{} mesh",
            self.cols,
            self.rows
        );
    }
}

impl Topology for RectMesh {
    fn num_nodes(&self) -> usize {
        self.cols * self.rows
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Mesh
    }

    fn directions(&self, node: NodeId) -> Vec<Direction> {
        let (col, row) = self.coords(node);
        let mut dirs = Vec::with_capacity(4);
        if row > 0 {
            dirs.push(Direction::North);
        }
        if row + 1 < self.rows {
            dirs.push(Direction::South);
        }
        if col + 1 < self.cols {
            dirs.push(Direction::East);
        }
        if col > 0 {
            dirs.push(Direction::West);
        }
        dirs
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (col, row) = self.coords(node);
        match dir {
            Direction::North => row.checked_sub(1).and_then(|r| self.node_at(col, r)),
            Direction::South => self.node_at(col, row + 1),
            Direction::East => self.node_at(col + 1, row),
            Direction::West => col.checked_sub(1).and_then(|c| self.node_at(c, row)),
            _ => None,
        }
    }

    fn label(&self) -> String {
        format!("mesh-{}x{}", self.cols, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_topology_invariants;

    #[test]
    fn construction_bounds() {
        assert!(RectMesh::new(0, 3).is_err());
        assert!(RectMesh::new(3, 0).is_err());
        assert!(RectMesh::new(1, 1).is_err());
        assert!(RectMesh::new(1, 2).is_ok());
        assert!(RectMesh::new(4, 6).is_ok());
    }

    #[test]
    fn invariants_hold_for_various_shapes() {
        for (m, n) in [(1, 4), (2, 2), (2, 4), (3, 3), (4, 6), (5, 2), (8, 8)] {
            check_topology_invariants(&RectMesh::new(m, n).unwrap());
        }
    }

    #[test]
    fn paper_numbering_is_row_major() {
        // Figure 1.c: second row starts at node m.
        let mesh = RectMesh::new(4, 3).unwrap();
        assert_eq!(mesh.node_at(0, 1), Some(NodeId::new(4)));
        assert_eq!(mesh.node_at(3, 2), Some(NodeId::new(11)));
        assert_eq!(mesh.coords(NodeId::new(11)), (3, 2));
        assert_eq!(mesh.node_at(4, 0), None);
    }

    #[test]
    fn degrees_are_2_to_4() {
        let mesh = RectMesh::new(4, 6).unwrap();
        let mut counts = [0usize; 5];
        for v in mesh.node_ids() {
            counts[mesh.degree(v)] += 1;
        }
        assert_eq!(counts[2], 4); // corners
        assert_eq!(counts[3], 2 * (4 - 2) + 2 * (6 - 2)); // edges
        assert_eq!(counts[4], (4 - 2) * (6 - 2)); // interior
    }

    #[test]
    fn link_count_matches_paper_formula() {
        for (m, n) in [(2usize, 4usize), (4, 6), (3, 3), (1, 7), (5, 5)] {
            let mesh = RectMesh::new(m, n).unwrap();
            assert_eq!(mesh.num_links(), 2 * (m - 1) * n + 2 * (n - 1) * m);
        }
    }

    #[test]
    fn manhattan_distance_matches_bfs() {
        let mesh = RectMesh::new(4, 3).unwrap();
        let apd = mesh.graph().all_pairs_distances();
        for a in mesh.node_ids() {
            for b in mesh.node_ids() {
                assert_eq!(
                    mesh.manhattan_distance(a, b) as u32,
                    apd.distance(a.index(), b.index())
                );
            }
        }
    }

    #[test]
    fn diameter_is_m_plus_n_minus_2() {
        for (m, n) in [(2usize, 4usize), (4, 6), (3, 3), (6, 6)] {
            let mesh = RectMesh::new(m, n).unwrap();
            assert_eq!(
                mesh.graph().all_pairs_distances().diameter() as usize,
                m + n - 2
            );
        }
    }

    #[test]
    fn balanced_factorization_picks_most_square() {
        assert_eq!(RectMesh::balanced(12).unwrap().label(), "mesh-3x4");
        assert_eq!(RectMesh::balanced(16).unwrap().label(), "mesh-4x4");
        assert_eq!(RectMesh::balanced(24).unwrap().label(), "mesh-4x6");
        // Prime N degenerates to a line: the "real mesh" fluctuation.
        assert_eq!(RectMesh::balanced(13).unwrap().label(), "mesh-1x13");
        assert!(RectMesh::balanced(1).is_err());
    }

    #[test]
    fn line_mesh_has_path_distances() {
        let line = RectMesh::new(1, 5).unwrap();
        let apd = line.graph().all_pairs_distances();
        assert_eq!(apd.diameter(), 4);
        assert_eq!(
            line.neighbor(NodeId::new(0), Direction::East),
            None,
            "1-wide mesh has no east/west links"
        );
    }

    #[test]
    fn is_square_detects_ideal_meshes() {
        assert!(RectMesh::new(4, 4).unwrap().is_square());
        assert!(!RectMesh::new(2, 4).unwrap().is_square());
    }
}
