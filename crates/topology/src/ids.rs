//! Strongly-typed identifiers used throughout the NoC stack.
//!
//! Node and port indices are plain integers in the underlying data
//! structures, but mixing them up (e.g. indexing a node table with a port
//! number) is a classic source of silent bugs in interconnect simulators.
//! Newtypes make those mix-ups compile errors ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;

/// Identifier of a node (router + attached IP) inside a topology.
///
/// Node identifiers are dense indices in `0..num_nodes`, following the
/// numbering conventions of the paper: consecutive around the ring for
/// Ring/Spidergon, row-major (`id = row * cols + col`) for meshes.
///
/// # Examples
///
/// ```
/// use noc_topology::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> usize {
        id.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Direction of an output (or input) port of a router.
///
/// A single unified direction vocabulary covers all topology families so
/// that routing algorithms and the simulator can stay generic:
///
/// * Ring and Spidergon use [`Clockwise`], [`CounterClockwise`] and (for
///   Spidergon only) [`Across`];
/// * meshes use the four cardinal directions;
/// * [`Local`] is the port towards the attached IP (injection/ejection
///   through the network interface).
///
/// [`Clockwise`]: Direction::Clockwise
/// [`CounterClockwise`]: Direction::CounterClockwise
/// [`Across`]: Direction::Across
/// [`Local`]: Direction::Local
///
/// # Examples
///
/// ```
/// use noc_topology::Direction;
///
/// assert_eq!(Direction::North.opposite(), Some(Direction::South));
/// assert_eq!(Direction::Across.opposite(), Some(Direction::Across));
/// assert_eq!(Direction::Local.opposite(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Direction {
    /// Towards the next node along the ring (increasing node id).
    Clockwise,
    /// Towards the previous node along the ring (decreasing node id).
    CounterClockwise,
    /// Spidergon cross link towards the diametrically opposite node.
    Across,
    /// Mesh link towards the row above (decreasing row index).
    North,
    /// Mesh link towards the row below (increasing row index).
    South,
    /// Mesh link towards the next column (increasing column index).
    East,
    /// Mesh link towards the previous column (decreasing column index).
    West,
    /// Port towards the locally attached IP (network interface).
    Local,
}

impl Direction {
    /// All link directions, in a fixed canonical order ([`Local`] last).
    ///
    /// [`Local`]: Direction::Local
    pub const ALL: [Direction; 8] = [
        Direction::Clockwise,
        Direction::CounterClockwise,
        Direction::Across,
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::Local,
    ];

    /// Returns the direction a flit arriving over this link travels in
    /// from the perspective of the receiving router, i.e. the direction
    /// whose link points back at the sender.
    ///
    /// Returns `None` for [`Direction::Local`], which has no peer router.
    pub const fn opposite(self) -> Option<Direction> {
        match self {
            Direction::Clockwise => Some(Direction::CounterClockwise),
            Direction::CounterClockwise => Some(Direction::Clockwise),
            Direction::Across => Some(Direction::Across),
            Direction::North => Some(Direction::South),
            Direction::South => Some(Direction::North),
            Direction::East => Some(Direction::West),
            Direction::West => Some(Direction::East),
            Direction::Local => None,
        }
    }

    /// Stable small index of this direction, suitable for array indexing.
    pub const fn index(self) -> usize {
        match self {
            Direction::Clockwise => 0,
            Direction::CounterClockwise => 1,
            Direction::Across => 2,
            Direction::North => 3,
            Direction::South => 4,
            Direction::East => 5,
            Direction::West => 6,
            Direction::Local => 7,
        }
    }

    /// Returns `true` for the directions used by ring-like topologies.
    pub const fn is_ring_direction(self) -> bool {
        matches!(self, Direction::Clockwise | Direction::CounterClockwise)
    }

    /// Returns `true` for the four mesh (cardinal) directions.
    pub const fn is_mesh_direction(self) -> bool {
        matches!(
            self,
            Direction::North | Direction::South | Direction::East | Direction::West
        )
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Clockwise => "cw",
            Direction::CounterClockwise => "ccw",
            Direction::Across => "across",
            Direction::North => "north",
            Direction::South => "south",
            Direction::East => "east",
            Direction::West => "west",
            Direction::Local => "local",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_usize() {
        let id = NodeId::new(42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(NodeId::from(42usize), id);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn node_id_debug_and_display_are_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(7)), "NodeId(7)");
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }

    #[test]
    fn direction_opposites_are_involutive() {
        for dir in Direction::ALL {
            if let Some(op) = dir.opposite() {
                assert_eq!(op.opposite(), Some(dir), "opposite of {dir} not involutive");
            } else {
                assert_eq!(dir, Direction::Local);
            }
        }
    }

    #[test]
    fn direction_indices_are_unique_and_dense() {
        let mut seen = [false; 8];
        for dir in Direction::ALL {
            let i = dir.index();
            assert!(i < 8);
            assert!(!seen[i], "duplicate index for {dir}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn direction_class_predicates_partition_link_directions() {
        for dir in Direction::ALL {
            let classes = [
                dir.is_ring_direction(),
                dir == Direction::Across,
                dir.is_mesh_direction(),
                dir == Direction::Local,
            ];
            assert_eq!(
                classes.iter().filter(|&&c| c).count(),
                1,
                "{dir} must belong to exactly one class"
            );
        }
    }

    #[test]
    fn direction_display_is_lowercase() {
        for dir in Direction::ALL {
            let s = dir.to_string();
            assert!(!s.is_empty());
            assert_eq!(s, s.to_lowercase());
        }
    }
}
