//! Hot-spot traffic: the paper's primary SoC scenario, where one or two
//! nodes (e.g. external memory controllers) receive all packets.

use crate::{TrafficError, TrafficPattern};
use noc_topology::NodeId;
use rand::{Rng, RngCore};

use crate::UniformRandom;

/// Single hot-spot traffic (paper Section 3.1.1): one destination node
/// for all packets; every other node is a source.
///
/// The paper's reading: "in today's common SoCs scenarios, when the
/// system memory is external, the behavior obtained with different NoC
/// topologies would converge" — the hot spot's ejection port, not the
/// topology, is the bottleneck.
///
/// # Examples
///
/// ```
/// use noc_traffic::{SingleHotspot, TrafficPattern};
/// use noc_topology::NodeId;
///
/// let pattern = SingleHotspot::new(8, NodeId::new(0))?;
/// assert_eq!(pattern.sources().len(), 7);
/// assert!(pattern.is_destination(NodeId::new(0)));
/// # Ok::<(), noc_traffic::TrafficError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SingleHotspot {
    num_nodes: usize,
    target: NodeId,
}

impl SingleHotspot {
    /// Creates a single hot-spot pattern with all packets addressed to
    /// `target`.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::TooFewNodes`] if `num_nodes < 2` and
    /// [`TrafficError::TargetOutOfRange`] if `target` is not a node.
    pub fn new(num_nodes: usize, target: NodeId) -> Result<Self, TrafficError> {
        if num_nodes < 2 {
            return Err(TrafficError::TooFewNodes {
                requested: num_nodes,
                minimum: 2,
            });
        }
        if target.index() >= num_nodes {
            return Err(TrafficError::TargetOutOfRange { target, num_nodes });
        }
        Ok(SingleHotspot { num_nodes, target })
    }

    /// The hot-spot destination.
    pub fn target(&self) -> NodeId {
        self.target
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for {} nodes",
            self.num_nodes
        );
    }
}

impl TrafficPattern for SingleHotspot {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn is_source(&self, node: NodeId) -> bool {
        self.check(node);
        node != self.target
    }

    fn is_destination(&self, node: NodeId) -> bool {
        self.check(node);
        node == self.target
    }

    fn pick_destination(&self, src: NodeId, _rng: &mut dyn RngCore) -> NodeId {
        self.check(src);
        assert!(src != self.target, "hot-spot target {src} is not a source");
        self.target
    }

    fn label(&self) -> String {
        format!("hotspot({})", self.target)
    }
}

/// Double hot-spot traffic (paper Section 3.1.2): two destination
/// nodes; every other node is a source and addresses each packet to one
/// of the two targets with equal probability.
///
/// # Examples
///
/// ```
/// use noc_traffic::{DoubleHotspot, TrafficPattern};
/// use noc_topology::NodeId;
///
/// let pattern = DoubleHotspot::new(8, [NodeId::new(0), NodeId::new(4)])?;
/// assert_eq!(pattern.sources().len(), 6);
/// # Ok::<(), noc_traffic::TrafficError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DoubleHotspot {
    num_nodes: usize,
    targets: [NodeId; 2],
}

impl DoubleHotspot {
    /// Creates a double hot-spot pattern.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::TooFewNodes`] if `num_nodes < 3`,
    /// [`TrafficError::TargetOutOfRange`] if a target is not a node, and
    /// [`TrafficError::DuplicateTargets`] if the targets coincide.
    pub fn new(num_nodes: usize, targets: [NodeId; 2]) -> Result<Self, TrafficError> {
        if num_nodes < 3 {
            return Err(TrafficError::TooFewNodes {
                requested: num_nodes,
                minimum: 3,
            });
        }
        for &t in &targets {
            if t.index() >= num_nodes {
                return Err(TrafficError::TargetOutOfRange {
                    target: t,
                    num_nodes,
                });
            }
        }
        if targets[0] == targets[1] {
            return Err(TrafficError::DuplicateTargets { target: targets[0] });
        }
        Ok(DoubleHotspot { num_nodes, targets })
    }

    /// The two hot-spot destinations.
    pub fn targets(&self) -> [NodeId; 2] {
        self.targets
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for {} nodes",
            self.num_nodes
        );
    }
}

impl TrafficPattern for DoubleHotspot {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn is_source(&self, node: NodeId) -> bool {
        self.check(node);
        node != self.targets[0] && node != self.targets[1]
    }

    fn is_destination(&self, node: NodeId) -> bool {
        self.check(node);
        node == self.targets[0] || node == self.targets[1]
    }

    fn pick_destination(&self, src: NodeId, rng: &mut dyn RngCore) -> NodeId {
        self.check(src);
        assert!(self.is_source(src), "hot-spot target {src} is not a source");
        self.targets[usize::from(rng.gen_bool(0.5))]
    }

    fn label(&self) -> String {
        format!("hotspot2({},{})", self.targets[0], self.targets[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_pattern_invariants;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn single_hotspot_construction() {
        assert!(SingleHotspot::new(1, NodeId::new(0)).is_err());
        assert!(SingleHotspot::new(4, NodeId::new(4)).is_err());
        let p = SingleHotspot::new(4, NodeId::new(2)).unwrap();
        assert_eq!(p.target(), NodeId::new(2));
        assert_eq!(p.label(), "hotspot(n2)");
    }

    #[test]
    fn single_hotspot_invariants() {
        let mut rng = SmallRng::seed_from_u64(3);
        for n in 2..16 {
            for t in 0..n {
                check_pattern_invariants(&SingleHotspot::new(n, NodeId::new(t)).unwrap(), &mut rng);
            }
        }
    }

    #[test]
    fn single_hotspot_all_packets_to_target() {
        let p = SingleHotspot::new(6, NodeId::new(5)).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        for s in 0..5 {
            assert_eq!(p.pick_destination(NodeId::new(s), &mut rng), NodeId::new(5));
        }
        assert_eq!(p.destinations(), vec![NodeId::new(5)]);
    }

    #[test]
    #[should_panic(expected = "not a source")]
    fn single_hotspot_target_cannot_send() {
        let p = SingleHotspot::new(4, NodeId::new(1)).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = p.pick_destination(NodeId::new(1), &mut rng);
    }

    #[test]
    fn double_hotspot_construction() {
        assert!(DoubleHotspot::new(2, [NodeId::new(0), NodeId::new(1)]).is_err());
        assert!(DoubleHotspot::new(8, [NodeId::new(0), NodeId::new(8)]).is_err());
        assert!(DoubleHotspot::new(8, [NodeId::new(3), NodeId::new(3)]).is_err());
        let p = DoubleHotspot::new(8, [NodeId::new(0), NodeId::new(4)]).unwrap();
        assert_eq!(p.targets(), [NodeId::new(0), NodeId::new(4)]);
    }

    #[test]
    fn double_hotspot_invariants() {
        let mut rng = SmallRng::seed_from_u64(5);
        for n in 3..14 {
            check_pattern_invariants(
                &DoubleHotspot::new(n, [NodeId::new(0), NodeId::new(n - 1)]).unwrap(),
                &mut rng,
            );
        }
    }

    #[test]
    fn double_hotspot_splits_roughly_evenly() {
        let p = DoubleHotspot::new(10, [NodeId::new(2), NodeId::new(7)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(21);
        let mut first = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            if p.pick_destination(NodeId::new(0), &mut rng) == NodeId::new(2) {
                first += 1;
            }
        }
        let frac = first as f64 / draws as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn double_hotspot_sources_exclude_both_targets() {
        let p = DoubleHotspot::new(5, [NodeId::new(1), NodeId::new(3)]).unwrap();
        assert_eq!(
            p.sources(),
            vec![NodeId::new(0), NodeId::new(2), NodeId::new(4)]
        );
    }
}

/// Mixed hot-spot traffic: each packet goes to the hot spot with
/// probability `fraction`, otherwise to a uniformly random other node.
///
/// This is the classic "hot-spot percentage" model of the NoC
/// comparison literature (e.g. Pande et al., the paper's reference
/// \[6\]): the paper's pure hot-spot scenario is the `fraction = 1`
/// limit, the homogeneous scenario the `fraction = 0` limit. Every
/// node is a source (including the hot spot, whose uniform share still
/// flows); every node can be a destination.
///
/// # Examples
///
/// ```
/// use noc_traffic::{MixedHotspot, TrafficPattern};
/// use noc_topology::NodeId;
///
/// let pattern = MixedHotspot::new(16, NodeId::new(0), 0.3)?;
/// assert_eq!(pattern.sources().len(), 16);
/// # Ok::<(), noc_traffic::TrafficError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MixedHotspot {
    uniform: UniformRandom,
    target: NodeId,
    fraction: f64,
}

impl MixedHotspot {
    /// Creates a mixed hot-spot pattern sending `fraction` of packets
    /// to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::TooFewNodes`] if `num_nodes < 2`,
    /// [`TrafficError::TargetOutOfRange`] for a bad target, and
    /// [`TrafficError::InvalidRate`] if `fraction` is not within
    /// `[0, 1]`.
    pub fn new(num_nodes: usize, target: NodeId, fraction: f64) -> Result<Self, TrafficError> {
        let uniform = UniformRandom::new(num_nodes)?;
        if target.index() >= num_nodes {
            return Err(TrafficError::TargetOutOfRange { target, num_nodes });
        }
        if !(0.0..=1.0).contains(&fraction) {
            return Err(TrafficError::InvalidRate { rate: fraction });
        }
        Ok(MixedHotspot {
            uniform,
            target,
            fraction,
        })
    }

    /// The hot-spot destination.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The probability a packet is addressed to the hot spot.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

impl TrafficPattern for MixedHotspot {
    fn num_nodes(&self) -> usize {
        self.uniform.num_nodes()
    }

    fn is_source(&self, node: NodeId) -> bool {
        self.uniform.is_source(node)
    }

    fn is_destination(&self, node: NodeId) -> bool {
        self.uniform.is_destination(node)
    }

    fn pick_destination(&self, src: NodeId, rng: &mut dyn RngCore) -> NodeId {
        if src != self.target && rng.gen_bool(self.fraction) {
            self.target
        } else {
            self.uniform.pick_destination(src, rng)
        }
    }

    fn label(&self) -> String {
        format!(
            "mixed-hotspot({}, {:.0}%)",
            self.target,
            self.fraction * 100.0
        )
    }
}

#[cfg(test)]
mod mixed_tests {
    use super::*;
    use crate::check_pattern_invariants;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn construction_bounds() {
        assert!(MixedHotspot::new(1, NodeId::new(0), 0.5).is_err());
        assert!(MixedHotspot::new(8, NodeId::new(8), 0.5).is_err());
        assert!(MixedHotspot::new(8, NodeId::new(0), -0.1).is_err());
        assert!(MixedHotspot::new(8, NodeId::new(0), 1.1).is_err());
        let p = MixedHotspot::new(8, NodeId::new(2), 0.25).unwrap();
        assert_eq!(p.target(), NodeId::new(2));
        assert_eq!(p.fraction(), 0.25);
    }

    #[test]
    fn invariants_hold() {
        let mut rng = SmallRng::seed_from_u64(2);
        for fraction in [0.0, 0.3, 1.0] {
            check_pattern_invariants(
                &MixedHotspot::new(10, NodeId::new(4), fraction).unwrap(),
                &mut rng,
            );
        }
    }

    #[test]
    fn hotspot_share_matches_fraction() {
        let p = MixedHotspot::new(10, NodeId::new(0), 0.4).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let draws = 40_000;
        let mut hits = 0usize;
        for _ in 0..draws {
            if p.pick_destination(NodeId::new(5), &mut rng) == NodeId::new(0) {
                hits += 1;
            }
        }
        // 40% targeted + uniform residue hitting node 0 by chance:
        // 0.4 + 0.6/9 ~ 0.467.
        let expected = 0.4 + 0.6 / 9.0;
        let got = hits as f64 / draws as f64;
        assert!((got - expected).abs() < 0.02, "{got} vs {expected}");
    }

    #[test]
    fn extremes_degenerate_to_pure_patterns() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pure = MixedHotspot::new(8, NodeId::new(3), 1.0).unwrap();
        for _ in 0..100 {
            assert_eq!(
                pure.pick_destination(NodeId::new(0), &mut rng),
                NodeId::new(3)
            );
        }
        // fraction 0: never biased toward the target beyond uniform.
        let uniform = MixedHotspot::new(8, NodeId::new(3), 0.0).unwrap();
        let hits = (0..7000)
            .filter(|_| uniform.pick_destination(NodeId::new(0), &mut rng) == NodeId::new(3))
            .count();
        assert!((hits as f64 / 7000.0 - 1.0 / 7.0).abs() < 0.02);
    }

    #[test]
    fn target_still_sends_its_uniform_share() {
        let p = MixedHotspot::new(8, NodeId::new(3), 0.9).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(p.is_source(NodeId::new(3)));
        for _ in 0..50 {
            let d = p.pick_destination(NodeId::new(3), &mut rng);
            assert_ne!(d, NodeId::new(3));
        }
    }
}
