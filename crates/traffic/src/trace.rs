//! Trace-driven traffic: replay an explicit list of packet injections.
//!
//! The paper's future work calls for "specific traffic patterns
//! originated by common applications". A [`Trace`] is the general
//! mechanism: a time-sorted list of `(cycle, src, dst)` packet
//! injections, obtained from an application model or a file, replayed
//! exactly (no stochastic process). [`Trace::pipeline`] generates the
//! classic streaming-pipeline workload (e.g. a video decoder whose
//! stages are mapped to consecutive IPs) as a ready-made example.

use crate::TrafficError;
use noc_topology::NodeId;

/// One packet injection of a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceEntry {
    /// Cycle at which the packet is created at its source.
    pub cycle: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// A validated, time-sorted packet-injection trace over a network of
/// `num_nodes` nodes.
///
/// # Examples
///
/// ```
/// use noc_traffic::{Trace, TraceEntry};
/// use noc_topology::NodeId;
///
/// let trace = Trace::new(
///     8,
///     vec![
///         TraceEntry { cycle: 10, src: NodeId::new(0), dst: NodeId::new(3) },
///         TraceEntry { cycle: 5, src: NodeId::new(2), dst: NodeId::new(7) },
///     ],
/// )?;
/// // Entries are sorted by cycle on construction.
/// assert_eq!(trace.entries()[0].cycle, 5);
/// assert_eq!(trace.len(), 2);
/// # Ok::<(), noc_traffic::TrafficError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    num_nodes: usize,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates a trace, validating every entry and sorting by cycle
    /// (stable, so same-cycle entries keep their given order).
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::TargetOutOfRange`] if an endpoint is not
    /// a node and [`TrafficError::DuplicateTargets`] if an entry sends
    /// a packet to its own source.
    pub fn new(num_nodes: usize, mut entries: Vec<TraceEntry>) -> Result<Self, TrafficError> {
        for e in &entries {
            for endpoint in [e.src, e.dst] {
                if endpoint.index() >= num_nodes {
                    return Err(TrafficError::TargetOutOfRange {
                        target: endpoint,
                        num_nodes,
                    });
                }
            }
            if e.src == e.dst {
                return Err(TrafficError::DuplicateTargets { target: e.src });
            }
        }
        entries.sort_by_key(|e| e.cycle);
        Ok(Trace { num_nodes, entries })
    }

    /// Generates a streaming-pipeline trace: every `period` cycles a
    /// packet enters stage 0, and each stage forwards to the next one
    /// `period` cycles later — `stages[0] -> stages[1] -> ...`, with
    /// `packets` items flowing through the whole pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::TooFewNodes`] if fewer than two stages
    /// are given, plus the entry-level errors of [`Trace::new`].
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn pipeline(
        num_nodes: usize,
        stages: &[NodeId],
        packets: u64,
        period: u64,
    ) -> Result<Self, TrafficError> {
        assert!(period > 0, "pipeline period must be positive");
        if stages.len() < 2 {
            return Err(TrafficError::TooFewNodes {
                requested: stages.len(),
                minimum: 2,
            });
        }
        let mut entries = Vec::new();
        for item in 0..packets {
            for (hop, window) in stages.windows(2).enumerate() {
                entries.push(TraceEntry {
                    cycle: (item + hop as u64) * period,
                    src: window[0],
                    dst: window[1],
                });
            }
        }
        Trace::new(num_nodes, entries)
    }

    /// Number of nodes of the network the trace targets.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The entries, sorted by cycle.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of packet injections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the trace injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct source nodes, ascending.
    pub fn sources(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.entries.iter().map(|e| e.src).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The cycle of the last injection (`None` if empty).
    pub fn last_cycle(&self) -> Option<u64> {
        self.entries.last().map(|e| e.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(cycle: u64, src: usize, dst: usize) -> TraceEntry {
        TraceEntry {
            cycle,
            src: NodeId::new(src),
            dst: NodeId::new(dst),
        }
    }

    #[test]
    fn validation_rejects_bad_entries() {
        assert!(Trace::new(4, vec![e(0, 0, 4)]).is_err());
        assert!(Trace::new(4, vec![e(0, 5, 1)]).is_err());
        assert!(Trace::new(4, vec![e(0, 2, 2)]).is_err());
        assert!(Trace::new(4, vec![e(0, 0, 1)]).is_ok());
    }

    #[test]
    fn entries_sorted_stably() {
        let t = Trace::new(4, vec![e(5, 0, 1), e(1, 2, 3), e(5, 1, 2)]).unwrap();
        assert_eq!(t.entries()[0].cycle, 1);
        // Stable: the two cycle-5 entries keep their order.
        assert_eq!(t.entries()[1].src, NodeId::new(0));
        assert_eq!(t.entries()[2].src, NodeId::new(1));
        assert_eq!(t.last_cycle(), Some(5));
    }

    #[test]
    fn sources_are_distinct_sorted() {
        let t = Trace::new(4, vec![e(0, 3, 1), e(1, 0, 1), e(2, 3, 2)]).unwrap();
        assert_eq!(t.sources(), vec![NodeId::new(0), NodeId::new(3)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn pipeline_chains_stages() {
        let stages = [NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let t = Trace::pipeline(4, &stages, 2, 10).unwrap();
        // 2 packets x 2 pipeline hops.
        assert_eq!(t.len(), 4);
        // First item: 0 -> 1 at cycle 0, 1 -> 2 at cycle 10.
        assert_eq!(t.entries()[0], e(0, 0, 1));
        assert!(t.entries().contains(&e(10, 1, 2)));
        // Second item enters at cycle 10.
        assert!(t.entries().contains(&e(10, 0, 1)));
        assert!(t.entries().contains(&e(20, 1, 2)));
    }

    #[test]
    fn pipeline_needs_two_stages() {
        assert!(Trace::pipeline(4, &[NodeId::new(0)], 3, 5).is_err());
    }

    #[test]
    #[should_panic(expected = "period")]
    fn pipeline_zero_period_panics() {
        let _ = Trace::pipeline(4, &[NodeId::new(0), NodeId::new(1)], 1, 0);
    }
}
