//! The paper's homogeneous scenario: uniform sources and destinations.

use crate::{TrafficError, TrafficPattern};
use noc_topology::NodeId;
use rand::{Rng, RngCore};

/// Homogeneous uniform traffic (paper Section 3.1.3): "all the nodes
/// behave like sources and can be addressed as destination for packets,
/// with uniform probability distribution".
///
/// Each packet's destination is drawn uniformly from all nodes except
/// the source.
///
/// # Examples
///
/// ```
/// use noc_traffic::{TrafficPattern, UniformRandom};
/// use noc_topology::NodeId;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let pattern = UniformRandom::new(8)?;
/// let mut rng = SmallRng::seed_from_u64(1);
/// let dst = pattern.pick_destination(NodeId::new(3), &mut rng);
/// assert_ne!(dst, NodeId::new(3));
/// # Ok::<(), noc_traffic::TrafficError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UniformRandom {
    num_nodes: usize,
}

impl UniformRandom {
    /// Creates uniform traffic over `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::TooFewNodes`] if `num_nodes < 2`.
    pub fn new(num_nodes: usize) -> Result<Self, TrafficError> {
        if num_nodes < 2 {
            return Err(TrafficError::TooFewNodes {
                requested: num_nodes,
                minimum: 2,
            });
        }
        Ok(UniformRandom { num_nodes })
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for {} nodes",
            self.num_nodes
        );
    }
}

impl TrafficPattern for UniformRandom {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn is_source(&self, node: NodeId) -> bool {
        self.check(node);
        true
    }

    fn is_destination(&self, node: NodeId) -> bool {
        self.check(node);
        true
    }

    fn pick_destination(&self, src: NodeId, rng: &mut dyn RngCore) -> NodeId {
        self.check(src);
        // Draw from n-1 slots and skip the source.
        let raw = rng.gen_range(0..self.num_nodes - 1);
        if raw >= src.index() {
            NodeId::new(raw + 1)
        } else {
            NodeId::new(raw)
        }
    }

    fn label(&self) -> String {
        "uniform".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_pattern_invariants;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn construction_bounds() {
        assert!(UniformRandom::new(1).is_err());
        assert!(UniformRandom::new(2).is_ok());
    }

    #[test]
    fn invariants_hold() {
        let mut rng = SmallRng::seed_from_u64(11);
        for n in 2..20 {
            check_pattern_invariants(&UniformRandom::new(n).unwrap(), &mut rng);
        }
    }

    #[test]
    fn destinations_are_uniform_over_non_source_nodes() {
        let pattern = UniformRandom::new(5).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        let draws = 50_000;
        for _ in 0..draws {
            counts[pattern.pick_destination(NodeId::new(2), &mut rng).index()] += 1;
        }
        assert_eq!(counts[2], 0);
        let expected = draws as f64 / 4.0;
        for (i, &c) in counts.iter().enumerate() {
            if i != 2 {
                assert!(
                    (c as f64 - expected).abs() < expected * 0.05,
                    "node {i}: {c} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn every_node_is_source_and_destination() {
        let p = UniformRandom::new(6).unwrap();
        assert_eq!(p.sources().len(), 6);
        assert_eq!(p.destinations().len(), 6);
        assert_eq!(p.label(), "uniform");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let p = UniformRandom::new(3).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = p.pick_destination(NodeId::new(3), &mut rng);
    }
}
