//! Error types for traffic-pattern construction.

use core::fmt;
use noc_topology::NodeId;

/// Error returned when a traffic pattern cannot be constructed.
// `Eq` is omitted: `InvalidRate` carries an `f64`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TrafficError {
    /// A hot-spot target is outside the node range.
    TargetOutOfRange {
        /// The offending target.
        target: NodeId,
        /// Number of nodes in the network.
        num_nodes: usize,
    },
    /// The two hot-spot targets coincide.
    DuplicateTargets {
        /// The duplicated target.
        target: NodeId,
    },
    /// The pattern needs at least this many nodes.
    TooFewNodes {
        /// Number of nodes requested.
        requested: usize,
        /// Minimum required.
        minimum: usize,
    },
    /// An injection rate was negative, NaN, or otherwise unusable.
    InvalidRate {
        /// The offending rate in flits/cycle.
        rate: f64,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TrafficError::TargetOutOfRange { target, num_nodes } => {
                write!(
                    f,
                    "hot-spot target {target} out of range for {num_nodes} nodes"
                )
            }
            TrafficError::DuplicateTargets { target } => {
                write!(f, "hot-spot targets must differ, both are {target}")
            }
            TrafficError::TooFewNodes { requested, minimum } => {
                write!(
                    f,
                    "pattern requires at least {minimum} nodes, got {requested}"
                )
            }
            TrafficError::InvalidRate { rate } => {
                write!(
                    f,
                    "injection rate must be finite and non-negative, got {rate}"
                )
            }
        }
    }
}

impl std::error::Error for TrafficError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TrafficError::TargetOutOfRange {
            target: NodeId::new(9),
            num_nodes: 8,
        };
        assert!(e.to_string().contains("n9"));
        let e = TrafficError::InvalidRate { rate: f64::NAN };
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<TrafficError>();
    }
}
