//! Traffic patterns beyond the paper's three scenarios.
//!
//! The paper's future work lists "specific traffic patterns originated
//! by common applications"; these are the standard synthetic patterns
//! from the interconnection-network literature (Duato et al., the
//! paper's reference [4]) most often used for that purpose.

use crate::{TrafficError, TrafficPattern};
use noc_topology::NodeId;
use rand::RngCore;

/// Matrix-transpose traffic on a `cols x rows` grid: node `(x, y)`
/// sends to node `(y, x)`.
///
/// Only defined on square grids (otherwise the image may not exist).
/// Nodes on the diagonal send to nobody and are excluded from the
/// source set.
///
/// # Examples
///
/// ```
/// use noc_traffic::{TrafficPattern, Transpose};
/// use noc_topology::NodeId;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let pattern = Transpose::new(4)?;
/// let mut rng = SmallRng::seed_from_u64(0);
/// // Node (1, 0) = 1 sends to (0, 1) = 4.
/// assert_eq!(pattern.pick_destination(NodeId::new(1), &mut rng), NodeId::new(4));
/// # Ok::<(), noc_traffic::TrafficError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transpose {
    side: usize,
}

impl Transpose {
    /// Creates transpose traffic on a `side x side` grid.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::TooFewNodes`] if `side < 2`.
    pub fn new(side: usize) -> Result<Self, TrafficError> {
        if side < 2 {
            return Err(TrafficError::TooFewNodes {
                requested: side * side,
                minimum: 4,
            });
        }
        Ok(Transpose { side })
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.side * self.side,
            "node {node} out of range for {0}x{0} grid",
            self.side
        );
    }

    fn transpose(&self, node: NodeId) -> NodeId {
        let (x, y) = (node.index() % self.side, node.index() / self.side);
        NodeId::new(x * self.side + y)
    }
}

impl TrafficPattern for Transpose {
    fn num_nodes(&self) -> usize {
        self.side * self.side
    }

    fn is_source(&self, node: NodeId) -> bool {
        self.check(node);
        self.transpose(node) != node
    }

    fn is_destination(&self, node: NodeId) -> bool {
        self.check(node);
        self.transpose(node) != node
    }

    fn pick_destination(&self, src: NodeId, _rng: &mut dyn RngCore) -> NodeId {
        self.check(src);
        let dst = self.transpose(src);
        assert_ne!(dst, src, "diagonal node {src} is not a source");
        dst
    }

    fn label(&self) -> String {
        format!("transpose({0}x{0})", self.side)
    }
}

/// Bit-complement traffic: node `i` sends to node `N - 1 - i`.
///
/// On ring-like topologies this exercises the longest paths; every node
/// is both a source and a destination (for even `N`; with odd `N` the
/// middle node is excluded).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Complement {
    num_nodes: usize,
}

impl Complement {
    /// Creates complement traffic over `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::TooFewNodes`] if `num_nodes < 2`.
    pub fn new(num_nodes: usize) -> Result<Self, TrafficError> {
        if num_nodes < 2 {
            return Err(TrafficError::TooFewNodes {
                requested: num_nodes,
                minimum: 2,
            });
        }
        Ok(Complement { num_nodes })
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for {} nodes",
            self.num_nodes
        );
    }

    fn complement(&self, node: NodeId) -> NodeId {
        NodeId::new(self.num_nodes - 1 - node.index())
    }
}

impl TrafficPattern for Complement {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn is_source(&self, node: NodeId) -> bool {
        self.check(node);
        self.complement(node) != node
    }

    fn is_destination(&self, node: NodeId) -> bool {
        self.check(node);
        self.complement(node) != node
    }

    fn pick_destination(&self, src: NodeId, _rng: &mut dyn RngCore) -> NodeId {
        self.check(src);
        let dst = self.complement(src);
        assert_ne!(dst, src, "self-complementary node {src} is not a source");
        dst
    }

    fn label(&self) -> String {
        "complement".to_owned()
    }
}

/// Nearest-neighbor traffic: node `i` sends to node `(i + 1) mod N`,
/// modelling pipelined streaming between adjacent IPs.
///
/// On ring-like topologies every packet travels exactly one hop — the
/// "parallel local communication" case where the paper notes NoC
/// architectures shine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NearestNeighbor {
    num_nodes: usize,
}

impl NearestNeighbor {
    /// Creates nearest-neighbor traffic over `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::TooFewNodes`] if `num_nodes < 2`.
    pub fn new(num_nodes: usize) -> Result<Self, TrafficError> {
        if num_nodes < 2 {
            return Err(TrafficError::TooFewNodes {
                requested: num_nodes,
                minimum: 2,
            });
        }
        Ok(NearestNeighbor { num_nodes })
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for {} nodes",
            self.num_nodes
        );
    }
}

impl TrafficPattern for NearestNeighbor {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn is_source(&self, node: NodeId) -> bool {
        self.check(node);
        true
    }

    fn is_destination(&self, node: NodeId) -> bool {
        self.check(node);
        true
    }

    fn pick_destination(&self, src: NodeId, _rng: &mut dyn RngCore) -> NodeId {
        self.check(src);
        NodeId::new((src.index() + 1) % self.num_nodes)
    }

    fn label(&self) -> String {
        "nearest-neighbor".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_pattern_invariants;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn transpose_excludes_diagonal() {
        let p = Transpose::new(3).unwrap();
        // Diagonal nodes 0, 4, 8 are neither sources nor destinations.
        assert_eq!(p.sources().len(), 6);
        assert!(!p.is_source(NodeId::new(4)));
        assert!(!p.is_destination(NodeId::new(0)));
    }

    #[test]
    fn transpose_is_an_involution() {
        let p = Transpose::new(4).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        for src in p.sources() {
            let dst = p.pick_destination(src, &mut rng);
            assert_eq!(p.pick_destination(dst, &mut rng), src);
        }
    }

    #[test]
    fn complement_pairs_ends() {
        let p = Complement::new(8).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(p.pick_destination(NodeId::new(0), &mut rng), NodeId::new(7));
        assert_eq!(p.sources().len(), 8);
        // Odd N: the middle node is excluded.
        let p = Complement::new(7).unwrap();
        assert!(!p.is_source(NodeId::new(3)));
        assert_eq!(p.sources().len(), 6);
    }

    #[test]
    fn nearest_neighbor_wraps() {
        let p = NearestNeighbor::new(5).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(p.pick_destination(NodeId::new(4), &mut rng), NodeId::new(0));
    }

    #[test]
    fn all_extension_patterns_pass_invariants() {
        let mut rng = SmallRng::seed_from_u64(77);
        check_pattern_invariants(&Transpose::new(4).unwrap(), &mut rng);
        check_pattern_invariants(&Complement::new(9).unwrap(), &mut rng);
        check_pattern_invariants(&NearestNeighbor::new(6).unwrap(), &mut rng);
    }

    #[test]
    fn construction_bounds() {
        assert!(Transpose::new(1).is_err());
        assert!(Complement::new(1).is_err());
        assert!(NearestNeighbor::new(1).is_err());
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(Transpose::new(4).unwrap().label(), "transpose(4x4)");
        assert_eq!(Complement::new(4).unwrap().label(), "complement");
        assert_eq!(NearestNeighbor::new(4).unwrap().label(), "nearest-neighbor");
    }
}
