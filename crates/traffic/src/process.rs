//! Packet injection processes: when does a source create the next
//! packet.
//!
//! The paper's sources "adopt a Poisson interarrival distribution of
//! constant size packets (6 flits in our simulations), with variable
//! parameter Lambda". Lambda is expressed in **flits per cycle per
//! source** throughout (the paper's throughput axes are flits/cycle), so
//! a source emitting `L`-flit packets generates `lambda / L` packets per
//! cycle on average.

use crate::TrafficError;
use rand::Rng;

/// Stochastic process governing packet creation times at a source.
///
/// # Examples
///
/// ```
/// use noc_traffic::InjectionProcess;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let poisson = InjectionProcess::Poisson;
/// // Mean interarrival for lambda = 0.3 flits/cycle, 6-flit packets:
/// // 6 / 0.3 = 20 cycles.
/// let mean: f64 = (0..10_000)
///     .map(|_| poisson.interarrival(&mut rng, 0.05))
///     .sum::<f64>()
///     / 10_000.0;
/// assert!((mean - 20.0).abs() < 1.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InjectionProcess {
    /// Poisson arrivals: exponential interarrival times (the paper's
    /// process).
    #[default]
    Poisson,
    /// Bernoulli arrivals quantized to cycles: geometric interarrival
    /// times with success probability `packets_per_cycle`.
    Bernoulli,
    /// Constant bit rate: deterministic interarrival of exactly
    /// `1 / packets_per_cycle` cycles.
    Cbr,
}

impl InjectionProcess {
    /// Samples the next interarrival time in cycles for a source
    /// generating `packets_per_cycle` packets per cycle on average.
    ///
    /// Returns `f64::INFINITY` when `packets_per_cycle == 0` (a silent
    /// source).
    ///
    /// # Panics
    ///
    /// Panics if `packets_per_cycle` is negative, NaN, or greater than
    /// 1 for [`InjectionProcess::Bernoulli`].
    pub fn interarrival<R: Rng + ?Sized>(self, rng: &mut R, packets_per_cycle: f64) -> f64 {
        assert!(
            packets_per_cycle.is_finite() && packets_per_cycle >= 0.0,
            "packet rate must be finite and non-negative"
        );
        if packets_per_cycle == 0.0 {
            return f64::INFINITY;
        }
        match self {
            InjectionProcess::Poisson => {
                // Inverse-CDF sampling of Exp(rate); guard the u = 0
                // corner which would yield ln(0).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / packets_per_cycle
            }
            InjectionProcess::Bernoulli => {
                assert!(
                    packets_per_cycle <= 1.0,
                    "bernoulli probability must not exceed 1"
                );
                // Geometric: number of cycles until first success.
                let mut cycles = 1.0;
                while !rng.gen_bool(packets_per_cycle) {
                    cycles += 1.0;
                    // At p >= 2^-53 this terminates with probability 1;
                    // bound the tail to keep the simulator live even for
                    // adversarially small probabilities.
                    if cycles >= 1e9 {
                        break;
                    }
                }
                cycles
            }
            InjectionProcess::Cbr => 1.0 / packets_per_cycle,
        }
    }

    /// Converts a flit injection rate (the paper's lambda, flits per
    /// cycle per source) to a packet rate for `packet_len`-flit packets.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidRate`] if `lambda` is negative or
    /// not finite.
    ///
    /// # Panics
    ///
    /// Panics if `packet_len == 0`.
    pub fn packets_per_cycle(lambda: f64, packet_len: usize) -> Result<f64, TrafficError> {
        assert!(packet_len > 0, "packets must contain at least one flit");
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(TrafficError::InvalidRate { rate: lambda });
        }
        Ok(lambda / packet_len as f64)
    }
}

impl core::fmt::Display for InjectionProcess {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            InjectionProcess::Poisson => "poisson",
            InjectionProcess::Bernoulli => "bernoulli",
            InjectionProcess::Cbr => "cbr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn mean_interarrival(process: InjectionProcess, rate: f64, samples: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(42);
        (0..samples)
            .map(|_| process.interarrival(&mut rng, rate))
            .sum::<f64>()
            / samples as f64
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mean = mean_interarrival(InjectionProcess::Poisson, 0.25, 50_000);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_samples_are_positive() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(InjectionProcess::Poisson.interarrival(&mut rng, 0.9) > 0.0);
        }
    }

    #[test]
    fn bernoulli_mean_matches_rate() {
        let mean = mean_interarrival(InjectionProcess::Bernoulli, 0.2, 50_000);
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn cbr_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(InjectionProcess::Cbr.interarrival(&mut rng, 0.5), 2.0);
        }
    }

    #[test]
    fn zero_rate_means_silence() {
        let mut rng = SmallRng::seed_from_u64(4);
        for p in [
            InjectionProcess::Poisson,
            InjectionProcess::Bernoulli,
            InjectionProcess::Cbr,
        ] {
            assert_eq!(p.interarrival(&mut rng, 0.0), f64::INFINITY);
        }
    }

    #[test]
    fn lambda_to_packet_rate() {
        assert_eq!(
            InjectionProcess::packets_per_cycle(0.3, 6).unwrap(),
            0.3 / 6.0
        );
        assert!(InjectionProcess::packets_per_cycle(-0.1, 6).is_err());
        assert!(InjectionProcess::packets_per_cycle(f64::NAN, 6).is_err());
        assert!(InjectionProcess::packets_per_cycle(f64::INFINITY, 6).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_packet_len_panics() {
        let _ = InjectionProcess::packets_per_cycle(0.3, 0);
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn bernoulli_rejects_probability_above_one() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = InjectionProcess::Bernoulli.interarrival(&mut rng, 1.5);
    }

    #[test]
    fn default_is_poisson_as_in_paper() {
        assert_eq!(InjectionProcess::default(), InjectionProcess::Poisson);
        assert_eq!(InjectionProcess::Poisson.to_string(), "poisson");
    }
}
