//! Hot-spot target placements from paper Section 3.1.2.
//!
//! For the double hot-spot experiments the paper positions the two
//! targets as follows (paper node numbers are 1-based; ours 0-based):
//!
//! * **2D Mesh** — scenario A: opposite corners (nodes 1 and `N`);
//!   scenario B: one corner and one middle node (node 1, plus node 5 in
//!   the `2x4 = 8` mesh / node 14 in the `4x6 = 24` mesh); scenario C:
//!   two middle nodes (5 and 6 / 14 and 15).
//! * **Ring / Spidergon** — scenario A: two targets in opposition
//!   (North-South); scenario B: North and West positions.
//!
//! The 0-based mesh "middle" that reproduces both of the paper's
//! examples is `(rows/2) * cols + (cols-1)/2`: node 4 for the 2-column,
//! 4-row mesh and node 13 for the 4-column, 6-row mesh.

use crate::TrafficError;
use noc_topology::NodeId;

/// Where the two hot-spot targets sit (paper scenarios A, B, C).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlacementScenario {
    /// Scenario A: maximally separated targets — opposite mesh corners,
    /// or North/South ring positions.
    Opposed,
    /// Scenario B: one corner (or North) and one central (or West)
    /// target.
    CornerMiddle,
    /// Scenario C: two adjacent central targets (the paper defines this
    /// for meshes; for rings we use the adjacent pair at the middle of
    /// the ring as the natural analogue).
    MiddlePair,
}

impl core::fmt::Display for PlacementScenario {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PlacementScenario::Opposed => "A-opposed",
            PlacementScenario::CornerMiddle => "B-corner-middle",
            PlacementScenario::MiddlePair => "C-middle-pair",
        };
        f.write_str(s)
    }
}

/// The paper's 0-based "middle" node of a `cols x rows` mesh.
///
/// # Panics
///
/// Panics if either dimension is zero.
///
/// # Examples
///
/// ```
/// use noc_traffic::placement::mesh_center;
/// use noc_topology::NodeId;
///
/// // Paper: node 5 (1-based) of the 2x4 = 8 mesh.
/// assert_eq!(mesh_center(2, 4), NodeId::new(4));
/// // Paper: node 14 (1-based) of the 4x6 = 24 mesh.
/// assert_eq!(mesh_center(4, 6), NodeId::new(13));
/// ```
pub fn mesh_center(cols: usize, rows: usize) -> NodeId {
    assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
    NodeId::new((rows / 2) * cols + (cols - 1) / 2)
}

/// Double hot-spot targets for a `cols x rows` mesh under `scenario`.
///
/// # Errors
///
/// Returns [`TrafficError::TooFewNodes`] if the mesh is too small to
/// host two distinct targets in the requested positions.
pub fn mesh_placement(
    scenario: PlacementScenario,
    cols: usize,
    rows: usize,
) -> Result<[NodeId; 2], TrafficError> {
    assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
    let n = cols * rows;
    if n < 4 {
        return Err(TrafficError::TooFewNodes {
            requested: n,
            minimum: 4,
        });
    }
    let targets = match scenario {
        PlacementScenario::Opposed => [NodeId::new(0), NodeId::new(n - 1)],
        PlacementScenario::CornerMiddle => [NodeId::new(0), mesh_center(cols, rows)],
        PlacementScenario::MiddlePair => {
            let c = mesh_center(cols, rows);
            [c, NodeId::new(c.index() + 1)]
        }
    };
    if targets[0] == targets[1] || targets[1].index() >= n {
        return Err(TrafficError::TooFewNodes {
            requested: n,
            minimum: 4,
        });
    }
    Ok(targets)
}

/// Double hot-spot targets for a ring or Spidergon of `num_nodes` nodes
/// under `scenario` (node 0 is "North"; indices grow clockwise, so
/// "West" sits at `3N/4`).
///
/// # Errors
///
/// Returns [`TrafficError::TooFewNodes`] if `num_nodes < 4`.
pub fn ring_placement(
    scenario: PlacementScenario,
    num_nodes: usize,
) -> Result<[NodeId; 2], TrafficError> {
    if num_nodes < 4 {
        return Err(TrafficError::TooFewNodes {
            requested: num_nodes,
            minimum: 4,
        });
    }
    Ok(match scenario {
        PlacementScenario::Opposed => [NodeId::new(0), NodeId::new(num_nodes / 2)],
        PlacementScenario::CornerMiddle => [NodeId::new(0), NodeId::new(3 * num_nodes / 4)],
        PlacementScenario::MiddlePair => {
            [NodeId::new(num_nodes / 2), NodeId::new(num_nodes / 2 + 1)]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_centers_reproduced() {
        assert_eq!(mesh_center(2, 4).index(), 4);
        assert_eq!(mesh_center(4, 6).index(), 13);
    }

    #[test]
    fn paper_mesh_scenarios_reproduced() {
        // 2x4 = 8-node mesh: A = {0, 7}, B = {0, 4}, C = {4, 5}.
        assert_eq!(
            mesh_placement(PlacementScenario::Opposed, 2, 4).unwrap(),
            [NodeId::new(0), NodeId::new(7)]
        );
        assert_eq!(
            mesh_placement(PlacementScenario::CornerMiddle, 2, 4).unwrap(),
            [NodeId::new(0), NodeId::new(4)]
        );
        assert_eq!(
            mesh_placement(PlacementScenario::MiddlePair, 2, 4).unwrap(),
            [NodeId::new(4), NodeId::new(5)]
        );
        // 4x6 = 24-node mesh: B = {0, 13}, C = {13, 14}.
        assert_eq!(
            mesh_placement(PlacementScenario::CornerMiddle, 4, 6).unwrap(),
            [NodeId::new(0), NodeId::new(13)]
        );
        assert_eq!(
            mesh_placement(PlacementScenario::MiddlePair, 4, 6).unwrap(),
            [NodeId::new(13), NodeId::new(14)]
        );
    }

    #[test]
    fn ring_scenarios() {
        assert_eq!(
            ring_placement(PlacementScenario::Opposed, 12).unwrap(),
            [NodeId::new(0), NodeId::new(6)]
        );
        assert_eq!(
            ring_placement(PlacementScenario::CornerMiddle, 12).unwrap(),
            [NodeId::new(0), NodeId::new(9)]
        );
        assert_eq!(
            ring_placement(PlacementScenario::MiddlePair, 12).unwrap(),
            [NodeId::new(6), NodeId::new(7)]
        );
    }

    #[test]
    fn small_networks_rejected() {
        assert!(mesh_placement(PlacementScenario::Opposed, 1, 3).is_err());
        assert!(ring_placement(PlacementScenario::Opposed, 3).is_err());
    }

    #[test]
    fn targets_always_distinct_and_in_range() {
        for scenario in [
            PlacementScenario::Opposed,
            PlacementScenario::CornerMiddle,
            PlacementScenario::MiddlePair,
        ] {
            for n in 4..30usize {
                let t = ring_placement(scenario, n).unwrap();
                assert_ne!(t[0], t[1], "{scenario} n={n}");
                assert!(t[1].index() < n, "{scenario} n={n}");
            }
            for (c, r) in [(2usize, 2usize), (2, 4), (4, 6), (3, 5), (6, 6)] {
                let t = mesh_placement(scenario, c, r).unwrap();
                assert_ne!(t[0], t[1], "{scenario} {c}x{r}");
                assert!(t[1].index() < c * r, "{scenario} {c}x{r}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(PlacementScenario::Opposed.to_string(), "A-opposed");
        assert_eq!(
            PlacementScenario::CornerMiddle.to_string(),
            "B-corner-middle"
        );
        assert_eq!(PlacementScenario::MiddlePair.to_string(), "C-middle-pair");
    }
}
