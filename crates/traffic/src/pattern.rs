//! The [`TrafficPattern`] trait: who sends, who receives, and how
//! destinations are drawn.

use core::fmt;
use noc_topology::NodeId;
use rand::RngCore;

/// A spatial traffic pattern over a network of `num_nodes` nodes.
///
/// A pattern designates which nodes act as packet sources, which may be
/// addressed as destinations, and draws a destination for each packet.
/// Patterns never return the source itself as a destination.
///
/// The trait is object-safe: the simulator holds patterns as
/// `Box<dyn TrafficPattern>` and hands them an RNG as `&mut dyn RngCore`.
pub trait TrafficPattern: fmt::Debug {
    /// Number of nodes the pattern is defined over.
    fn num_nodes(&self) -> usize;

    /// Returns `true` if `node` generates packets.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn is_source(&self, node: NodeId) -> bool;

    /// Returns `true` if `node` may be addressed as a destination (used
    /// by statistics to identify consumers).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn is_destination(&self, node: NodeId) -> bool;

    /// Draws the destination for a packet generated at `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or is not a source of this
    /// pattern.
    fn pick_destination(&self, src: NodeId, rng: &mut dyn RngCore) -> NodeId;

    /// Short human-readable name, e.g. `"uniform"` or `"hotspot(n3)"`.
    fn label(&self) -> String;

    /// All source nodes, in ascending order.
    fn sources(&self) -> Vec<NodeId> {
        (0..self.num_nodes())
            .map(NodeId::new)
            .filter(|&v| self.is_source(v))
            .collect()
    }

    /// All destination nodes, in ascending order.
    fn destinations(&self) -> Vec<NodeId> {
        (0..self.num_nodes())
            .map(NodeId::new)
            .filter(|&v| self.is_destination(v))
            .collect()
    }
}

/// Checks the invariants every [`TrafficPattern`] must uphold by
/// sampling destinations from every source.
///
/// # Panics
///
/// Panics with a descriptive message on the first violation: a pattern
/// with no sources, a sampled destination that is out of range, equal to
/// the source, or not flagged by
/// [`is_destination`](TrafficPattern::is_destination).
pub fn check_pattern_invariants<P: TrafficPattern + ?Sized>(pattern: &P, rng: &mut dyn RngCore) {
    let n = pattern.num_nodes();
    assert!(n > 0, "pattern over zero nodes");
    let sources = pattern.sources();
    assert!(!sources.is_empty(), "pattern has no sources");
    for &src in &sources {
        for _ in 0..32 {
            let dst = pattern.pick_destination(src, rng);
            assert!(dst.index() < n, "destination {dst} out of range");
            assert_ne!(dst, src, "destination equals source {src}");
            assert!(
                pattern.is_destination(dst),
                "{dst} drawn but not flagged as destination"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Minimal pattern for exercising the provided methods.
    #[derive(Debug)]
    struct RoundRobin {
        n: usize,
    }

    impl TrafficPattern for RoundRobin {
        fn num_nodes(&self) -> usize {
            self.n
        }
        fn is_source(&self, node: NodeId) -> bool {
            assert!(node.index() < self.n);
            true
        }
        fn is_destination(&self, node: NodeId) -> bool {
            assert!(node.index() < self.n);
            true
        }
        fn pick_destination(&self, src: NodeId, _rng: &mut dyn RngCore) -> NodeId {
            NodeId::new((src.index() + 1) % self.n)
        }
        fn label(&self) -> String {
            "round-robin".into()
        }
    }

    #[test]
    fn provided_methods_enumerate_all_nodes() {
        let p = RoundRobin { n: 4 };
        assert_eq!(p.sources().len(), 4);
        assert_eq!(p.destinations().len(), 4);
    }

    #[test]
    fn invariant_checker_accepts_valid_pattern() {
        let mut rng = SmallRng::seed_from_u64(0);
        check_pattern_invariants(&RoundRobin { n: 5 }, &mut rng);
    }

    #[test]
    #[should_panic(expected = "destination equals source")]
    fn invariant_checker_rejects_self_destination() {
        #[derive(Debug)]
        struct SelfLoop;
        impl TrafficPattern for SelfLoop {
            fn num_nodes(&self) -> usize {
                2
            }
            fn is_source(&self, _n: NodeId) -> bool {
                true
            }
            fn is_destination(&self, _n: NodeId) -> bool {
                true
            }
            fn pick_destination(&self, src: NodeId, _rng: &mut dyn RngCore) -> NodeId {
                src
            }
            fn label(&self) -> String {
                "self-loop".into()
            }
        }
        let mut rng = SmallRng::seed_from_u64(0);
        check_pattern_invariants(&SelfLoop, &mut rng);
    }
}
