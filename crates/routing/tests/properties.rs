//! Property-based tests: every paper routing algorithm is minimal,
//! terminating, and deadlock-free on arbitrary topology sizes.

use noc_routing::{
    cdg::CdgAnalysis,
    validate::{validate_all_candidates, validate_all_routes, walk_route},
    MeshXY, RingShortestPath, RoutingAlgorithm, SpidergonAcrossFirst, TableRouting,
};
use noc_topology::{IrregularMesh, RectMesh, Ring, Spidergon, Topology};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Every route the algorithm produces stays within the topology
/// diameter — the bound behind the paper's latency model (a minimal
/// route can never be longer than the longest shortest path).
fn assert_routes_within_diameter<A: RoutingAlgorithm>(
    algo: &A,
    topo: &dyn Topology,
) -> Result<(), TestCaseError> {
    let diameter = topo.graph().all_pairs_distances().diameter() as usize;
    for src in topo.node_ids() {
        for dst in topo.node_ids() {
            let route = walk_route(algo, topo, src, dst).unwrap();
            prop_assert!(
                route.directions().len() <= diameter,
                "{src}->{dst}: {} hops exceeds diameter {diameter}",
                route.directions().len()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ring_routing_minimal_and_deadlock_free(n in 3usize..40) {
        let ring = Ring::new(n).unwrap();
        let algo = RingShortestPath::new(&ring);
        let report = validate_all_routes(&algo, &ring).unwrap();
        prop_assert_eq!(report.non_minimal, 0);
        prop_assert!(report.max_vc < algo.num_vcs_required());
        prop_assert!(CdgAnalysis::analyze(&algo, &ring).is_deadlock_free());
    }

    #[test]
    fn spidergon_routing_minimal_and_deadlock_free(half in 2usize..20) {
        let n = half * 2;
        let sg = Spidergon::new(n).unwrap();
        let algo = SpidergonAcrossFirst::new(&sg);
        let report = validate_all_routes(&algo, &sg).unwrap();
        prop_assert_eq!(report.non_minimal, 0);
        prop_assert!(report.max_vc < algo.num_vcs_required());
        prop_assert!(CdgAnalysis::analyze(&algo, &sg).is_deadlock_free());
    }

    #[test]
    fn mesh_xy_minimal_and_deadlock_free(m in 1usize..7, n in 2usize..7) {
        let mesh = RectMesh::new(m, n).unwrap();
        let algo = MeshXY::new(&mesh);
        let report = validate_all_routes(&algo, &mesh).unwrap();
        prop_assert_eq!(report.non_minimal, 0);
        prop_assert_eq!(report.max_vc, 0);
        prop_assert!(CdgAnalysis::analyze(&algo, &mesh).is_deadlock_free());
    }

    #[test]
    fn irregular_xy_minimal_and_deadlock_free(cols in 2usize..7, extra in 1usize..20) {
        let mesh = IrregularMesh::new(cols, cols + extra).unwrap();
        let algo = MeshXY::new_irregular(&mesh);
        let report = validate_all_routes(&algo, &mesh).unwrap();
        prop_assert_eq!(report.non_minimal, 0);
        prop_assert!(CdgAnalysis::analyze(&algo, &mesh).is_deadlock_free());
    }

    #[test]
    fn ring_without_second_vc_always_deadlocks(n in 4usize..24) {
        let ring = Ring::new(n).unwrap();
        let algo = RingShortestPath::new(&ring);
        prop_assert!(!CdgAnalysis::analyze_single_vc(&algo, &ring).is_deadlock_free());
    }

    #[test]
    fn table_routing_is_minimal_everywhere(pick in 0usize..4, size in 4usize..20) {
        let topo: Box<dyn Topology> = match pick {
            0 => Box::new(Ring::new(size.max(3)).unwrap()),
            1 => Box::new(Spidergon::new(if size % 2 == 0 { size } else { size + 1 }).unwrap()),
            2 => Box::new(RectMesh::balanced(size.max(2)).unwrap()),
            _ => Box::new(IrregularMesh::realistic(size.max(2)).unwrap()),
        };
        let algo = TableRouting::from_topology(topo.as_ref());
        let report = validate_all_routes(&algo, topo.as_ref()).unwrap();
        prop_assert_eq!(report.non_minimal, 0);
    }

    #[test]
    fn routes_never_exceed_diameter(pick in 0usize..3, size in 4usize..24) {
        match pick {
            0 => {
                let topo = Ring::new(size).unwrap();
                let algo = RingShortestPath::new(&topo);
                assert_routes_within_diameter(&algo, &topo)?;
            }
            1 => {
                let n = if size % 2 == 0 { size } else { size + 1 };
                let topo = Spidergon::new(n).unwrap();
                let algo = SpidergonAcrossFirst::new(&topo);
                assert_routes_within_diameter(&algo, &topo)?;
            }
            _ => {
                let topo = RectMesh::balanced(size).unwrap();
                let algo = MeshXY::new(&topo);
                assert_routes_within_diameter(&algo, &topo)?;
            }
        }
    }

    #[test]
    fn candidate_sets_validate_on_ring(n in 3usize..32) {
        let topo = Ring::new(n).unwrap();
        let algo = RingShortestPath::new(&topo);
        prop_assert!(validate_all_candidates(&algo, &topo).is_ok());
    }

    #[test]
    fn candidate_sets_validate_on_spidergon(half in 2usize..16) {
        let topo = Spidergon::new(half * 2).unwrap();
        let algo = SpidergonAcrossFirst::new(&topo);
        prop_assert!(validate_all_candidates(&algo, &topo).is_ok());
    }

    #[test]
    fn candidate_sets_validate_on_meshes(m in 1usize..6, n in 2usize..6) {
        let full = RectMesh::new(m, n).unwrap();
        prop_assert!(validate_all_candidates(&MeshXY::new(&full), &full).is_ok());
        let irregular = IrregularMesh::new(n, m * n + 1).unwrap();
        prop_assert!(
            validate_all_candidates(&MeshXY::new_irregular(&irregular), &irregular).is_ok()
        );
    }

    #[test]
    fn mesh_routes_respect_xy_order_on_full_meshes(m in 2usize..6, n in 2usize..6) {
        use noc_routing::validate::walk_route;
        use noc_topology::Direction;
        let mesh = RectMesh::new(m, n).unwrap();
        let algo = MeshXY::new(&mesh);
        for src in mesh.node_ids() {
            for dst in mesh.node_ids() {
                let route = walk_route(&algo, &mesh, src, dst).unwrap();
                // Once a Y move happens, no X move may follow.
                let mut seen_y = false;
                for &d in route.directions() {
                    match d {
                        Direction::North | Direction::South => seen_y = true,
                        Direction::East | Direction::West => {
                            prop_assert!(!seen_y, "X after Y in {src}->{dst}");
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
