//! Dimension-order routing on the 2D torus with per-dimension dateline
//! virtual channels.

use crate::RoutingAlgorithm;
use noc_topology::{Direction, NodeId, Torus};

/// Dimension-order (X then Y) routing on a torus, taking the shortest
/// way around each ring dimension (ties broken East/South).
///
/// Wrap-around links close a channel-dependency ring in each dimension,
/// so — like the paper's Ring — the torus needs the pair of output
/// buffers: packets use **VC 0 before their wrap-around crossing and
/// VC 1 after it** in the current travel dimension. The VC is derived
/// from positions alone: travelling East, a packet that still has the
/// destination ahead (`dest_col >= col`) has either already wrapped or
/// never will, so it takes VC 1; a packet with `dest_col < col` is
/// before its wrap and takes VC 0. VC 1 therefore never crosses the
/// wrap edge and VC 0 dependency chains stop at it — both per-dimension
/// rings are broken (proved by the [`crate::cdg`] tests).
///
/// # Examples
///
/// ```
/// use noc_routing::{RoutingAlgorithm, TorusXY};
/// use noc_topology::{Direction, NodeId, Torus};
///
/// let torus = Torus::new(4, 4)?;
/// let algo = TorusXY::new(&torus);
/// // 0 -> 3 is one hop West around the wrap, not three hops East.
/// assert_eq!(algo.next_hop(NodeId::new(0), NodeId::new(3)), Direction::West);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TorusXY {
    cols: usize,
    rows: usize,
}

impl TorusXY {
    /// Creates the routing function for a torus.
    pub fn new(torus: &Torus) -> Self {
        TorusXY {
            cols: torus.cols(),
            rows: torus.rows(),
        }
    }

    /// Creates the routing function from raw extents.
    ///
    /// # Panics
    ///
    /// Panics if either extent is below 3.
    pub fn for_grid(cols: usize, rows: usize) -> Self {
        assert!(cols >= 3 && rows >= 3, "torus extents must be at least 3");
        TorusXY { cols, rows }
    }

    /// Number of columns routed.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows routed.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(
            node.index() < self.cols * self.rows,
            "node {node} out of range for {}x{} torus",
            self.cols,
            self.rows
        );
        (node.index() % self.cols, node.index() / self.cols)
    }

    /// Shortest direction along a ring dimension of extent `len` from
    /// `from` to `to` (`None` if equal); positive direction on ties.
    fn ring_step(len: usize, from: usize, to: usize) -> Option<bool> {
        // true = positive direction (East/South), false = negative.
        if from == to {
            return None;
        }
        let forward = (to + len - from) % len;
        Some(forward <= len - forward)
    }
}

impl RoutingAlgorithm for TorusXY {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        let (cx, cy) = self.coords(current);
        let (dx, dy) = self.coords(dest);
        if let Some(positive) = Self::ring_step(self.cols, cx, dx) {
            return if positive {
                Direction::East
            } else {
                Direction::West
            };
        }
        match Self::ring_step(self.rows, cy, dy) {
            Some(true) => Direction::South,
            Some(false) => Direction::North,
            None => Direction::Local,
        }
    }

    fn num_vcs_required(&self) -> usize {
        2
    }

    fn vc_for_hop(
        &self,
        current: NodeId,
        dest: NodeId,
        dir: Direction,
        current_vc: usize,
    ) -> usize {
        let _ = current_vc; // VC derives from position alone.
        let (cx, cy) = self.coords(current);
        let (dx, dy) = self.coords(dest);
        match dir {
            // "Destination ahead without wrapping" -> VC 1 (post-wrap or
            // wrap-free); "destination behind" -> VC 0 (pre-wrap).
            Direction::East => usize::from(dx >= cx),
            Direction::West => usize::from(dx <= cx),
            Direction::South => usize::from(dy >= cy),
            Direction::North => usize::from(dy <= cy),
            _ => 0,
        }
    }

    fn label(&self) -> String {
        "torus-xy-dateline".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::CdgAnalysis;
    use crate::validate::validate_all_routes;
    use noc_topology::Topology;

    fn setup(m: usize, n: usize) -> (Torus, TorusXY) {
        let t = Torus::new(m, n).unwrap();
        let a = TorusXY::new(&t);
        (t, a)
    }

    #[test]
    fn shortest_way_around_each_dimension() {
        let (_, a) = setup(5, 5);
        // (0,0) -> (4,0): West (1 hop) beats East (4 hops).
        assert_eq!(a.next_hop(NodeId::new(0), NodeId::new(4)), Direction::West);
        // (0,0) -> (1,0): East.
        assert_eq!(a.next_hop(NodeId::new(0), NodeId::new(1)), Direction::East);
        // X resolved first: (0,0) -> (1,4) goes East before North.
        assert_eq!(a.next_hop(NodeId::new(0), NodeId::new(21)), Direction::East);
        // Same column: (0,0) -> (0,4) is North (wrap, 1 hop).
        assert_eq!(
            a.next_hop(NodeId::new(0), NodeId::new(20)),
            Direction::North
        );
    }

    #[test]
    fn even_extent_ties_break_positive() {
        let (_, a) = setup(4, 4);
        // Distance 2 both ways: East wins.
        assert_eq!(a.next_hop(NodeId::new(0), NodeId::new(2)), Direction::East);
        // Row tie: South wins.
        assert_eq!(a.next_hop(NodeId::new(0), NodeId::new(8)), Direction::South);
    }

    #[test]
    fn routes_are_minimal_on_many_tori() {
        for (m, n) in [(3usize, 3usize), (4, 4), (5, 3), (4, 6), (5, 5)] {
            let (t, a) = setup(m, n);
            let report = validate_all_routes(&a, &t).unwrap();
            assert_eq!(report.non_minimal, 0, "{m}x{n}");
            assert!(report.max_vc <= 1, "{m}x{n}");
        }
    }

    #[test]
    fn dateline_vcs_make_torus_deadlock_free() {
        for (m, n) in [(3usize, 3usize), (4, 4), (5, 3), (4, 6)] {
            let (t, a) = setup(m, n);
            let analysis = CdgAnalysis::analyze(&a, &t);
            assert!(
                analysis.is_deadlock_free(),
                "{m}x{n}: {:?}",
                analysis.cycle()
            );
        }
    }

    #[test]
    fn single_vc_torus_has_dependency_cycles() {
        let (t, a) = setup(4, 4);
        let analysis = CdgAnalysis::analyze_single_vc(&a, &t);
        assert!(!analysis.is_deadlock_free());
    }

    #[test]
    fn vc_rule_keeps_vc1_off_the_wrap_edges() {
        // VC 1 must never be selected for a hop that crosses the wrap.
        for (m, n) in [(4usize, 4usize), (5, 3)] {
            let (t, a) = setup(m, n);
            for src in t.node_ids() {
                for dst in t.node_ids() {
                    let route = crate::validate::walk_route(&a, &t, src, dst).unwrap();
                    for (from, dir, vc, _to) in route.hops() {
                        let (cx, cy) = ((from.index() % m), (from.index() / m));
                        let wraps = match dir {
                            Direction::East => cx == m - 1,
                            Direction::West => cx == 0,
                            Direction::South => cy == n - 1,
                            Direction::North => cy == 0,
                            _ => false,
                        };
                        if wraps {
                            assert_eq!(vc, 0, "{m}x{n} {src}->{dst} wrap on VC {vc}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn accessors_and_label() {
        let a = TorusXY::for_grid(4, 5);
        assert_eq!(a.cols(), 4);
        assert_eq!(a.rows(), 5);
        assert_eq!(a.label(), "torus-xy-dateline");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_grid_rejected() {
        let _ = TorusXY::for_grid(2, 5);
    }
}
