//! Adaptive routing: the West-First turn model for 2D meshes.
//!
//! The paper lists "adaptive" among the flit-by-flit routing options for
//! NoCs and leaves "analysis of routing protocols" as future work. The
//! classic partially-adaptive scheme compatible with the paper's mesh
//! node (single output buffer per link, no extra VCs) is Glass & Ni's
//! **West-First turn model**: all hops towards the West are performed
//! first, after which the packet may adaptively choose among the
//! remaining minimal directions (East / North / South) based on local
//! congestion. Prohibiting the two turns *into* West removes every
//! abstract cycle, so the scheme is deadlock-free with one virtual
//! channel (verified by [`crate::cdg::CdgAnalysis::analyze_candidates`]).

use crate::RoutingAlgorithm;
use noc_topology::{Direction, NodeId, RectMesh};

/// West-First partially-adaptive minimal routing on a full rectangular
/// mesh.
///
/// * Destination strictly to the West: the only candidate is `West`
///   (the deterministic phase).
/// * Otherwise: all minimal directions among `East`, `North`, `South`
///   are candidates, preferred in the order X-then-Y so that
///   [`next_hop`](RoutingAlgorithm::next_hop) (the first candidate)
///   degenerates to plain XY routing when the router never needs to
///   adapt.
///
/// # Examples
///
/// ```
/// use noc_routing::{RoutingAlgorithm, WestFirst};
/// use noc_topology::{Direction, NodeId, RectMesh};
///
/// let mesh = RectMesh::new(4, 4)?;
/// let algo = WestFirst::new(&mesh);
/// // Node 0 = (0,0) to node 15 = (3,3): East and South both minimal.
/// let c = algo.candidates(NodeId::new(0), NodeId::new(15));
/// assert_eq!(c, vec![Direction::East, Direction::South]);
/// // To the west: no adaptivity.
/// let c = algo.candidates(NodeId::new(15), NodeId::new(12));
/// assert_eq!(c, vec![Direction::West]);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WestFirst {
    cols: usize,
    rows: usize,
}

impl WestFirst {
    /// Creates the routing function for a full rectangular mesh.
    pub fn new(mesh: &RectMesh) -> Self {
        WestFirst {
            cols: mesh.cols(),
            rows: mesh.rows(),
        }
    }

    /// Creates the routing function from raw grid extents.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn for_grid(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh extents must be nonzero");
        WestFirst { cols, rows }
    }

    fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(
            node.index() < self.cols * self.rows,
            "node {node} out of range for {}x{} mesh",
            self.cols,
            self.rows
        );
        (node.index() % self.cols, node.index() / self.cols)
    }
}

impl RoutingAlgorithm for WestFirst {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        *self
            .candidates(current, dest)
            .first()
            .expect("candidates is never empty")
    }

    fn candidates(&self, current: NodeId, dest: NodeId) -> Vec<Direction> {
        let mut out = Vec::with_capacity(2);
        self.candidates_into(current, dest, &mut out);
        out
    }

    fn candidates_into(&self, current: NodeId, dest: NodeId, out: &mut Vec<Direction>) {
        let (cx, cy) = self.coords(current);
        let (dx, dy) = self.coords(dest);
        if cx > dx {
            // Deterministic West phase — the turn model permits no
            // other move while the destination lies to the West.
            out.push(Direction::West);
            return;
        }
        let before = out.len();
        if cx < dx {
            out.push(Direction::East);
        }
        if cy < dy {
            out.push(Direction::South);
        } else if cy > dy {
            out.push(Direction::North);
        }
        if out.len() == before {
            out.push(Direction::Local);
        }
    }

    fn label(&self) -> String {
        "west-first-adaptive".to_owned()
    }

    fn is_deterministic(&self) -> bool {
        // Eastward phases offer several candidates picked by runtime
        // congestion, so no static table can reproduce this scheme.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::CdgAnalysis;
    use crate::validate::{validate_all_candidates, validate_all_routes};
    use noc_topology::Topology;

    fn setup(m: usize, n: usize) -> (RectMesh, WestFirst) {
        let mesh = RectMesh::new(m, n).unwrap();
        let algo = WestFirst::new(&mesh);
        (mesh, algo)
    }

    #[test]
    fn west_phase_is_exclusive() {
        let (_, a) = setup(4, 4);
        // (3,3) -> (0,0): only West until the column matches.
        assert_eq!(
            a.candidates(NodeId::new(15), NodeId::new(0)),
            vec![Direction::West]
        );
        // Column aligned, north remains.
        assert_eq!(
            a.candidates(NodeId::new(12), NodeId::new(0)),
            vec![Direction::North]
        );
    }

    #[test]
    fn eastward_moves_are_adaptive() {
        let (_, a) = setup(4, 4);
        assert_eq!(
            a.candidates(NodeId::new(0), NodeId::new(15)),
            vec![Direction::East, Direction::South]
        );
        assert_eq!(
            a.candidates(NodeId::new(12), NodeId::new(3)),
            vec![Direction::East, Direction::North]
        );
    }

    #[test]
    fn local_at_destination() {
        let (_, a) = setup(3, 3);
        assert_eq!(
            a.candidates(NodeId::new(4), NodeId::new(4)),
            vec![Direction::Local]
        );
        assert_eq!(a.next_hop(NodeId::new(4), NodeId::new(4)), Direction::Local);
    }

    #[test]
    fn deterministic_walks_are_minimal() {
        for (m, n) in [(2usize, 4usize), (4, 4), (5, 3)] {
            let (mesh, a) = setup(m, n);
            let report = validate_all_routes(&a, &mesh).unwrap();
            assert_eq!(report.non_minimal, 0, "{m}x{n}");
        }
    }

    #[test]
    fn every_candidate_makes_progress() {
        for (m, n) in [(2usize, 4usize), (4, 4), (5, 3), (4, 6)] {
            let (mesh, a) = setup(m, n);
            validate_all_candidates(&a, &mesh).unwrap();
        }
    }

    #[test]
    fn turn_model_is_deadlock_free_with_one_vc() {
        for (m, n) in [(3usize, 3usize), (4, 4), (4, 6)] {
            let (mesh, a) = setup(m, n);
            assert_eq!(a.num_vcs_required(), 1);
            let analysis = CdgAnalysis::analyze_candidates(&a, &mesh);
            assert!(
                analysis.is_deadlock_free(),
                "{m}x{n}: {:?}",
                analysis.cycle()
            );
        }
    }

    #[test]
    fn forbidden_turns_never_appear_in_candidates() {
        // No candidate set may combine a vertical arrival with a West
        // continuation: verify West only appears alone.
        let (mesh, a) = setup(5, 5);
        for src in mesh.node_ids() {
            for dst in mesh.node_ids() {
                let c = a.candidates(src, dst);
                if c.contains(&Direction::West) {
                    assert_eq!(c, vec![Direction::West], "{src}->{dst}: {c:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_grid_rejected() {
        let _ = WestFirst::for_grid(0, 3);
    }
}
