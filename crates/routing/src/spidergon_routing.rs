//! The Spidergon **Across-First** routing scheme (paper Section 2).

use crate::ring_routing::dateline_vc;
use crate::RoutingAlgorithm;
use noc_topology::{Direction, NodeId, Spidergon, Topology};

/// Across-First routing on the Spidergon.
///
/// From the paper: *"first, if the target node for a packet is at
/// distance `D > N/4` on the external ring (that is, in the opposite
/// half of the Spidergon external ring) then the across link is
/// traversed first, to reach the opposite node. Second, clockwise or
/// counterclockwise direction is taken and maintained, depending on the
/// target's position."*
///
/// The scheme is stateless: after the across hop the remaining ring
/// distance is `N/2 - D < N/4`, so the across predicate can never fire
/// again and the ring direction is maintained. Across-First is
/// shortest-path (validated against BFS in tests and in
/// [`crate::validate`]).
///
/// Virtual channels: ring hops use the same dateline scheme as
/// [`crate::RingShortestPath`] (VC 0 until the wrap-around edge, then
/// VC 1); the across hop — only ever taken as the first hop — resets to
/// VC 0. Across channels receive traffic only from injection queues, so
/// they cannot participate in a channel-dependency cycle (verified in
/// [`crate::cdg`] tests).
///
/// # Examples
///
/// ```
/// use noc_routing::{RoutingAlgorithm, SpidergonAcrossFirst};
/// use noc_topology::{Direction, NodeId, Spidergon};
///
/// let algo = SpidergonAcrossFirst::new(&Spidergon::new(12)?);
/// // Ring distance 5 > 12/4: take the across link first.
/// assert_eq!(
///     algo.next_hop(NodeId::new(0), NodeId::new(5)),
///     Direction::Across,
/// );
/// // Then finish along the ring from the opposite node (6).
/// assert_eq!(
///     algo.next_hop(NodeId::new(6), NodeId::new(5)),
///     Direction::CounterClockwise,
/// );
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpidergonAcrossFirst {
    num_nodes: usize,
}

impl SpidergonAcrossFirst {
    /// Creates the routing function for a specific Spidergon.
    pub fn new(spidergon: &Spidergon) -> Self {
        SpidergonAcrossFirst {
            num_nodes: spidergon.num_nodes(),
        }
    }

    /// Creates the routing function for a Spidergon of `num_nodes`
    /// nodes without constructing the topology.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is odd or below 4.
    pub fn for_nodes(num_nodes: usize) -> Self {
        assert!(
            num_nodes >= 4 && num_nodes.is_multiple_of(2),
            "spidergon requires an even node count >= 4"
        );
        SpidergonAcrossFirst { num_nodes }
    }

    /// Number of nodes of the Spidergon this algorithm routes on.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for spidergon of {} nodes",
            self.num_nodes
        );
    }

    /// Returns `true` if a packet at `current` for `dest` must take the
    /// across link (ring distance strictly greater than `N/4`).
    pub fn takes_across(&self, current: NodeId, dest: NodeId) -> bool {
        self.check(current);
        self.check(dest);
        let n = self.num_nodes;
        let cw = (dest.index() + n - current.index()) % n;
        let ring_dist = cw.min(n - cw);
        4 * ring_dist > n
    }
}

impl RoutingAlgorithm for SpidergonAcrossFirst {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        self.check(current);
        self.check(dest);
        if current == dest {
            return Direction::Local;
        }
        if self.takes_across(current, dest) {
            return Direction::Across;
        }
        let n = self.num_nodes;
        let cw = (dest.index() + n - current.index()) % n;
        if cw <= n - cw {
            Direction::Clockwise
        } else {
            Direction::CounterClockwise
        }
    }

    fn num_vcs_required(&self) -> usize {
        2
    }

    fn vc_for_hop(
        &self,
        current: NodeId,
        _dest: NodeId,
        dir: Direction,
        current_vc: usize,
    ) -> usize {
        if dir == Direction::Across {
            0
        } else {
            dateline_vc(self.num_nodes, current, dir, current_vc)
        }
    }

    fn label(&self) -> String {
        "across-first".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::Spidergon;

    fn algo(n: usize) -> SpidergonAcrossFirst {
        SpidergonAcrossFirst::new(&Spidergon::new(n).unwrap())
    }

    #[test]
    fn near_targets_go_direct() {
        let a = algo(12);
        assert_eq!(
            a.next_hop(NodeId::new(0), NodeId::new(2)),
            Direction::Clockwise
        );
        assert_eq!(
            a.next_hop(NodeId::new(0), NodeId::new(10)),
            Direction::CounterClockwise
        );
        assert_eq!(
            a.next_hop(NodeId::new(0), NodeId::new(3)),
            Direction::Clockwise,
            "distance exactly N/4 stays on the ring"
        );
    }

    #[test]
    fn far_targets_take_across_first() {
        let a = algo(12);
        for far in [4usize, 5, 6, 7, 8] {
            assert_eq!(
                a.next_hop(NodeId::new(0), NodeId::new(far)),
                Direction::Across,
                "target {far}"
            );
        }
    }

    #[test]
    fn across_predicate_never_fires_after_across_hop() {
        for n in (4..=40usize).step_by(2) {
            let sg = Spidergon::new(n).unwrap();
            let a = algo(n);
            for src in sg.node_ids() {
                for dst in sg.node_ids() {
                    if a.takes_across(src, dst) {
                        let opposite = sg.opposite(src);
                        assert!(!a.takes_across(opposite, dst), "n={n} src={src} dst={dst}");
                    }
                }
            }
        }
    }

    #[test]
    fn routes_are_shortest_paths() {
        for n in [4usize, 6, 8, 10, 12, 16, 22] {
            let sg = Spidergon::new(n).unwrap();
            let a = algo(n);
            let apd = sg.graph().all_pairs_distances();
            for src in sg.node_ids() {
                for dst in sg.node_ids() {
                    // Walk the route and count hops.
                    let mut at = src;
                    let mut hops = 0u32;
                    while at != dst {
                        let dir = a.next_hop(at, dst);
                        at = sg.neighbor(at, dir).expect("valid direction");
                        hops += 1;
                        assert!(hops as usize <= n, "route loops: n={n} src={src} dst={dst}");
                    }
                    assert_eq!(
                        hops,
                        apd.distance(src.index(), dst.index()),
                        "n={n} src={src} dst={dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn across_hop_uses_vc_zero_ring_uses_dateline() {
        let a = algo(8);
        assert_eq!(
            a.vc_for_hop(NodeId::new(0), NodeId::new(4), Direction::Across, 1),
            0
        );
        assert_eq!(
            a.vc_for_hop(NodeId::new(7), NodeId::new(1), Direction::Clockwise, 0),
            1
        );
        assert_eq!(
            a.vc_for_hop(NodeId::new(3), NodeId::new(4), Direction::Clockwise, 0),
            0
        );
    }

    #[test]
    fn destination_returns_local() {
        let a = algo(6);
        assert_eq!(a.next_hop(NodeId::new(2), NodeId::new(2)), Direction::Local);
    }

    #[test]
    #[should_panic(expected = "even node count")]
    fn for_nodes_rejects_odd() {
        let _ = SpidergonAcrossFirst::for_nodes(7);
    }
}

/// Across-Last routing on the Spidergon: the dual of
/// [`SpidergonAcrossFirst`].
///
/// Far targets (ring distance `> N/4`) are reached by travelling along
/// the ring towards the node *opposite* the destination and taking the
/// across link as the **final** hop; near targets use the ring
/// directly. Path lengths equal Across-First's (both are minimal), but
/// the link usage differs: Across-First loads the across link of the
/// *source*, Across-Last the across link of the *destination* — which
/// changes how hot-spot pressure distributes over the network.
///
/// Virtual channels: ring hops use the dateline scheme; the across hop
/// keeps the packet's current VC (it is the last hop, so it creates no
/// further dependencies; verified deadlock-free in tests).
///
/// # Examples
///
/// ```
/// use noc_routing::{RoutingAlgorithm, SpidergonAcrossLast};
/// use noc_topology::{Direction, NodeId, Spidergon};
///
/// let algo = SpidergonAcrossLast::new(&Spidergon::new(12)?);
/// // Ring distance 5 > 3: ride the ring to the opposite node (11),
/// // then cross.
/// assert_eq!(
///     algo.next_hop(NodeId::new(0), NodeId::new(5)),
///     Direction::CounterClockwise,
/// );
/// assert_eq!(
///     algo.next_hop(NodeId::new(11), NodeId::new(5)),
///     Direction::Across,
/// );
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpidergonAcrossLast {
    num_nodes: usize,
}

impl SpidergonAcrossLast {
    /// Creates the routing function for a specific Spidergon.
    pub fn new(spidergon: &Spidergon) -> Self {
        SpidergonAcrossLast {
            num_nodes: spidergon.num_nodes(),
        }
    }

    /// Creates the routing function for a Spidergon of `num_nodes`
    /// nodes without constructing the topology.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is odd or below 4.
    pub fn for_nodes(num_nodes: usize) -> Self {
        assert!(
            num_nodes >= 4 && num_nodes.is_multiple_of(2),
            "spidergon requires an even node count >= 4"
        );
        SpidergonAcrossLast { num_nodes }
    }

    /// Number of nodes of the Spidergon this algorithm routes on.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for spidergon of {} nodes",
            self.num_nodes
        );
    }

    fn ring_distance(&self, a: usize, b: usize) -> usize {
        let n = self.num_nodes;
        let cw = (b + n - a) % n;
        cw.min(n - cw)
    }
}

impl RoutingAlgorithm for SpidergonAcrossLast {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        self.check(current);
        self.check(dest);
        if current == dest {
            return Direction::Local;
        }
        let n = self.num_nodes;
        let direct = self.ring_distance(current.index(), dest.index());
        if 4 * direct <= n {
            // Near target: plain shortest ring direction.
            let cw = (dest.index() + n - current.index()) % n;
            return if cw <= n - cw {
                Direction::Clockwise
            } else {
                Direction::CounterClockwise
            };
        }
        // Far target: head for the node opposite the destination, then
        // take the across link as the last hop.
        let opposite = (dest.index() + n / 2) % n;
        if current.index() == opposite {
            return Direction::Across;
        }
        let cw = (opposite + n - current.index()) % n;
        if cw <= n - cw {
            Direction::Clockwise
        } else {
            Direction::CounterClockwise
        }
    }

    fn num_vcs_required(&self) -> usize {
        2
    }

    fn vc_for_hop(
        &self,
        current: NodeId,
        _dest: NodeId,
        dir: Direction,
        current_vc: usize,
    ) -> usize {
        if dir == Direction::Across {
            current_vc
        } else {
            dateline_vc(self.num_nodes, current, dir, current_vc)
        }
    }

    fn label(&self) -> String {
        "across-last".to_owned()
    }
}

#[cfg(test)]
mod across_last_tests {
    use super::*;
    use crate::cdg::CdgAnalysis;
    use crate::validate::validate_all_routes;
    use noc_topology::Topology;

    #[test]
    fn across_last_is_minimal_everywhere() {
        for n in [4usize, 6, 8, 10, 12, 16, 22] {
            let sg = Spidergon::new(n).unwrap();
            let algo = SpidergonAcrossLast::for_nodes(n);
            let report = validate_all_routes(&algo, &sg).unwrap();
            assert_eq!(report.non_minimal, 0, "n={n}");
        }
    }

    #[test]
    fn across_last_is_deadlock_free_with_dateline() {
        for n in (4..=20usize).step_by(2) {
            let sg = Spidergon::new(n).unwrap();
            let algo = SpidergonAcrossLast::for_nodes(n);
            let analysis = CdgAnalysis::analyze(&algo, &sg);
            assert!(analysis.is_deadlock_free(), "n={n}: {:?}", analysis.cycle());
        }
    }

    #[test]
    fn across_is_only_ever_the_final_hop() {
        use crate::validate::walk_route;
        let n = 16;
        let sg = Spidergon::new(n).unwrap();
        let algo = SpidergonAcrossLast::for_nodes(n);
        for src in sg.node_ids() {
            for dst in sg.node_ids() {
                let route = walk_route(&algo, &sg, src, dst).unwrap();
                let dirs = route.directions();
                for (i, &d) in dirs.iter().enumerate() {
                    if d == Direction::Across {
                        assert_eq!(i, dirs.len() - 1, "{src}->{dst}: across mid-route");
                    }
                }
            }
        }
    }

    #[test]
    fn mirrors_across_first_path_lengths() {
        use crate::validate::walk_route;
        let n = 12;
        let sg = Spidergon::new(n).unwrap();
        let first = SpidergonAcrossFirst::for_nodes(n);
        let last = SpidergonAcrossLast::for_nodes(n);
        for src in sg.node_ids() {
            for dst in sg.node_ids() {
                let a = walk_route(&first, &sg, src, dst).unwrap().len();
                let b = walk_route(&last, &sg, src, dst).unwrap().len();
                assert_eq!(a, b, "{src}->{dst}");
            }
        }
    }
}
