//! Dimension-order (XY) routing for rectangular and irregular meshes.

use crate::RoutingAlgorithm;
use noc_topology::{Direction, IrregularMesh, NodeId, RectMesh, Topology};

/// The paper's 2D Mesh routing: *"Dimension order routing is adopted:
/// flits from the source node migrate along the X (horizontal link)
/// nodes up to the column of the target, then along the Y (vertical
/// link) nodes up to the target node."*
///
/// Dimension-order routing is minimal and deadlock-free with a single
/// virtual channel (the turn set excludes the cycles; verified in
/// [`crate::cdg`] tests), which is why the paper gives mesh routers one
/// output buffer per link where ring-like routers get a pair.
///
/// The same implementation routes **irregular meshes** (partial last
/// row) with one amendment: a packet whose current router is in the
/// partial last row and whose destination lies in another row first
/// moves **North** into the full part of the grid, then routes XY as
/// usual. Plain X-first could otherwise step onto a missing grid
/// position (e.g. east past the end of the partial row). The amendment
/// preserves minimality (the Manhattan distance is unchanged) and
/// deadlock freedom: it only adds North-to-East/West turns, and a
/// dependency cycle would also need a South-to-East/West turn, which
/// never occurs (proved by the [`crate::cdg`] tests).
///
/// # Examples
///
/// ```
/// use noc_routing::{MeshXY, RoutingAlgorithm};
/// use noc_topology::{Direction, NodeId, RectMesh};
///
/// let mesh = RectMesh::new(4, 2)?; // paper's 8-node mesh
/// let algo = MeshXY::new(&mesh);
/// // Node 0 -> node 7: X first (east), then Y (south).
/// assert_eq!(algo.next_hop(NodeId::new(0), NodeId::new(7)), Direction::East);
/// assert_eq!(algo.next_hop(NodeId::new(3), NodeId::new(7)), Direction::South);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MeshXY {
    cols: usize,
    num_nodes: usize,
}

impl MeshXY {
    /// Creates the routing function for a full rectangular mesh.
    pub fn new(mesh: &RectMesh) -> Self {
        MeshXY {
            cols: mesh.cols(),
            num_nodes: mesh.cols() * mesh.rows(),
        }
    }

    /// Creates the routing function for an irregular mesh.
    pub fn new_irregular(mesh: &IrregularMesh) -> Self {
        MeshXY {
            cols: mesh.cols(),
            num_nodes: mesh.num_nodes(),
        }
    }

    /// Creates the routing function from raw grid parameters: `cols`
    /// columns, `num_nodes` nodes laid out row-major.
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0` or `num_nodes < 2`.
    pub fn for_grid(cols: usize, num_nodes: usize) -> Self {
        assert!(cols > 0, "mesh requires at least one column");
        assert!(num_nodes >= 2, "mesh requires at least two nodes");
        MeshXY { cols, num_nodes }
    }

    /// Number of columns of the routed grid.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of nodes of the routed grid.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for mesh of {} nodes",
            self.num_nodes
        );
        (node.index() % self.cols, node.index() / self.cols)
    }
}

impl MeshXY {
    /// Returns `true` if `row` is a partially-filled last row.
    fn row_is_partial(&self, row: usize) -> bool {
        !self.num_nodes.is_multiple_of(self.cols) && row == (self.num_nodes - 1) / self.cols
    }
}

impl RoutingAlgorithm for MeshXY {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        let (cx, cy) = self.coords(current);
        let (dx, dy) = self.coords(dest);
        // Irregular-mesh amendment: climb out of the partial last row
        // before sweeping X (see the type-level docs).
        if cy != dy && self.row_is_partial(cy) {
            return Direction::North;
        }
        if cx < dx {
            Direction::East
        } else if cx > dx {
            Direction::West
        } else if cy < dy {
            Direction::South
        } else if cy > dy {
            Direction::North
        } else {
            Direction::Local
        }
    }

    fn label(&self) -> String {
        "xy-dimension-order".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::Topology;

    #[test]
    fn x_before_y() {
        let mesh = RectMesh::new(4, 4).unwrap();
        let a = MeshXY::new(&mesh);
        // 0 at (0,0), 15 at (3,3): go east until column 3, then south.
        let mut at = NodeId::new(0);
        let mut dirs = Vec::new();
        while at != NodeId::new(15) {
            let d = a.next_hop(at, NodeId::new(15));
            dirs.push(d);
            at = mesh.neighbor(at, d).unwrap();
        }
        assert_eq!(
            dirs,
            vec![
                Direction::East,
                Direction::East,
                Direction::East,
                Direction::South,
                Direction::South,
                Direction::South
            ]
        );
    }

    #[test]
    fn routes_are_minimal_on_rect_meshes() {
        for (m, n) in [(2usize, 4usize), (4, 6), (3, 3), (1, 5), (5, 2)] {
            let mesh = RectMesh::new(m, n).unwrap();
            let a = MeshXY::new(&mesh);
            for src in mesh.node_ids() {
                for dst in mesh.node_ids() {
                    let mut at = src;
                    let mut hops = 0usize;
                    while at != dst {
                        let d = a.next_hop(at, dst);
                        at = mesh
                            .neighbor(at, d)
                            .unwrap_or_else(|| panic!("invalid hop {d} at {at}"));
                        hops += 1;
                        assert!(hops <= m * n);
                    }
                    assert_eq!(hops, mesh.manhattan_distance(src, dst));
                }
            }
        }
    }

    #[test]
    fn routes_stay_inside_irregular_meshes() {
        for (cols, n) in [(3usize, 7usize), (4, 10), (5, 23), (3, 8), (4, 14)] {
            let mesh = IrregularMesh::new(cols, n).unwrap();
            let a = MeshXY::new_irregular(&mesh);
            for src in mesh.node_ids() {
                for dst in mesh.node_ids() {
                    let mut at = src;
                    let mut hops = 0usize;
                    while at != dst {
                        let d = a.next_hop(at, dst);
                        at = mesh.neighbor(at, d).unwrap_or_else(|| {
                            panic!("cols={cols} n={n}: XY left the mesh at {at} dir {d}")
                        });
                        hops += 1;
                        assert!(hops <= n);
                    }
                    assert_eq!(hops, mesh.manhattan_distance(src, dst));
                }
            }
        }
    }

    #[test]
    fn single_vc_suffices() {
        let mesh = RectMesh::new(3, 3).unwrap();
        assert_eq!(MeshXY::new(&mesh).num_vcs_required(), 1);
        // Default vc_for_hop keeps the current VC.
        let a = MeshXY::new(&mesh);
        assert_eq!(
            a.vc_for_hop(NodeId::new(0), NodeId::new(2), Direction::East, 0),
            0
        );
    }

    #[test]
    fn local_at_destination() {
        let a = MeshXY::for_grid(3, 9);
        assert_eq!(a.next_hop(NodeId::new(4), NodeId::new(4)), Direction::Local);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let a = MeshXY::for_grid(3, 6);
        let _ = a.next_hop(NodeId::new(6), NodeId::new(0));
    }
}
