//! Table-driven routing: BFS-computed next-hop tables for arbitrary
//! topologies.
//!
//! The paper lists "table-driven" among the flit-by-flit routing options
//! for NoCs. Here it serves two roles: the routing function for
//! topologies with no closed-form scheme (general irregular meshes), and
//! a shortest-path *oracle* that the algebraic algorithms are validated
//! against.

use crate::RoutingAlgorithm;
use noc_topology::{Direction, NodeId, Topology};

/// Deterministic shortest-path routing from a precomputed table.
///
/// For every `(current, dest)` pair the table stores the output
/// direction of a shortest path, chosen deterministically: among the
/// neighbors one hop closer to `dest`, the one whose direction has the
/// lowest [`Direction::index`]. The table for an `N`-node topology uses
/// `O(N^2)` bytes.
///
/// # Examples
///
/// ```
/// use noc_routing::{RoutingAlgorithm, TableRouting};
/// use noc_topology::{IrregularMesh, NodeId};
///
/// let mesh = IrregularMesh::new(3, 7)?;
/// let algo = TableRouting::from_topology(&mesh);
/// let hop = algo.next_hop(NodeId::new(0), NodeId::new(6));
/// assert_ne!(hop, noc_topology::Direction::Local);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableRouting {
    num_nodes: usize,
    /// Row-major `[current][dest]` next-hop directions; `Local` on the
    /// diagonal.
    table: Vec<Direction>,
    vcs: usize,
}

impl TableRouting {
    /// Builds the next-hop table for `topo` by running one BFS per
    /// destination.
    ///
    /// The resulting algorithm requests 1 virtual channel; general
    /// table routing is **not** automatically deadlock-free — check
    /// with [`crate::cdg::CdgAnalysis`] before simulating a topology
    /// whose dependency graph has cycles.
    ///
    /// # Panics
    ///
    /// Panics if `topo` is disconnected.
    pub fn from_topology<T: Topology + ?Sized>(topo: &T) -> Self {
        Self::with_vcs(topo, 1)
    }

    /// Like [`from_topology`](Self::from_topology) but declaring a
    /// virtual-channel requirement (the table itself is identical; VCs
    /// are kept as selected by the default policy).
    ///
    /// # Panics
    ///
    /// Panics if `topo` is disconnected or `vcs == 0`.
    pub fn with_vcs<T: Topology + ?Sized>(topo: &T, vcs: usize) -> Self {
        assert!(vcs > 0, "at least one virtual channel is required");
        let n = topo.num_nodes();
        let graph = topo.graph();
        let mut table = vec![Direction::Local; n * n];
        for dest in 0..n {
            // BFS from the destination gives distance-to-dest for every
            // node; each node picks its best neighbor.
            let dist = graph.bfs_distances(dest);
            for current in 0..n {
                if current == dest {
                    continue;
                }
                assert_ne!(
                    dist[current],
                    noc_topology::graph::UNREACHABLE,
                    "topology is disconnected"
                );
                let cur = NodeId::new(current);
                let mut chosen: Option<Direction> = None;
                for d in topo.directions(cur) {
                    if let Some(nb) = topo.neighbor(cur, d) {
                        if dist[nb.index()] + 1 == dist[current]
                            && chosen.is_none_or(|c| d.index() < c.index())
                        {
                            chosen = Some(d);
                        }
                    }
                }
                table[current * n + dest] =
                    chosen.expect("connected graph always has a closer neighbor");
            }
        }
        TableRouting {
            num_nodes: n,
            table,
            vcs,
        }
    }

    /// Number of nodes the table covers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

impl RoutingAlgorithm for TableRouting {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        assert!(
            current.index() < self.num_nodes && dest.index() < self.num_nodes,
            "node out of range for table of {} nodes",
            self.num_nodes
        );
        self.table[current.index() * self.num_nodes + dest.index()]
    }

    fn num_vcs_required(&self) -> usize {
        self.vcs
    }

    fn label(&self) -> String {
        "table-driven".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::{IrregularMesh, RectMesh, Ring, Spidergon};

    #[test]
    fn table_routes_are_shortest_on_all_families() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Ring::new(9).unwrap()),
            Box::new(Spidergon::new(14).unwrap()),
            Box::new(RectMesh::new(3, 4).unwrap()),
            Box::new(IrregularMesh::new(4, 11).unwrap()),
        ];
        for topo in &topos {
            let algo = TableRouting::from_topology(topo.as_ref());
            let apd = topo.graph().all_pairs_distances();
            for src in topo.node_ids() {
                for dst in topo.node_ids() {
                    let mut at = src;
                    let mut hops = 0u32;
                    while at != dst {
                        let d = algo.next_hop(at, dst);
                        at = topo.neighbor(at, d).expect("table direction is valid");
                        hops += 1;
                        assert!(hops as usize <= topo.num_nodes());
                    }
                    assert_eq!(
                        hops,
                        apd.distance(src.index(), dst.index()),
                        "{} {src}->{dst}",
                        topo.label()
                    );
                }
            }
        }
    }

    #[test]
    fn tie_break_is_lowest_direction_index() {
        // On a spidergon with ring distance exactly N/2, both the across
        // link (index 2) and nothing else gives distance 1; for a target
        // at ring distance 2 on a 4-node spidergon, clockwise (index 0)
        // and counterclockwise tie at some nodes.
        let sg = Spidergon::new(4).unwrap();
        let algo = TableRouting::from_topology(&sg);
        // From 0 to 2: across is the 1-hop path, must be chosen.
        assert_eq!(
            algo.next_hop(NodeId::new(0), NodeId::new(2)),
            Direction::Across
        );
        // From 0 to 1: clockwise direct (1 hop).
        assert_eq!(
            algo.next_hop(NodeId::new(0), NodeId::new(1)),
            Direction::Clockwise
        );
    }

    #[test]
    fn diagonal_is_local() {
        let ring = Ring::new(5).unwrap();
        let algo = TableRouting::from_topology(&ring);
        for v in ring.node_ids() {
            assert_eq!(algo.next_hop(v, v), Direction::Local);
        }
    }

    #[test]
    fn vcs_are_reported() {
        let ring = Ring::new(5).unwrap();
        assert_eq!(TableRouting::from_topology(&ring).num_vcs_required(), 1);
        assert_eq!(TableRouting::with_vcs(&ring, 2).num_vcs_required(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one virtual channel")]
    fn zero_vcs_rejected() {
        let ring = Ring::new(5).unwrap();
        let _ = TableRouting::with_vcs(&ring, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let ring = Ring::new(5).unwrap();
        let algo = TableRouting::from_topology(&ring);
        let _ = algo.next_hop(NodeId::new(5), NodeId::new(0));
    }
}
