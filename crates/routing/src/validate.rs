//! Route validation: walk every source/destination pair through a
//! routing algorithm and check termination, port validity and (optional)
//! minimality.

use crate::{Route, RoutingAlgorithm};
use core::fmt;
use noc_topology::{Direction, NodeId, Topology};

/// Error produced while walking a route.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RouteError {
    /// The algorithm returned a direction with no link at the node.
    InvalidDirection {
        /// Node at which the bad decision was made.
        node: NodeId,
        /// The direction that has no link there.
        direction: Direction,
    },
    /// The route exceeded the hop budget (the algorithm loops).
    HopBudgetExceeded {
        /// Source of the walked route.
        src: NodeId,
        /// Destination of the walked route.
        dst: NodeId,
        /// The budget that was exceeded.
        budget: usize,
    },
    /// The algorithm returned [`Direction::Local`] before reaching the
    /// destination.
    PrematureDelivery {
        /// Node at which delivery was (wrongly) signalled.
        node: NodeId,
        /// Intended destination.
        dst: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RouteError::InvalidDirection { node, direction } => {
                write!(f, "no link in direction {direction} at node {node}")
            }
            RouteError::HopBudgetExceeded { src, dst, budget } => {
                write!(f, "route {src} -> {dst} exceeded {budget} hops")
            }
            RouteError::PrematureDelivery { node, dst } => {
                write!(f, "local delivery at {node} before destination {dst}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Walks the route from `src` to `dst` by repeatedly applying `algo`,
/// recording nodes, directions and virtual channels.
///
/// The hop budget is `4 * num_nodes + 4`, enough for any minimal or
/// near-minimal deterministic scheme and small enough to catch loops
/// quickly.
///
/// # Errors
///
/// Returns a [`RouteError`] if the algorithm leaves the topology, loops,
/// or delivers prematurely.
///
/// # Examples
///
/// ```
/// use noc_routing::{validate::walk_route, SpidergonAcrossFirst};
/// use noc_topology::{NodeId, Spidergon};
///
/// let sg = Spidergon::new(12)?;
/// let algo = SpidergonAcrossFirst::new(&sg);
/// let route = walk_route(&algo, &sg, NodeId::new(0), NodeId::new(5))?;
/// assert_eq!(route.len(), 2); // across + one ring hop
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn walk_route<A, T>(algo: &A, topo: &T, src: NodeId, dst: NodeId) -> Result<Route, RouteError>
where
    A: RoutingAlgorithm + ?Sized,
    T: Topology + ?Sized,
{
    let budget = 4 * topo.num_nodes() + 4;
    let mut nodes = vec![src];
    let mut directions = Vec::new();
    let mut vcs = Vec::new();
    let mut at = src;
    let mut vc = 0usize;
    while at != dst {
        if directions.len() >= budget {
            return Err(RouteError::HopBudgetExceeded { src, dst, budget });
        }
        let dir = algo.next_hop(at, dst);
        if dir == Direction::Local {
            return Err(RouteError::PrematureDelivery { node: at, dst });
        }
        let next = topo.neighbor(at, dir).ok_or(RouteError::InvalidDirection {
            node: at,
            direction: dir,
        })?;
        vc = algo.vc_for_hop(at, dst, dir, vc);
        directions.push(dir);
        vcs.push(vc);
        nodes.push(next);
        at = next;
    }
    Ok(Route::new(nodes, directions, vcs))
}

/// Aggregate report from validating every ordered pair of nodes.
#[derive(Clone, PartialEq, Debug)]
pub struct ValidationReport {
    /// Number of `(src, dst)` pairs walked (including `src == dst`).
    pub pairs: usize,
    /// Number of routes that were strictly longer than the shortest
    /// path.
    pub non_minimal: usize,
    /// Total hops over all routes.
    pub total_hops: u64,
    /// Longest route encountered.
    pub max_hops: usize,
    /// Highest virtual channel index used by any hop.
    pub max_vc: usize,
}

impl ValidationReport {
    /// Mean route length over ordered pairs with `src != dst`.
    pub fn mean_hops(&self, num_nodes: usize) -> f64 {
        if num_nodes < 2 {
            return 0.0;
        }
        self.total_hops as f64 / (num_nodes * (num_nodes - 1)) as f64
    }
}

/// Walks every ordered pair through `algo` and reports route statistics.
///
/// # Errors
///
/// Returns the first [`RouteError`] encountered, if any.
///
/// # Panics
///
/// Panics if `topo` is disconnected.
pub fn validate_all_routes<A, T>(algo: &A, topo: &T) -> Result<ValidationReport, RouteError>
where
    A: RoutingAlgorithm + ?Sized,
    T: Topology + ?Sized,
{
    let apd = topo.graph().all_pairs_distances();
    let mut report = ValidationReport {
        pairs: 0,
        non_minimal: 0,
        total_hops: 0,
        max_hops: 0,
        max_vc: 0,
    };
    for src in topo.node_ids() {
        for dst in topo.node_ids() {
            let route = walk_route(algo, topo, src, dst)?;
            report.pairs += 1;
            report.total_hops += route.len() as u64;
            report.max_hops = report.max_hops.max(route.len());
            report.max_vc = report
                .max_vc
                .max(route.vcs().iter().copied().max().unwrap_or(0));
            if route.len() as u32 > apd.distance(src.index(), dst.index()) {
                report.non_minimal += 1;
            }
        }
    }
    Ok(report)
}

/// Verifies that every candidate of an (adaptive) routing algorithm
/// makes progress: each candidate direction leads to a node strictly
/// one hop closer to the destination. This implies that *every*
/// adaptive resolution of the algorithm terminates and is minimal.
///
/// # Errors
///
/// Returns [`RouteError::InvalidDirection`] if a candidate has no link,
/// [`RouteError::PrematureDelivery`] if `Local` is offered away from
/// the destination, and [`RouteError::HopBudgetExceeded`] (with a zero
/// budget) for a candidate that fails to make progress — such a
/// candidate could be chosen forever.
///
/// # Panics
///
/// Panics if `topo` is disconnected.
pub fn validate_all_candidates<A, T>(algo: &A, topo: &T) -> Result<(), RouteError>
where
    A: RoutingAlgorithm + ?Sized,
    T: Topology + ?Sized,
{
    let apd = topo.graph().all_pairs_distances();
    for dst in topo.node_ids() {
        for current in topo.node_ids() {
            if current == dst {
                continue;
            }
            // The documented contract: the preferred candidate is the
            // deterministic next hop.
            let candidates = algo.candidates(current, dst);
            if candidates.first() != Some(&algo.next_hop(current, dst)) {
                return Err(RouteError::InvalidDirection {
                    node: current,
                    direction: algo.next_hop(current, dst),
                });
            }
            for dir in candidates {
                if dir == Direction::Local {
                    return Err(RouteError::PrematureDelivery { node: current, dst });
                }
                let next = topo
                    .neighbor(current, dir)
                    .ok_or(RouteError::InvalidDirection {
                        node: current,
                        direction: dir,
                    })?;
                let here = apd.distance(current.index(), dst.index());
                let there = apd.distance(next.index(), dst.index());
                if there + 1 != here {
                    return Err(RouteError::HopBudgetExceeded {
                        src: current,
                        dst,
                        budget: 0,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeshXY, RingShortestPath, SpidergonAcrossFirst, TableRouting};
    use noc_topology::{IrregularMesh, RectMesh, Ring, Spidergon};

    #[test]
    fn all_paper_algorithms_are_minimal() {
        let ring = Ring::new(11).unwrap();
        let r = validate_all_routes(&RingShortestPath::new(&ring), &ring).unwrap();
        assert_eq!(r.non_minimal, 0);
        assert_eq!(r.max_vc, 1, "dateline uses VC 1 on wrapping routes");

        let sg = Spidergon::new(16).unwrap();
        let r = validate_all_routes(&SpidergonAcrossFirst::new(&sg), &sg).unwrap();
        assert_eq!(r.non_minimal, 0);

        let mesh = RectMesh::new(4, 6).unwrap();
        let r = validate_all_routes(&MeshXY::new(&mesh), &mesh).unwrap();
        assert_eq!(r.non_minimal, 0);
        assert_eq!(r.max_vc, 0, "XY never leaves VC 0");

        let irr = IrregularMesh::new(4, 13).unwrap();
        let r = validate_all_routes(&MeshXY::new_irregular(&irr), &irr).unwrap();
        assert_eq!(r.non_minimal, 0);

        let r = validate_all_routes(&TableRouting::from_topology(&irr), &irr).unwrap();
        assert_eq!(r.non_minimal, 0);
    }

    #[test]
    fn mean_hops_matches_topology_average_distance() {
        let sg = Spidergon::new(12).unwrap();
        let report = validate_all_routes(&SpidergonAcrossFirst::new(&sg), &sg).unwrap();
        let expected = noc_topology::metrics::average_distance(&sg);
        assert!((report.mean_hops(12) - expected).abs() < 1e-12);
    }

    #[test]
    fn max_hops_equals_diameter_for_minimal_routing() {
        let ring = Ring::new(10).unwrap();
        let report = validate_all_routes(&RingShortestPath::new(&ring), &ring).unwrap();
        assert_eq!(report.max_hops, 5);
    }

    #[test]
    fn looping_algorithm_is_caught() {
        #[derive(Debug)]
        struct AlwaysClockwise;
        impl RoutingAlgorithm for AlwaysClockwise {
            fn next_hop(&self, _c: NodeId, _d: NodeId) -> Direction {
                Direction::Clockwise
            }
            fn label(&self) -> String {
                "always-cw".into()
            }
        }
        let ring = Ring::new(6).unwrap();
        // 0 -> 0 terminates immediately, but 0 -> anything unreachable by
        // termination check loops... actually clockwise always reaches
        // the target eventually; use a self-loop-free failing case:
        // routing to the node itself from elsewhere works, so craft a
        // true loop with an algorithm that bounces between two nodes.
        #[derive(Debug)]
        struct Bouncer;
        impl RoutingAlgorithm for Bouncer {
            fn next_hop(&self, c: NodeId, _d: NodeId) -> Direction {
                if c.index().is_multiple_of(2) {
                    Direction::Clockwise
                } else {
                    Direction::CounterClockwise
                }
            }
            fn label(&self) -> String {
                "bouncer".into()
            }
        }
        let err = walk_route(&Bouncer, &ring, NodeId::new(0), NodeId::new(3)).unwrap_err();
        assert!(matches!(err, RouteError::HopBudgetExceeded { .. }));
        // AlwaysClockwise is legal (non-minimal but terminating).
        let route = walk_route(&AlwaysClockwise, &ring, NodeId::new(3), NodeId::new(1));
        assert_eq!(route.unwrap().len(), 4);
    }

    #[test]
    fn invalid_direction_is_caught() {
        #[derive(Debug)]
        struct GoNorth;
        impl RoutingAlgorithm for GoNorth {
            fn next_hop(&self, _c: NodeId, _d: NodeId) -> Direction {
                Direction::North
            }
            fn label(&self) -> String {
                "north".into()
            }
        }
        let ring = Ring::new(4).unwrap();
        let err = walk_route(&GoNorth, &ring, NodeId::new(0), NodeId::new(2)).unwrap_err();
        assert!(matches!(err, RouteError::InvalidDirection { .. }));
    }

    #[test]
    fn premature_delivery_is_caught() {
        #[derive(Debug)]
        struct InstantLocal;
        impl RoutingAlgorithm for InstantLocal {
            fn next_hop(&self, _c: NodeId, _d: NodeId) -> Direction {
                Direction::Local
            }
            fn label(&self) -> String {
                "instant".into()
            }
        }
        let ring = Ring::new(4).unwrap();
        let err = walk_route(&InstantLocal, &ring, NodeId::new(0), NodeId::new(2)).unwrap_err();
        assert!(matches!(err, RouteError::PrematureDelivery { .. }));
    }

    #[test]
    fn route_error_messages() {
        let e = RouteError::HopBudgetExceeded {
            src: NodeId::new(0),
            dst: NodeId::new(3),
            budget: 20,
        };
        assert!(e.to_string().contains("exceeded 20 hops"));
    }
}
