//! The [`RoutingAlgorithm`] trait: deterministic, flit-level next-hop
//! routing as used by the paper's wormhole routers.

use core::fmt;
use noc_topology::{Direction, NodeId};

/// A deterministic routing algorithm for a fixed topology instance.
///
/// The head flit of a packet consults [`next_hop`] at every router; the
/// remaining flits of the packet follow the wormhole path configured by
/// the head. [`next_hop`] returns [`Direction::Local`] exactly when the
/// packet has reached its destination.
///
/// Virtual-channel selection for deadlock avoidance is part of the
/// algorithm ([`vc_for_hop`]): the dateline scheme used on ring-like
/// topologies must know which hop crosses the wrap-around link.
///
/// Implementations must be *route-consistent*: repeatedly following
/// `next_hop` from any node must reach `dest` in finitely many hops
/// (checked by [`crate::validate::validate_all_routes`]).
///
/// [`next_hop`]: RoutingAlgorithm::next_hop
/// [`vc_for_hop`]: RoutingAlgorithm::vc_for_hop
pub trait RoutingAlgorithm: fmt::Debug {
    /// Direction of the output port a head flit must take at `current`
    /// towards `dest`; [`Direction::Local`] if `current == dest`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range for the algorithm's
    /// topology.
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction;

    /// Number of virtual channels per physical link this algorithm
    /// needs for deadlock freedom (1 for dimension-order mesh routing,
    /// 2 for the dateline scheme on ring-like topologies).
    fn num_vcs_required(&self) -> usize {
        1
    }

    /// Virtual channel a packet should use on the link it is about to
    /// take, given the router it is leaving, the packet's destination,
    /// the chosen direction, and the VC it used on its previous hop (0
    /// at injection).
    ///
    /// The default keeps the current VC. The ring/Spidergon dateline
    /// scheme switches to VC 1 when the hop crosses the wrap-around
    /// edge of a ring direction; the torus scheme selects the VC from
    /// the position of the destination relative to the wrap.
    fn vc_for_hop(
        &self,
        current: NodeId,
        dest: NodeId,
        dir: Direction,
        current_vc: usize,
    ) -> usize {
        let _ = (current, dest, dir);
        current_vc
    }

    /// All output directions a head flit at `current` may legally take
    /// towards `dest`, in preference order.
    ///
    /// Deterministic algorithms return exactly `[next_hop(current,
    /// dest)]` (the default). **Adaptive** algorithms return several
    /// candidates; the router then picks the first whose output queue
    /// can accept the flit, adapting to local congestion. The first
    /// candidate must equal [`next_hop`](RoutingAlgorithm::next_hop)
    /// so that deterministic walks of an adaptive algorithm remain
    /// meaningful, and every candidate must make progress (terminating
    /// routes whichever candidates are chosen).
    ///
    /// Returns `[Direction::Local]` when `current == dest`.
    fn candidates(&self, current: NodeId, dest: NodeId) -> Vec<Direction> {
        vec![self.next_hop(current, dest)]
    }

    /// Appends the same candidates as
    /// [`candidates`](RoutingAlgorithm::candidates) to `out` without
    /// allocating — the form the simulator's switch-allocation hot path
    /// calls with a reused scratch buffer (head flits blocked at a full
    /// output queue re-route every cycle).
    ///
    /// The default appends `next_hop(current, dest)`, matching the
    /// default `candidates`. An algorithm overriding `candidates` must
    /// override this method to stay consistent.
    fn candidates_into(&self, current: NodeId, dest: NodeId, out: &mut Vec<Direction>) {
        out.push(self.next_hop(current, dest));
    }

    /// Short human-readable name, e.g. `"across-first"`.
    fn label(&self) -> String;

    /// Returns `true` if this algorithm always produces exactly one
    /// candidate per `(current, dest)` pair — i.e. its routing decision
    /// is a pure function of the head flit's position and destination.
    ///
    /// Deterministic algorithms can be flattened into a
    /// [`crate::CompiledRoutes`] table. Adaptive algorithms (several
    /// candidates, picked by runtime congestion) must return `false`;
    /// the default is `true`, matching the default
    /// [`candidates`](RoutingAlgorithm::candidates).
    fn is_deterministic(&self) -> bool {
        true
    }
}

/// A full route from `src` to `dst` as produced by repeatedly applying a
/// routing algorithm, including both endpoints.
///
/// Produced by [`crate::validate::walk_route`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Route {
    nodes: Vec<NodeId>,
    directions: Vec<Direction>,
    vcs: Vec<usize>,
}

impl Route {
    /// Creates a route from its hop lists.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes.len() == directions.len() + 1 == vcs.len() + 1`
    /// and `nodes` is nonempty.
    pub fn new(nodes: Vec<NodeId>, directions: Vec<Direction>, vcs: Vec<usize>) -> Self {
        assert!(!nodes.is_empty(), "route must contain at least one node");
        assert_eq!(nodes.len(), directions.len() + 1, "hop count mismatch");
        assert_eq!(directions.len(), vcs.len(), "vc count mismatch");
        Route {
            nodes,
            directions,
            vcs,
        }
    }

    /// Nodes visited, source first, destination last.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Output direction taken at each intermediate node.
    pub fn directions(&self) -> &[Direction] {
        &self.directions
    }

    /// Virtual channel used on each hop.
    pub fn vcs(&self) -> &[usize] {
        &self.vcs
    }

    /// Number of hops (links traversed).
    pub fn len(&self) -> usize {
        self.directions.len()
    }

    /// Returns `true` for the zero-hop route (`src == dst`).
    pub fn is_empty(&self) -> bool {
        self.directions.is_empty()
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("route is nonempty")
    }

    /// Iterator over `(from, direction, vc, to)` hop tuples.
    pub fn hops(&self) -> impl Iterator<Item = (NodeId, Direction, usize, NodeId)> + '_ {
        self.directions
            .iter()
            .zip(&self.vcs)
            .enumerate()
            .map(|(i, (&d, &vc))| (self.nodes[i], d, vc, self.nodes[i + 1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_route() -> Route {
        Route::new(
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            vec![Direction::Clockwise, Direction::Clockwise],
            vec![0, 1],
        )
    }

    #[test]
    fn route_accessors() {
        let r = sample_route();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.source(), NodeId::new(0));
        assert_eq!(r.destination(), NodeId::new(2));
        let hops: Vec<_> = r.hops().collect();
        assert_eq!(
            hops[1],
            (NodeId::new(1), Direction::Clockwise, 1, NodeId::new(2))
        );
    }

    #[test]
    fn zero_hop_route() {
        let r = Route::new(vec![NodeId::new(3)], vec![], vec![]);
        assert!(r.is_empty());
        assert_eq!(r.source(), r.destination());
    }

    #[test]
    #[should_panic(expected = "hop count mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Route::new(vec![NodeId::new(0)], vec![Direction::Clockwise], vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_route_panics() {
        let _ = Route::new(vec![], vec![], vec![]);
    }
}
