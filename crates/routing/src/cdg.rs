//! Channel dependency graph (CDG) analysis for wormhole deadlock
//! freedom.
//!
//! In wormhole switching a packet holds its allocated channels while
//! waiting for the next one, so a cycle in the *channel dependency
//! graph* — channel `c1` depends on `c2` if some route uses `c1` and
//! then immediately `c2` — permits deadlock (Dally & Seitz). The paper
//! motivates the pair of output buffers (virtual channels) on Ring and
//! Spidergon links precisely as a deadlock-avoidance mechanism; this
//! module proves the property for the concrete routing algorithms:
//!
//! * ring shortest-path with the dateline scheme (2 VCs): acyclic;
//! * the same ring routing collapsed to one VC: **cyclic** (the
//!   avoidance is necessary, not decorative);
//! * Spidergon Across-First with dateline (2 VCs): acyclic;
//! * mesh XY with a single VC: acyclic.

use crate::validate::walk_route;
use crate::RoutingAlgorithm;
use noc_topology::{Direction, NodeId, Topology};
use std::collections::HashMap;

/// A unidirectional virtual channel: the output queue of `node` towards
/// direction `direction` on virtual channel `vc`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Channel {
    /// Router owning the output queue.
    pub node: NodeId,
    /// Link direction of the queue.
    pub direction: Direction,
    /// Virtual channel index on that link.
    pub vc: usize,
}

impl core::fmt::Display for Channel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}#{}", self.node, self.direction, self.vc)
    }
}

/// Result of building and checking the channel dependency graph of a
/// routing algorithm over a topology.
///
/// # Examples
///
/// ```
/// use noc_routing::{cdg::CdgAnalysis, MeshXY};
/// use noc_topology::RectMesh;
///
/// let mesh = RectMesh::new(4, 4)?;
/// let analysis = CdgAnalysis::analyze(&MeshXY::new(&mesh), &mesh);
/// assert!(analysis.is_deadlock_free());
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CdgAnalysis {
    num_channels: usize,
    num_dependencies: usize,
    cycle: Option<Vec<Channel>>,
}

impl CdgAnalysis {
    /// Builds the CDG by walking every ordered node pair through `algo`
    /// and checks it for cycles.
    ///
    /// # Panics
    ///
    /// Panics if any route fails to walk (see
    /// [`crate::validate::walk_route`]); validate routes first for a
    /// graceful error.
    pub fn analyze<A, T>(algo: &A, topo: &T) -> Self
    where
        A: RoutingAlgorithm + ?Sized,
        T: Topology + ?Sized,
    {
        Self::analyze_inner(algo, topo, false)
    }

    /// Like [`analyze`](Self::analyze) but collapsing all virtual
    /// channels to a single one, modelling a router without the paper's
    /// pair of output buffers. Used to demonstrate that ring-like
    /// topologies *need* the second VC.
    pub fn analyze_single_vc<A, T>(algo: &A, topo: &T) -> Self
    where
        A: RoutingAlgorithm + ?Sized,
        T: Topology + ?Sized,
    {
        Self::analyze_inner(algo, topo, true)
    }

    /// Builds the CDG of an **adaptive** algorithm: for every
    /// (node, destination) pair the dependency edges between *all*
    /// candidate output channels and all candidate channels at the
    /// next hop are added. This over-approximates the set of channel
    /// pairs any adaptive execution can hold simultaneously, so an
    /// acyclic result proves deadlock freedom for every adaptive
    /// resolution.
    ///
    /// Virtual channels are taken from
    /// [`RoutingAlgorithm::vc_for_hop`] with the incoming VC of each
    /// candidate step (adaptive algorithms in this crate use a single
    /// VC, where this is exact).
    ///
    /// # Panics
    ///
    /// Panics if a candidate direction has no link at its node.
    pub fn analyze_candidates<A, T>(algo: &A, topo: &T) -> Self
    where
        A: RoutingAlgorithm + ?Sized,
        T: Topology + ?Sized,
    {
        let mut index: HashMap<Channel, usize> = HashMap::new();
        let mut channels: Vec<Channel> = Vec::new();
        let mut edges: Vec<Vec<usize>> = Vec::new();
        let mut intern =
            |ch: Channel, channels: &mut Vec<Channel>, edges: &mut Vec<Vec<usize>>| -> usize {
                *index.entry(ch).or_insert_with(|| {
                    channels.push(ch);
                    edges.push(Vec::new());
                    channels.len() - 1
                })
            };
        for dst in topo.node_ids() {
            for current in topo.node_ids() {
                if current == dst {
                    continue;
                }
                for dir in algo.candidates(current, dst) {
                    let vc1 = algo.vc_for_hop(current, dst, dir, 0);
                    let next = topo
                        .neighbor(current, dir)
                        .expect("candidate direction must have a link");
                    let c1 = intern(
                        Channel {
                            node: current,
                            direction: dir,
                            vc: vc1,
                        },
                        &mut channels,
                        &mut edges,
                    );
                    if next == dst {
                        continue;
                    }
                    for dir2 in algo.candidates(next, dst) {
                        let vc2 = algo.vc_for_hop(next, dst, dir2, vc1);
                        let c2 = intern(
                            Channel {
                                node: next,
                                direction: dir2,
                                vc: vc2,
                            },
                            &mut channels,
                            &mut edges,
                        );
                        if !edges[c1].contains(&c2) {
                            edges[c1].push(c2);
                        }
                    }
                }
            }
        }
        let num_dependencies = edges.iter().map(Vec::len).sum();
        let cycle = find_cycle(&edges).map(|idxs| idxs.into_iter().map(|i| channels[i]).collect());
        CdgAnalysis {
            num_channels: channels.len(),
            num_dependencies,
            cycle,
        }
    }

    fn analyze_inner<A, T>(algo: &A, topo: &T, collapse_vcs: bool) -> Self
    where
        A: RoutingAlgorithm + ?Sized,
        T: Topology + ?Sized,
    {
        let mut index: HashMap<Channel, usize> = HashMap::new();
        let mut channels: Vec<Channel> = Vec::new();
        let mut edges: Vec<Vec<usize>> = Vec::new();
        let mut intern =
            |ch: Channel, channels: &mut Vec<Channel>, edges: &mut Vec<Vec<usize>>| -> usize {
                *index.entry(ch).or_insert_with(|| {
                    channels.push(ch);
                    edges.push(Vec::new());
                    channels.len() - 1
                })
            };

        for src in topo.node_ids() {
            for dst in topo.node_ids() {
                if src == dst {
                    continue;
                }
                let route =
                    walk_route(algo, topo, src, dst).expect("routing algorithm must be valid");
                let hops: Vec<Channel> = route
                    .hops()
                    .map(|(from, dir, vc, _to)| Channel {
                        node: from,
                        direction: dir,
                        vc: if collapse_vcs { 0 } else { vc },
                    })
                    .collect();
                for pair in hops.windows(2) {
                    let a = intern(pair[0], &mut channels, &mut edges);
                    let b = intern(pair[1], &mut channels, &mut edges);
                    if !edges[a].contains(&b) {
                        edges[a].push(b);
                    }
                }
                // Channels with no dependencies still count.
                for &ch in &hops {
                    intern(ch, &mut channels, &mut edges);
                }
            }
        }

        let num_dependencies = edges.iter().map(Vec::len).sum();
        let cycle = find_cycle(&edges).map(|idxs| idxs.into_iter().map(|i| channels[i]).collect());
        CdgAnalysis {
            num_channels: channels.len(),
            num_dependencies,
            cycle,
        }
    }

    /// Returns `true` if the channel dependency graph is acyclic, i.e.
    /// the routing algorithm is wormhole-deadlock-free on this topology.
    pub fn is_deadlock_free(&self) -> bool {
        self.cycle.is_none()
    }

    /// A witness cycle of channels, if any.
    pub fn cycle(&self) -> Option<&[Channel]> {
        self.cycle.as_deref()
    }

    /// Number of distinct channels used by any route.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Number of dependency edges between channels.
    pub fn num_dependencies(&self) -> usize {
        self.num_dependencies
    }
}

/// Iterative DFS cycle detection; returns the nodes of one cycle if the
/// directed graph has any.
fn find_cycle(edges: &[Vec<usize>]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = edges.len();
    let mut color = vec![Color::White; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        // Stack of (node, next edge index).
        let mut stack = vec![(start, 0usize)];
        color[start] = Color::Gray;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < edges[v].len() {
                let u = edges[v][*ei];
                *ei += 1;
                match color[u] {
                    Color::White => {
                        color[u] = Color::Gray;
                        parent[u] = v;
                        stack.push((u, 0));
                    }
                    Color::Gray => {
                        // Found a cycle: unwind from v back to u.
                        let mut cycle = vec![u];
                        let mut at = v;
                        while at != u {
                            cycle.push(at);
                            at = parent[at];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeshXY, RingShortestPath, SpidergonAcrossFirst, TableRouting};
    use noc_topology::{IrregularMesh, RectMesh, Ring, Spidergon};

    #[test]
    fn ring_with_dateline_is_deadlock_free() {
        for n in [4usize, 5, 8, 9, 16] {
            let ring = Ring::new(n).unwrap();
            let analysis = CdgAnalysis::analyze(&RingShortestPath::new(&ring), &ring);
            assert!(analysis.is_deadlock_free(), "n={n}: {:?}", analysis.cycle());
        }
    }

    #[test]
    fn ring_with_single_vc_has_a_cycle() {
        // The paper's pair of output buffers is necessary: with one VC
        // the clockwise channels form a dependency ring.
        let ring = Ring::new(8).unwrap();
        let analysis = CdgAnalysis::analyze_single_vc(&RingShortestPath::new(&ring), &ring);
        assert!(!analysis.is_deadlock_free());
        let cycle = analysis.cycle().unwrap();
        assert!(cycle.len() >= 3);
        // The witness cycle stays within one ring direction.
        let dir = cycle[0].direction;
        assert!(cycle.iter().all(|c| c.direction == dir));
    }

    #[test]
    fn spidergon_across_first_with_dateline_is_deadlock_free() {
        for n in (4..=24usize).step_by(2) {
            let sg = Spidergon::new(n).unwrap();
            let analysis = CdgAnalysis::analyze(&SpidergonAcrossFirst::new(&sg), &sg);
            assert!(analysis.is_deadlock_free(), "n={n}: {:?}", analysis.cycle());
        }
    }

    #[test]
    fn spidergon_with_single_vc_has_a_cycle() {
        let sg = Spidergon::new(12).unwrap();
        let analysis = CdgAnalysis::analyze_single_vc(&SpidergonAcrossFirst::new(&sg), &sg);
        assert!(!analysis.is_deadlock_free());
    }

    #[test]
    fn mesh_xy_is_deadlock_free_with_one_vc() {
        for (m, n) in [(2usize, 4usize), (4, 6), (3, 3), (5, 5)] {
            let mesh = RectMesh::new(m, n).unwrap();
            let analysis = CdgAnalysis::analyze(&MeshXY::new(&mesh), &mesh);
            assert!(analysis.is_deadlock_free(), "{m}x{n}");
            // And even collapsed (XY already uses one VC).
            let analysis = CdgAnalysis::analyze_single_vc(&MeshXY::new(&mesh), &mesh);
            assert!(analysis.is_deadlock_free(), "{m}x{n}");
        }
    }

    #[test]
    fn irregular_mesh_xy_is_deadlock_free() {
        for (cols, n) in [(3usize, 7usize), (4, 13), (5, 21)] {
            let mesh = IrregularMesh::new(cols, n).unwrap();
            let analysis = CdgAnalysis::analyze(&MeshXY::new_irregular(&mesh), &mesh);
            assert!(analysis.is_deadlock_free(), "cols={cols} n={n}");
        }
    }

    #[test]
    fn table_routing_on_mesh_is_checkable() {
        // Table routing on a mesh picks lowest-direction-index minimal
        // hops; the analysis runs and reports counts either way.
        let mesh = RectMesh::new(3, 3).unwrap();
        let analysis = CdgAnalysis::analyze(&TableRouting::from_topology(&mesh), &mesh);
        assert!(analysis.num_channels() > 0);
        assert!(analysis.num_dependencies() > 0);
    }

    #[test]
    fn channel_display_is_informative() {
        let ch = Channel {
            node: NodeId::new(3),
            direction: Direction::Across,
            vc: 1,
        };
        assert_eq!(ch.to_string(), "n3:across#1");
    }

    #[test]
    fn find_cycle_detects_simple_cases() {
        assert!(find_cycle(&[vec![1], vec![2], vec![0]]).is_some());
        assert!(find_cycle(&[vec![1], vec![2], vec![]]).is_none());
        assert!(find_cycle(&[vec![0]]).is_some(), "self-loop");
        assert!(find_cycle(&[]).is_none());
    }
}
