//! Routing algorithms for the DATE 2006 Ring / Spidergon / 2D-Mesh NoC
//! study, plus deadlock analysis.
//!
//! The paper pairs each topology with a deterministic, minimal routing
//! scheme:
//!
//! * [`RingShortestPath`] — shortest ring direction, maintained to the
//!   target, dateline virtual-channel switch for deadlock freedom;
//! * [`SpidergonAcrossFirst`] — the Spidergon *Across-First* scheme:
//!   take the across link first when the ring distance exceeds `N/4`,
//!   then a fixed ring direction;
//! * [`MeshXY`] — dimension-order routing (X then Y), deadlock-free
//!   with a single virtual channel, valid on full and prefix-irregular
//!   meshes;
//! * [`TableRouting`] — BFS next-hop tables for arbitrary topologies
//!   (shortest-path oracle and irregular-topology fallback);
//! * [`TorusXY`] — dimension-order torus routing with per-dimension
//!   dateline virtual channels (a future-work topology);
//! * [`WestFirst`] — partially-adaptive turn-model mesh routing (the
//!   paper's "adaptive" option, future work).
//!
//! [`cdg`] builds channel dependency graphs to *prove* deadlock freedom
//! of the above, and [`validate`] walks every route to check
//! termination and minimality.
//!
//! # Quick start
//!
//! ```
//! use noc_routing::{validate, RoutingAlgorithm, SpidergonAcrossFirst};
//! use noc_topology::{NodeId, Spidergon};
//!
//! let sg = Spidergon::new(16)?;
//! let algo = SpidergonAcrossFirst::new(&sg);
//! let report = validate::validate_all_routes(&algo, &sg)?;
//! assert_eq!(report.non_minimal, 0); // Across-First is shortest-path
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// This crate's version, folded into `noc_core`'s cache fingerprints
/// so cached results never survive a routing-layer change.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

mod adaptive;
mod algorithm;
pub mod cdg;
mod compiled;
mod mesh_routing;
mod ring_routing;
mod spidergon_routing;
mod table;
mod torus_routing;
pub mod validate;

pub use adaptive::WestFirst;
pub use algorithm::{Route, RoutingAlgorithm};
pub use compiled::{CompiledHop, CompiledRoutes, MAX_COMPILED_VCS};
pub use mesh_routing::MeshXY;
pub use ring_routing::RingShortestPath;
pub use spidergon_routing::{SpidergonAcrossFirst, SpidergonAcrossLast};
pub use table::TableRouting;
pub use torus_routing::TorusXY;
pub use validate::{RouteError, ValidationReport};
