//! Precomputed route tables: the routing function of a
//! `(topology, algorithm)` pair flattened into one dense array.
//!
//! The paper's topologies are low-degree and their deterministic routing
//! schemes are pure functions of `(current, destination)` — so the
//! simulator's switch-allocation hot path does not need to re-derive the
//! next hop for every blocked head flit on every cycle. [`CompiledRoutes`]
//! evaluates [`RoutingAlgorithm::next_hop`],
//! [`vc_for_hop`](RoutingAlgorithm::vc_for_hop) and the remaining hop
//! count once per node pair at build time and serves lookups from a
//! `[node][dst]`-indexed table afterwards.
//!
//! Only **deterministic** algorithms compile
//! ([`RoutingAlgorithm::is_deterministic`]): adaptive schemes pick among
//! several candidates based on runtime congestion, which no static table
//! can capture. [`CompiledRoutes::compile`] also returns `None` for
//! oversized networks or non-terminating routing functions; in every
//! `None` case the caller simply keeps the dynamic algorithm.

use crate::RoutingAlgorithm;
use noc_topology::{Direction, NodeId, Topology};

/// Largest virtual-channel count a compiled table can carry per hop
/// (the ring/Spidergon dateline schemes need 2, torus dateline 2).
pub const MAX_COMPILED_VCS: usize = 4;

/// Node-count ceiling for compilation: beyond this the `N²` table
/// (and the `O(N²)` build walk) costs more than it saves.
const MAX_COMPILED_NODES: usize = 4096;

/// One `(node, dst)` entry of the table: the output direction, the
/// remaining hop count to the destination, and the outgoing virtual
/// channel for every possible incoming VC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompiledHop {
    /// Direction of the output port ([`Direction::Local`] at the
    /// destination itself).
    pub dir: Direction,
    /// Hops remaining to the destination from this node.
    pub remaining_hops: u16,
    /// Outgoing VC indexed by the VC the packet arrived on.
    pub out_vc: [u8; MAX_COMPILED_VCS],
}

/// A dense `[node][dst] -> (direction, remaining hops, VC map)` route
/// table compiled from a deterministic [`RoutingAlgorithm`].
///
/// # Examples
///
/// ```
/// use noc_routing::{CompiledRoutes, RingShortestPath, RoutingAlgorithm};
/// use noc_topology::{NodeId, Ring};
///
/// let ring = Ring::new(8)?;
/// let algo = RingShortestPath::new(&ring);
/// let table = CompiledRoutes::compile(&algo, &ring).expect("deterministic");
/// let hop = table.hop(NodeId::new(0), NodeId::new(3));
/// assert_eq!(hop.dir, algo.next_hop(NodeId::new(0), NodeId::new(3)));
/// assert_eq!(hop.remaining_hops, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompiledRoutes {
    num_nodes: usize,
    vcs: usize,
    /// Row-major `[node][dst]`.
    table: Vec<CompiledHop>,
}

impl CompiledRoutes {
    /// Compiles `algo` over all node pairs of `topo`.
    ///
    /// Returns `None` — the caller keeps the dynamic algorithm — when
    /// the algorithm is adaptive ([`RoutingAlgorithm::is_deterministic`]
    /// is `false`), needs more than [`MAX_COMPILED_VCS`] virtual
    /// channels, the node count exceeds the compilation ceiling, the
    /// algorithm routes onto a port the topology does not have, or a
    /// route fails to terminate within a `4·N + 4` hop budget.
    pub fn compile<A, T>(algo: &A, topo: &T) -> Option<CompiledRoutes>
    where
        A: RoutingAlgorithm + ?Sized,
        T: Topology + ?Sized,
    {
        let num_nodes = topo.num_nodes();
        let vcs = algo.num_vcs_required().max(1);
        if !algo.is_deterministic() || vcs > MAX_COMPILED_VCS || num_nodes > MAX_COMPILED_NODES {
            return None;
        }
        let mut table = Vec::with_capacity(num_nodes * num_nodes);
        for v in 0..num_nodes {
            for dst in 0..num_nodes {
                let here = NodeId::new(v);
                let there = NodeId::new(dst);
                let dir = algo.next_hop(here, there);
                if (dir == Direction::Local) != (v == dst) {
                    return None;
                }
                if dir != Direction::Local && topo.neighbor(here, dir).is_none() {
                    return None;
                }
                let mut out_vc = [0u8; MAX_COMPILED_VCS];
                for (in_vc, slot) in out_vc.iter_mut().enumerate().take(vcs) {
                    let chosen = algo.vc_for_hop(here, there, dir, in_vc);
                    if chosen >= vcs {
                        return None;
                    }
                    *slot = chosen as u8;
                }
                table.push(CompiledHop {
                    dir,
                    remaining_hops: 0,
                    out_vc,
                });
            }
        }
        let mut compiled = CompiledRoutes {
            num_nodes,
            vcs,
            table,
        };
        compiled.fill_remaining_hops(topo)?;
        Some(compiled)
    }

    /// Computes `remaining_hops` for every entry by walking the compiled
    /// directions. Deterministic routes have the suffix property (the
    /// route from an intermediate node to `dst` is the tail of any route
    /// passing through it), so each walk memoizes every node it visits.
    /// Returns `None` if a walk exceeds the `4·N + 4` hop budget or
    /// overflows `u16` (non-terminating or absurd routing).
    fn fill_remaining_hops<T: Topology + ?Sized>(&mut self, topo: &T) -> Option<()> {
        let n = self.num_nodes;
        let budget = 4 * n + 4;
        const UNKNOWN: u16 = u16::MAX;
        for entry in self.table.iter_mut() {
            entry.remaining_hops = UNKNOWN;
        }
        let mut path = Vec::with_capacity(budget);
        for dst in 0..n {
            self.table[dst * n + dst].remaining_hops = 0;
            for start in 0..n {
                if self.table[start * n + dst].remaining_hops != UNKNOWN {
                    continue;
                }
                path.clear();
                let mut at = start;
                while self.table[at * n + dst].remaining_hops == UNKNOWN {
                    if path.len() >= budget {
                        return None;
                    }
                    path.push(at);
                    let dir = self.table[at * n + dst].dir;
                    at = topo.neighbor(NodeId::new(at), dir)?.index();
                }
                let base = self.table[at * n + dst].remaining_hops as usize;
                for (i, &v) in path.iter().rev().enumerate() {
                    let hops = base + i + 1;
                    if hops > (UNKNOWN - 1) as usize {
                        return None;
                    }
                    self.table[v * n + dst].remaining_hops = hops as u16;
                }
            }
        }
        Some(())
    }

    /// Number of nodes the table covers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Virtual channels per link the compiled algorithm requires.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// The table entry for a head flit at `current` heading to `dest`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[inline]
    pub fn hop(&self, current: NodeId, dest: NodeId) -> CompiledHop {
        self.table[current.index() * self.num_nodes + dest.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeshXY, RingShortestPath, SpidergonAcrossFirst, TableRouting, TorusXY, WestFirst};
    use noc_topology::{RectMesh, Ring, Spidergon, Torus};

    /// Compiled lookups must agree with the dynamic algorithm on every
    /// `(node, dst, in_vc)` triple, and `remaining_hops` must equal the
    /// walked route length.
    fn assert_matches_dynamic<A, T>(algo: &A, topo: &T)
    where
        A: RoutingAlgorithm,
        T: Topology,
    {
        let compiled = CompiledRoutes::compile(algo, topo)
            .unwrap_or_else(|| panic!("{} must compile on {}", algo.label(), topo.label()));
        let vcs = algo.num_vcs_required().max(1);
        assert_eq!(compiled.vcs(), vcs);
        assert_eq!(compiled.num_nodes(), topo.num_nodes());
        for v in topo.node_ids() {
            for dst in topo.node_ids() {
                let hop = compiled.hop(v, dst);
                assert_eq!(hop.dir, algo.next_hop(v, dst), "{v}->{dst}");
                for in_vc in 0..vcs {
                    assert_eq!(
                        hop.out_vc[in_vc] as usize,
                        algo.vc_for_hop(v, dst, hop.dir, in_vc),
                        "{v}->{dst} in_vc {in_vc}"
                    );
                }
                let walked = crate::validate::walk_route(algo, topo, v, dst)
                    .expect("route terminates")
                    .len();
                assert_eq!(hop.remaining_hops as usize, walked, "{v}->{dst} hops");
            }
        }
    }

    #[test]
    fn ring_compiles_and_matches() {
        let ring = Ring::new(16).unwrap();
        assert_matches_dynamic(&RingShortestPath::new(&ring), &ring);
    }

    #[test]
    fn spidergon_compiles_and_matches() {
        let sg = Spidergon::new(16).unwrap();
        assert_matches_dynamic(&SpidergonAcrossFirst::new(&sg), &sg);
    }

    #[test]
    fn mesh_compiles_and_matches() {
        let mesh = RectMesh::new(4, 4).unwrap();
        assert_matches_dynamic(&MeshXY::new(&mesh), &mesh);
    }

    #[test]
    fn torus_compiles_and_matches() {
        let torus = Torus::new(4, 4).unwrap();
        assert_matches_dynamic(&TorusXY::new(&torus), &torus);
    }

    #[test]
    fn table_routing_compiles_and_matches() {
        let sg = Spidergon::new(12).unwrap();
        let algo = TableRouting::from_topology(&sg);
        assert_matches_dynamic(&algo, &sg);
    }

    #[test]
    fn adaptive_does_not_compile() {
        let mesh = RectMesh::new(4, 4).unwrap();
        let algo = WestFirst::new(&mesh);
        assert!(!algo.is_deterministic());
        assert!(CompiledRoutes::compile(&algo, &mesh).is_none());
    }

    #[test]
    fn single_node_topology_compiles() {
        // Degenerate: every route is zero hops.
        let ring = Ring::new(4).unwrap();
        let algo = RingShortestPath::new(&ring);
        let compiled = CompiledRoutes::compile(&algo, &ring).unwrap();
        for v in ring.node_ids() {
            let hop = compiled.hop(v, v);
            assert_eq!(hop.dir, Direction::Local);
            assert_eq!(hop.remaining_hops, 0);
        }
    }
}
