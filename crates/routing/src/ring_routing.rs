//! Shortest-direction routing on the ring, with dateline virtual-channel
//! selection for deadlock avoidance.

use crate::RoutingAlgorithm;
use noc_topology::{Direction, NodeId, Ring, Topology};

/// The paper's Ring routing: "clockwise or counterclockwise direction is
/// taken from the source to the target node, depending on the shortest
/// path direction", and the direction is then maintained.
///
/// Ties (`dist == N/2` on even rings) are broken clockwise, which keeps
/// the algorithm deterministic and vertex-symmetric.
///
/// Deadlock avoidance uses the classic **dateline** scheme with the
/// paper's pair of output buffers per link: packets start on VC 0 and
/// switch to VC 1 when they traverse the wrap-around edge of their ring
/// direction (clockwise `N-1 -> 0`, counterclockwise `0 -> N-1`). This
/// breaks the single cycle in each direction's channel-dependency graph
/// (verified in [`crate::cdg`] tests).
///
/// # Examples
///
/// ```
/// use noc_routing::{RingShortestPath, RoutingAlgorithm};
/// use noc_topology::{Direction, NodeId, Ring};
///
/// let algo = RingShortestPath::new(&Ring::new(8)?);
/// assert_eq!(
///     algo.next_hop(NodeId::new(0), NodeId::new(3)),
///     Direction::Clockwise,
/// );
/// assert_eq!(
///     algo.next_hop(NodeId::new(0), NodeId::new(6)),
///     Direction::CounterClockwise,
/// );
/// assert_eq!(algo.next_hop(NodeId::new(5), NodeId::new(5)), Direction::Local);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RingShortestPath {
    num_nodes: usize,
}

impl RingShortestPath {
    /// Creates the routing function for a specific ring.
    pub fn new(ring: &Ring) -> Self {
        RingShortestPath {
            num_nodes: ring.num_nodes(),
        }
    }

    /// Creates the routing function for a ring of `num_nodes` nodes
    /// without constructing the topology.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes < 3`.
    pub fn for_nodes(num_nodes: usize) -> Self {
        assert!(num_nodes >= 3, "ring requires at least 3 nodes");
        RingShortestPath { num_nodes }
    }

    /// Number of nodes of the ring this algorithm routes on.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} out of range for ring of {} nodes",
            self.num_nodes
        );
    }

    /// The ring direction a packet from `src` to `dst` travels in
    /// (shortest path, ties broken clockwise), or `None` if `src == dst`.
    pub fn ring_direction(&self, src: NodeId, dst: NodeId) -> Option<Direction> {
        self.check(src);
        self.check(dst);
        if src == dst {
            return None;
        }
        let n = self.num_nodes;
        let cw = (dst.index() + n - src.index()) % n;
        if cw <= n - cw {
            Some(Direction::Clockwise)
        } else {
            Some(Direction::CounterClockwise)
        }
    }
}

impl RoutingAlgorithm for RingShortestPath {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        self.ring_direction(current, dest)
            .unwrap_or(Direction::Local)
    }

    fn num_vcs_required(&self) -> usize {
        2
    }

    fn vc_for_hop(
        &self,
        current: NodeId,
        _dest: NodeId,
        dir: Direction,
        current_vc: usize,
    ) -> usize {
        dateline_vc(self.num_nodes, current, dir, current_vc)
    }

    fn label(&self) -> String {
        "ring-shortest".to_owned()
    }
}

/// Dateline VC selection shared by ring and Spidergon routing: switch to
/// VC 1 when traversing the wrap-around edge of a ring direction, keep
/// the current VC otherwise.
///
/// The wrap-around (dateline) edges are `N-1 -> 0` clockwise and
/// `0 -> N-1` counterclockwise.
pub(crate) fn dateline_vc(
    num_nodes: usize,
    current: NodeId,
    dir: Direction,
    current_vc: usize,
) -> usize {
    match dir {
        Direction::Clockwise if current.index() == num_nodes - 1 => 1,
        Direction::CounterClockwise if current.index() == 0 => 1,
        _ => current_vc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn algo(n: usize) -> RingShortestPath {
        RingShortestPath::new(&Ring::new(n).unwrap())
    }

    #[test]
    fn shortest_direction_chosen() {
        let a = algo(10);
        assert_eq!(
            a.next_hop(NodeId::new(1), NodeId::new(4)),
            Direction::Clockwise
        );
        assert_eq!(
            a.next_hop(NodeId::new(1), NodeId::new(8)),
            Direction::CounterClockwise
        );
    }

    #[test]
    fn equidistant_tie_broken_clockwise() {
        let a = algo(8);
        assert_eq!(
            a.next_hop(NodeId::new(0), NodeId::new(4)),
            Direction::Clockwise
        );
        assert_eq!(
            a.next_hop(NodeId::new(6), NodeId::new(2)),
            Direction::Clockwise
        );
    }

    #[test]
    fn destination_reached_returns_local() {
        let a = algo(5);
        for v in 0..5 {
            assert_eq!(a.next_hop(NodeId::new(v), NodeId::new(v)), Direction::Local);
        }
    }

    #[test]
    fn dateline_switches_vc_on_wrap_edge_only() {
        let a = algo(6);
        // Clockwise wrap 5 -> 0 switches to VC 1.
        assert_eq!(
            a.vc_for_hop(NodeId::new(5), NodeId::new(2), Direction::Clockwise, 0),
            1
        );
        // Other clockwise hops keep the VC.
        assert_eq!(
            a.vc_for_hop(NodeId::new(2), NodeId::new(4), Direction::Clockwise, 0),
            0
        );
        assert_eq!(
            a.vc_for_hop(NodeId::new(2), NodeId::new(4), Direction::Clockwise, 1),
            1
        );
        // Counterclockwise wrap 0 -> 5 switches.
        assert_eq!(
            a.vc_for_hop(
                NodeId::new(0),
                NodeId::new(4),
                Direction::CounterClockwise,
                0
            ),
            1
        );
        assert_eq!(
            a.vc_for_hop(
                NodeId::new(3),
                NodeId::new(1),
                Direction::CounterClockwise,
                0
            ),
            0
        );
    }

    #[test]
    fn requires_two_vcs() {
        assert_eq!(algo(4).num_vcs_required(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let a = algo(4);
        let _ = a.next_hop(NodeId::new(4), NodeId::new(0));
    }

    #[test]
    fn for_nodes_matches_new() {
        assert_eq!(RingShortestPath::for_nodes(9), algo(9));
        assert_eq!(algo(9).num_nodes(), 9);
    }
}
