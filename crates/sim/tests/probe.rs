//! Integration tests of the observability layer ([`noc_sim::probe`])
//! against full simulation runs: decomposition exactness,
//! non-perturbation, event-stream consistency and export determinism.

use noc_routing::SpidergonAcrossFirst;
use noc_sim::{Recorder, SimConfig, SimStats, Simulation, TraceEvent};
use noc_topology::{NodeId, Spidergon};
use noc_traffic::{SingleHotspot, UniformRandom};
use std::collections::HashMap;

fn config(lambda: f64, router_delay: u64) -> SimConfig {
    SimConfig::builder()
        .injection_rate(lambda)
        .warmup_cycles(200)
        .measure_cycles(2_000)
        .router_delay(router_delay)
        .seed(2006)
        .build()
        .unwrap()
}

fn recorded_run(n: usize, lambda: f64, router_delay: u64, hotspot: bool) -> (SimStats, Recorder) {
    let topo = Spidergon::new(n).unwrap();
    let routing = SpidergonAcrossFirst::new(&topo);
    let pattern: Box<dyn noc_traffic::TrafficPattern> = if hotspot {
        Box::new(SingleHotspot::new(n, NodeId::new(0)).unwrap())
    } else {
        Box::new(UniformRandom::new(n).unwrap())
    };
    let mut sim = Simulation::with_probe(
        Box::new(topo),
        Box::new(routing),
        pattern,
        config(lambda, router_delay),
        Recorder::new(),
    )
    .unwrap();
    let stats = sim.run().unwrap();
    (stats, sim.into_probe())
}

/// The acceptance criterion: for every delivered packet the three
/// decomposition components sum to the end-to-end latency *exactly*,
/// with a non-negative blocking term and the analytic transfer term.
#[test]
fn decomposition_components_sum_exactly() {
    for (router_delay, lambda, hotspot) in [(0, 0.3, false), (0, 0.4, true), (2, 0.2, false)] {
        let (_, rec) = recorded_run(16, lambda, router_delay, hotspot);
        assert!(
            rec.packet_timings().len() > 100,
            "workload too small to be meaningful"
        );
        for t in rec.packet_timings() {
            assert_eq!(
                t.source_queuing + t.router_blocking + t.transfer,
                t.latency(),
                "decomposition must be exact for packet {}",
                t.packet
            );
            assert_eq!(t.transfer, t.hops * (1 + router_delay) + 1);
        }
    }
}

/// Attaching a recorder must not perturb the simulation: identical
/// seed, identical `SimStats`, bit for bit.
#[test]
fn recorder_does_not_perturb_the_run() {
    let topo = Spidergon::new(16).unwrap();
    let routing = SpidergonAcrossFirst::new(&topo);
    let pattern = UniformRandom::new(16).unwrap();
    let mut plain = Simulation::new(
        Box::new(Spidergon::new(16).unwrap()),
        Box::new(SpidergonAcrossFirst::new(&topo)),
        Box::new(UniformRandom::new(16).unwrap()),
        config(0.3, 0),
    )
    .unwrap();
    let mut probed = Simulation::with_probe(
        Box::new(topo),
        Box::new(routing),
        Box::new(pattern),
        config(0.3, 0),
        Recorder::new(),
    )
    .unwrap();
    let a = plain.run().unwrap();
    let b = probed.run().unwrap();
    assert_eq!(a, b, "probe must only observe, never perturb");
}

/// The recorder's own totals agree with the simulator's lifetime
/// counters (warmup included): every generated flit is seen once, every
/// consumed flit is seen once, and the decomposition histograms cover
/// exactly the delivered packets.
#[test]
fn recorder_totals_match_simulator_counters() {
    let topo = Spidergon::new(16).unwrap();
    let routing = SpidergonAcrossFirst::new(&topo);
    let pattern = UniformRandom::new(16).unwrap();
    let mut sim = Simulation::with_probe(
        Box::new(topo),
        Box::new(routing),
        Box::new(pattern),
        config(0.3, 0),
        Recorder::new(),
    )
    .unwrap();
    let _ = sim.run().unwrap();
    let generated = sim.total_flits_generated();
    let consumed = sim.total_flits_consumed();
    let cycles = sim.cycle();
    let rec = sim.into_probe();

    let mut gen_flits = 0u64;
    let mut consumed_flits = 0u64;
    let mut injected = 0u64;
    let mut completed = 0u64;
    for ev in rec.events() {
        match *ev {
            TraceEvent::Generate { len, .. } => gen_flits += len as u64,
            TraceEvent::Deliver { .. } => consumed_flits += 1,
            TraceEvent::Inject { .. } => injected += 1,
            TraceEvent::PacketDelivered { .. } => completed += 1,
            _ => {}
        }
    }
    assert_eq!(gen_flits, generated);
    assert_eq!(consumed_flits, consumed);
    assert!(injected >= consumed_flits);
    assert_eq!(completed as usize, rec.packet_timings().len());
    assert_eq!(rec.breakdown().total.count(), completed);
    assert_eq!(rec.observed_cycles(), cycles);

    // Windowed series: integer counters partition the run.
    let windowed: u64 = rec.windows().iter().map(|w| w.delivered_flits).sum();
    assert!(windowed <= consumed);
    assert!(rec.windows().len() as u64 <= cycles / 100 + 1);
}

/// Per-packet lifecycle ordering: generation before injection, hops in
/// increasing cycle order, delivery last; a packet's flit count is
/// conserved through every stage.
#[test]
fn lifecycle_events_are_ordered_per_packet() {
    let (_, rec) = recorded_run(8, 0.2, 0, false);
    let mut generated_at: HashMap<u64, u64> = HashMap::new();
    let mut first_inject: HashMap<u64, u64> = HashMap::new();
    let mut last_traverse: HashMap<u64, u64> = HashMap::new();
    for ev in rec.events() {
        match *ev {
            TraceEvent::Generate { cycle, packet, .. } => {
                generated_at.insert(packet, cycle);
            }
            TraceEvent::Inject { cycle, packet, .. } => {
                first_inject.entry(packet).or_insert(cycle);
            }
            TraceEvent::LinkTraverse { cycle, packet, .. } => {
                let e = last_traverse.entry(packet).or_insert(cycle);
                assert!(*e <= cycle, "hop cycles must be non-decreasing");
                *e = cycle;
            }
            TraceEvent::PacketDelivered {
                cycle,
                packet,
                latency,
                ..
            } => {
                let born = generated_at[&packet];
                assert_eq!(cycle - born, latency);
                assert!(first_inject[&packet] >= born);
                assert!(last_traverse[&packet] < cycle);
            }
            _ => {}
        }
    }
    assert!(!generated_at.is_empty());
}

/// Exports are deterministic: two identical runs produce byte-identical
/// JSONL/CSV and therefore equal digests; a different seed differs.
#[test]
fn exports_are_deterministic() {
    let (_, a) = recorded_run(16, 0.2, 0, true);
    let (_, b) = recorded_run(16, 0.2, 0, true);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.to_jsonl(), b.to_jsonl());
    assert_eq!(a.timeseries_csv(), b.timeseries_csv());
    assert_eq!(a.links_csv(), b.links_csv());
}

/// Every JSONL line is a standalone JSON object carrying at least the
/// `event` and `cycle` keys (the schema the CI smoke step asserts).
#[test]
fn jsonl_lines_are_valid_json_with_schema() {
    /// The common envelope of every event line; other keys vary per
    /// event type and are ignored by the lenient `default` mode.
    #[derive(Default, serde::Deserialize)]
    #[serde(default)]
    struct Envelope {
        event: String,
        cycle: Option<u64>,
    }

    let (_, rec) = recorded_run(8, 0.1, 0, false);
    let jsonl = rec.to_jsonl();
    assert!(!jsonl.is_empty());
    const KNOWN: [&str; 6] = [
        "generate",
        "inject",
        "buffer_exit",
        "link_traverse",
        "deliver",
        "packet_delivered",
    ];
    for line in jsonl.lines() {
        let env: Envelope = serde_json::from_str(line).expect("every line parses as JSON");
        assert!(KNOWN.contains(&env.event.as_str()), "{line}");
        assert!(env.cycle.is_some(), "{line}");
    }
}

/// Link-load CSV covers every unidirectional link and agrees with the
/// recorder's raw counters; buffer peaks respect configured capacities.
#[test]
fn link_csv_and_buffer_peaks_are_consistent() {
    let (_, rec) = recorded_run(16, 0.3, 0, true);
    let csv = rec.links_csv();
    // Header plus one row per link.
    assert_eq!(csv.lines().count(), 1 + rec.shape().num_links());
    let total_from_csv: u64 = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(2).unwrap().parse::<u64>().unwrap())
        .sum();
    let total_raw: u64 = rec.link_flits().iter().flatten().sum();
    assert_eq!(total_from_csv, total_raw);
    assert!(total_raw > 0);

    let peaks = rec.buffer_peaks();
    assert!(!peaks.is_empty());
    for p in &peaks {
        let cap = match p.class {
            noc_sim::BufferClass::Input => 1,
            noc_sim::BufferClass::Output | noc_sim::BufferClass::Ejection => 3,
            // Source queues are unbounded; links carry no standing depth.
            noc_sim::BufferClass::Source | noc_sim::BufferClass::Link => usize::MAX,
        };
        assert!(
            p.peak <= cap,
            "{:?} buffer at node {} exceeded capacity: {}",
            p.class,
            p.node,
            p.peak
        );
    }
}
