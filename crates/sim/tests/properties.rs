//! Property-based tests of the simulator: conservation, determinism and
//! sanity bounds hold for arbitrary configurations and topologies.

use noc_routing::{MeshXY, RingShortestPath, RoutingAlgorithm, SpidergonAcrossFirst, TorusXY};
use noc_sim::{SimConfig, Simulation};
use noc_topology::{RectMesh, Ring, Spidergon, Topology, Torus};
use noc_traffic::{InjectionProcess, UniformRandom};
use proptest::prelude::*;

/// Builds a (topology, routing) pair from a family selector and a size
/// knob, both arbitrary.
fn build_pair(pick: u8, size: usize) -> (Box<dyn Topology>, Box<dyn RoutingAlgorithm>) {
    match pick % 4 {
        0 => {
            let n = size.clamp(3, 24);
            let t = Ring::new(n).unwrap();
            let r = RingShortestPath::new(&t);
            (Box::new(t), Box::new(r))
        }
        1 => {
            let n = (size.clamp(2, 12)) * 2;
            let t = Spidergon::new(n).unwrap();
            let r = SpidergonAcrossFirst::new(&t);
            (Box::new(t), Box::new(r))
        }
        2 => {
            let m = (size % 4) + 2;
            let n = (size % 3) + 2;
            let t = RectMesh::new(m, n).unwrap();
            let r = MeshXY::new(&t);
            (Box::new(t), Box::new(r))
        }
        _ => {
            let m = (size % 3) + 3;
            let n = (size % 2) + 3;
            let t = Torus::new(m, n).unwrap();
            let r = TorusXY::new(&t);
            (Box::new(t), Box::new(r))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flit_conservation_holds_everywhere(
        pick in 0u8..4,
        size in 3usize..12,
        lambda in 0.0f64..0.8,
        seed in 0u64..1_000,
        packet_len in 1usize..10,
    ) {
        let (topo, routing) = build_pair(pick, size);
        let n = topo.num_nodes();
        let cfg = SimConfig::builder()
            .injection_rate(lambda)
            .packet_len(packet_len)
            .warmup_cycles(50)
            .measure_cycles(400)
            .seed(seed)
            .build()
            .unwrap();
        let mut sim = Simulation::new(
            topo,
            routing,
            Box::new(UniformRandom::new(n).unwrap()),
            cfg,
        )
        .unwrap();
        for _ in 0..450 {
            sim.step().unwrap();
            prop_assert_eq!(
                sim.total_flits_generated(),
                sim.total_flits_consumed() + sim.flits_in_network() + sim.source_backlog()
            );
        }
    }

    #[test]
    fn throughput_never_exceeds_offered_or_capacity(
        pick in 0u8..4,
        size in 3usize..10,
        lambda in 0.01f64..1.0,
        seed in 0u64..100,
    ) {
        let (topo, routing) = build_pair(pick, size);
        let n = topo.num_nodes();
        let cfg = SimConfig::builder()
            .injection_rate(lambda)
            .warmup_cycles(100)
            .measure_cycles(1_000)
            .seed(seed)
            .build()
            .unwrap();
        let mut sim = Simulation::new(
            topo,
            routing,
            Box::new(UniformRandom::new(n).unwrap()),
            cfg,
        )
        .unwrap();
        let stats = sim.run().unwrap();
        // Cannot consume more than each sink's capacity.
        prop_assert!(stats.throughput_flits_per_cycle() <= n as f64);
        // Cannot beat the offered load by more than stochastic slack
        // (warmup backlog draining allows a small overshoot).
        prop_assert!(
            stats.throughput_flits_per_cycle() <= lambda * n as f64 * 1.25 + 0.5,
            "throughput {} vs offered {}",
            stats.throughput_flits_per_cycle(),
            lambda * n as f64
        );
        // Latency, if measured, is at least packet_len (serialization).
        if let Some(mean) = stats.latency.mean() {
            prop_assert!(mean >= 2.0);
        }
    }

    #[test]
    fn determinism_for_any_seed(
        pick in 0u8..4,
        size in 3usize..10,
        lambda in 0.05f64..0.5,
        seed in 0u64..500,
    ) {
        let run = || {
            let (topo, routing) = build_pair(pick, size);
            let n = topo.num_nodes();
            let cfg = SimConfig::builder()
                .injection_rate(lambda)
                .warmup_cycles(50)
                .measure_cycles(500)
                .seed(seed)
                .build()
                .unwrap();
            Simulation::new(
                topo,
                routing,
                Box::new(UniformRandom::new(n).unwrap()),
                cfg,
            )
            .unwrap()
            .run()
            .unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn all_injection_processes_deliver(
        process_pick in 0u8..3,
        lambda in 0.05f64..0.4,
        seed in 0u64..100,
    ) {
        let process = match process_pick {
            0 => InjectionProcess::Poisson,
            1 => InjectionProcess::Bernoulli,
            _ => InjectionProcess::Cbr,
        };
        let topo = Spidergon::new(8).unwrap();
        let routing = SpidergonAcrossFirst::new(&topo);
        let cfg = SimConfig::builder()
            .injection_rate(lambda)
            .injection_process(process)
            .warmup_cycles(100)
            .measure_cycles(2_000)
            .seed(seed)
            .build()
            .unwrap();
        let mut sim = Simulation::new(
            Box::new(topo),
            Box::new(routing),
            Box::new(UniformRandom::new(8).unwrap()),
            cfg,
        )
        .unwrap();
        let stats = sim.run().unwrap();
        prop_assert!(stats.packets_delivered > 0, "{process}: nothing delivered");
        // Offered load tracks lambda for all processes (within noise).
        let offered = stats.offered_load() / 8.0;
        prop_assert!(
            (offered - lambda).abs() / lambda < 0.25,
            "{process}: offered {offered} vs lambda {lambda}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn trace_replay_conserves_packets(
        entries in proptest::collection::vec((0u64..300, 0usize..9, 0usize..9), 1..60),
        seed in 0u64..50,
    ) {
        use noc_traffic::{Trace, TraceEntry};
        use noc_topology::NodeId;
        let filtered: Vec<TraceEntry> = entries
            .into_iter()
            .filter(|&(_, s, d)| s != d)
            .map(|(cycle, src, dst)| TraceEntry {
                cycle,
                src: NodeId::new(src),
                dst: NodeId::new(dst),
            })
            .collect();
        prop_assume!(!filtered.is_empty());
        let count = filtered.len() as u64;
        let trace = Trace::new(9, filtered).unwrap();
        let topo = RectMesh::new(3, 3).unwrap();
        let routing = MeshXY::new(&topo);
        let cfg = SimConfig::builder()
            .warmup_cycles(0)
            .measure_cycles(2_000)
            .seed(seed)
            .build()
            .unwrap();
        let mut sim =
            Simulation::with_trace(Box::new(topo), Box::new(routing), &trace, cfg).unwrap();
        let stats = sim.run().unwrap();
        prop_assert_eq!(stats.packets_generated, count);
        prop_assert_eq!(stats.packets_delivered, count);
        prop_assert_eq!(sim.flits_in_network(), 0);
        prop_assert_eq!(sim.source_backlog(), 0);
    }
}
