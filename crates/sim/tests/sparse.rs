//! Property-based differential of the sparse active-set core against
//! the dense reference: for random short schedules (any topology
//! family, injection rate, warmup/measure split and seed), idle-router
//! skipping, clock fast-forward and compiled route tables must never
//! change `SimStats` or any recorded per-packet delivery (latency,
//! hops, arrival cycle).

use noc_routing::{MeshXY, RingShortestPath, RoutingAlgorithm, SpidergonAcrossFirst, TorusXY};
use noc_sim::{SimConfig, Simulation};
use noc_topology::{RectMesh, Ring, Spidergon, Topology, Torus};
use noc_traffic::{SingleHotspot, TrafficPattern, UniformRandom};
use proptest::prelude::*;

/// Builds a (topology, routing) pair from a family selector and a size
/// knob, both arbitrary.
fn build_pair(pick: u8, size: usize) -> (Box<dyn Topology>, Box<dyn RoutingAlgorithm>) {
    match pick % 4 {
        0 => {
            let n = size.clamp(3, 24);
            let t = Ring::new(n).unwrap();
            let r = RingShortestPath::new(&t);
            (Box::new(t), Box::new(r))
        }
        1 => {
            let n = (size.clamp(2, 12)) * 2;
            let t = Spidergon::new(n).unwrap();
            let r = SpidergonAcrossFirst::new(&t);
            (Box::new(t), Box::new(r))
        }
        2 => {
            let m = (size % 4) + 2;
            let n = (size % 3) + 2;
            let t = RectMesh::new(m, n).unwrap();
            let r = MeshXY::new(&t);
            (Box::new(t), Box::new(r))
        }
        _ => {
            let m = (size % 3) + 3;
            let n = (size % 2) + 3;
            let t = Torus::new(m, n).unwrap();
            let r = TorusXY::new(&t);
            (Box::new(t), Box::new(r))
        }
    }
}

fn build_pattern(hotspot: bool, n: usize) -> Box<dyn TrafficPattern> {
    if hotspot {
        Box::new(SingleHotspot::new(n, noc_topology::NodeId::new(0)).unwrap())
    } else {
        Box::new(UniformRandom::new(n).unwrap())
    }
}

#[allow(clippy::too_many_arguments)]
fn run_variant(
    pick: u8,
    size: usize,
    hotspot: bool,
    lambda: f64,
    warmup: u64,
    measure: u64,
    sample_interval: u64,
    packet_len: usize,
    seed: u64,
    sparse: bool,
    compiled: bool,
) -> (noc_sim::SimStats, Vec<noc_sim::Delivery>) {
    let (topo, routing) = build_pair(pick, size);
    let n = topo.num_nodes();
    let cfg = SimConfig::builder()
        .injection_rate(lambda)
        .packet_len(packet_len)
        .warmup_cycles(warmup)
        .measure_cycles(measure)
        .sample_interval(sample_interval)
        .seed(seed)
        .record_deliveries(true)
        .sparse(sparse)
        .compiled_routes(compiled)
        .build()
        .unwrap();
    let mut sim = Simulation::new(topo, routing, build_pattern(hotspot, n), cfg).unwrap();
    let stats = sim.run().unwrap();
    let deliveries = sim.deliveries().to_vec();
    (stats, deliveries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The headline invariant of the sparse core: the full-featured
    /// path (active set + fast-forward + compiled routes, i.e. the
    /// defaults) is bit-identical to the dense reference stepping every
    /// router every cycle with dynamic routing.
    #[test]
    fn sparse_core_matches_dense_reference(
        pick in 0u8..4,
        size in 3usize..10,
        hotspot_pick in 0u8..2,
        lambda in 0.0f64..0.5,
        warmup in 0u64..200,
        measure in 50u64..600,
        sample_interval in 0u64..80,
        packet_len in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let hotspot = hotspot_pick == 1;
        let sparse = run_variant(
            pick, size, hotspot, lambda, warmup, measure, sample_interval,
            packet_len, seed, true, true,
        );
        let dense = run_variant(
            pick, size, hotspot, lambda, warmup, measure, sample_interval,
            packet_len, seed, false, false,
        );
        prop_assert_eq!(&sparse.0, &dense.0, "SimStats diverged");
        prop_assert_eq!(&sparse.1, &dense.1, "per-packet deliveries diverged");
    }

    /// Idle-cycle skipping in isolation (dynamic routing in both runs):
    /// low rates maximize fast-forward opportunities, so random short
    /// schedules here stress the clock-jump resampling logic hardest.
    #[test]
    fn idle_skipping_never_changes_latencies(
        pick in 0u8..4,
        size in 3usize..8,
        lambda in 0.0f64..0.1,
        warmup in 0u64..150,
        measure in 100u64..800,
        sample_interval in 1u64..60,
        seed in 0u64..1_000,
    ) {
        let sparse = run_variant(
            pick, size, false, lambda, warmup, measure, sample_interval,
            4, seed, true, false,
        );
        let dense = run_variant(
            pick, size, false, lambda, warmup, measure, sample_interval,
            4, seed, false, false,
        );
        prop_assert_eq!(&sparse.0, &dense.0, "SimStats diverged");
        for (a, b) in sparse.1.iter().zip(dense.1.iter()) {
            prop_assert_eq!(a.latency, b.latency, "packet {:?} latency", a.packet);
            prop_assert_eq!(a.hops, b.hops, "packet {:?} hops", a.packet);
        }
        prop_assert_eq!(sparse.1.len(), dense.1.len());
    }
}
