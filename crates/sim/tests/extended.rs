//! Tests for the extension features: trace replay, the delivery log,
//! torus simulation and adaptive (West-First) routing.

use noc_routing::{MeshXY, RoutingAlgorithm, TorusXY, WestFirst};
use noc_sim::{SimConfig, SimError, Simulation};
use noc_topology::{NodeId, RectMesh, Torus};
use noc_traffic::{SingleHotspot, Trace, TraceEntry, UniformRandom};

fn config(lambda: f64) -> SimConfig {
    SimConfig::builder()
        .injection_rate(lambda)
        .warmup_cycles(200)
        .measure_cycles(3_000)
        .seed(77)
        .build()
        .unwrap()
}

#[test]
fn trace_replay_delivers_every_packet_once() {
    let mesh = RectMesh::new(3, 3).unwrap();
    let routing = MeshXY::new(&mesh);
    let entries: Vec<TraceEntry> = (0..50u64)
        .map(|i| TraceEntry {
            cycle: i * 3,
            src: NodeId::new((i % 8) as usize),
            dst: NodeId::new(8),
        })
        .collect();
    let trace = Trace::new(9, entries).unwrap();
    let cfg = SimConfig::builder()
        .warmup_cycles(0)
        .measure_cycles(1_000)
        .record_deliveries(true)
        .build()
        .unwrap();
    let mut sim = Simulation::with_trace(Box::new(mesh), Box::new(routing), &trace, cfg).unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(stats.packets_generated, 50);
    assert_eq!(stats.packets_delivered, 50);
    assert_eq!(sim.deliveries().len(), 50);
    // Every delivery addressed the hot node.
    assert!(sim.deliveries().iter().all(|d| d.dst == NodeId::new(8)));
    // Latencies and hops are plausible.
    assert!(sim.deliveries().iter().all(|d| d.hops >= 1 && d.hops <= 4));
    assert!(sim.deliveries().iter().all(|d| d.latency >= d.hops));
}

#[test]
fn trace_mode_ignores_the_stochastic_rate() {
    let mesh = RectMesh::new(3, 3).unwrap();
    let routing = MeshXY::new(&mesh);
    let trace = Trace::new(
        9,
        vec![TraceEntry {
            cycle: 0,
            src: NodeId::new(0),
            dst: NodeId::new(4),
        }],
    )
    .unwrap();
    // Huge lambda: must not matter in replay mode.
    let cfg = SimConfig::builder()
        .injection_rate(5.0)
        .warmup_cycles(0)
        .measure_cycles(500)
        .build()
        .unwrap();
    let mut sim = Simulation::with_trace(Box::new(mesh), Box::new(routing), &trace, cfg).unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(stats.packets_generated, 1);
    assert_eq!(stats.packets_delivered, 1);
}

#[test]
fn trace_node_count_mismatch_rejected() {
    let mesh = RectMesh::new(3, 3).unwrap();
    let routing = MeshXY::new(&mesh);
    let trace = Trace::new(
        16,
        vec![TraceEntry {
            cycle: 0,
            src: NodeId::new(10),
            dst: NodeId::new(12),
        }],
    )
    .unwrap();
    let err =
        Simulation::with_trace(Box::new(mesh), Box::new(routing), &trace, config(0.1)).unwrap_err();
    assert!(matches!(err, SimError::InvalidTrace { .. }));
}

#[test]
fn pipeline_trace_keeps_per_pair_fifo_order() {
    // Wormhole with deterministic routing delivers packets of the same
    // (src, dst) pair in injection order.
    let mesh = RectMesh::new(4, 4).unwrap();
    let routing = MeshXY::new(&mesh);
    let stages: Vec<NodeId> = [0usize, 3, 15, 12]
        .iter()
        .map(|&i| NodeId::new(i))
        .collect();
    let trace = Trace::pipeline(16, &stages, 40, 2).unwrap();
    let cfg = SimConfig::builder()
        .warmup_cycles(0)
        .measure_cycles(2_000)
        .record_deliveries(true)
        .build()
        .unwrap();
    let mut sim = Simulation::with_trace(Box::new(mesh), Box::new(routing), &trace, cfg).unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(stats.packets_delivered as usize, trace.len());
    // Per (src, dst) pair: delivery order == packet-id order.
    use std::collections::HashMap;
    let mut last: HashMap<(NodeId, NodeId), u64> = HashMap::new();
    for d in sim.deliveries() {
        if let Some(&prev) = last.get(&(d.src, d.dst)) {
            assert!(
                d.packet.raw() > prev,
                "out-of-order delivery for {}->{}",
                d.src,
                d.dst
            );
        }
        last.insert((d.src, d.dst), d.packet.raw());
    }
}

#[test]
fn delivery_log_off_by_default() {
    let mesh = RectMesh::new(3, 3).unwrap();
    let routing = MeshXY::new(&mesh);
    let pattern = UniformRandom::new(9).unwrap();
    let mut sim = Simulation::new(
        Box::new(mesh),
        Box::new(routing),
        Box::new(pattern),
        config(0.1),
    )
    .unwrap();
    let stats = sim.run().unwrap();
    assert!(stats.packets_delivered > 0);
    assert!(sim.deliveries().is_empty());
}

#[test]
fn torus_simulates_and_beats_mesh_under_uniform_load() {
    let run_torus = |lambda: f64| {
        let torus = Torus::new(4, 4).unwrap();
        let routing = TorusXY::new(&torus);
        let pattern = UniformRandom::new(16).unwrap();
        Simulation::new(
            Box::new(torus),
            Box::new(routing),
            Box::new(pattern),
            config(lambda),
        )
        .unwrap()
        .run()
        .unwrap()
    };
    let run_mesh = |lambda: f64| {
        let mesh = RectMesh::new(4, 4).unwrap();
        let routing = MeshXY::new(&mesh);
        let pattern = UniformRandom::new(16).unwrap();
        Simulation::new(
            Box::new(mesh),
            Box::new(routing),
            Box::new(pattern),
            config(lambda),
        )
        .unwrap()
        .run()
        .unwrap()
    };
    // Low load: identical accepted throughput, lower torus latency
    // (shorter average distance).
    let (t_low, m_low) = (run_torus(0.1), run_mesh(0.1));
    assert!(t_low.latency.mean().unwrap() < m_low.latency.mean().unwrap());
    // High load: torus sustains at least the mesh's throughput.
    let (t_hi, m_hi) = (run_torus(0.7), run_mesh(0.7));
    assert!(
        t_hi.throughput_flits_per_cycle() >= 0.95 * m_hi.throughput_flits_per_cycle(),
        "torus {} vs mesh {}",
        t_hi.throughput_flits_per_cycle(),
        m_hi.throughput_flits_per_cycle()
    );
}

#[test]
fn torus_under_heavy_load_does_not_deadlock() {
    let torus = Torus::new(4, 4).unwrap();
    let routing = TorusXY::new(&torus);
    let pattern = UniformRandom::new(16).unwrap();
    let cfg = SimConfig::builder()
        .injection_rate(1.0)
        .warmup_cycles(0)
        .measure_cycles(20_000)
        .stall_threshold(2_000)
        .seed(5)
        .build()
        .unwrap();
    let mut sim =
        Simulation::new(Box::new(torus), Box::new(routing), Box::new(pattern), cfg).unwrap();
    let stats = sim.run().unwrap();
    assert!(stats.packets_delivered > 1_000);
}

#[test]
fn west_first_adaptive_runs_and_matches_xy_at_low_load() {
    let mesh_spec = || RectMesh::new(4, 4).unwrap();
    let run = |routing: Box<dyn RoutingAlgorithm>, lambda: f64| {
        Simulation::new(
            Box::new(mesh_spec()),
            routing,
            Box::new(UniformRandom::new(16).unwrap()),
            config(lambda),
        )
        .unwrap()
        .run()
        .unwrap()
    };
    let xy = run(Box::new(MeshXY::new(&mesh_spec())), 0.1);
    let wf = run(Box::new(WestFirst::new(&mesh_spec())), 0.1);
    // Same topology, same minimal hop counts at low load.
    assert!((xy.mean_hops().unwrap() - wf.mean_hops().unwrap()).abs() < 0.1);
    assert!((xy.throughput_flits_per_cycle() - wf.throughput_flits_per_cycle()).abs() < 0.05);
}

#[test]
fn west_first_survives_heavy_congestion_without_deadlock() {
    let mesh = RectMesh::new(4, 4).unwrap();
    let routing = WestFirst::new(&mesh);
    let pattern = SingleHotspot::new(16, NodeId::new(15)).unwrap();
    let cfg = SimConfig::builder()
        .injection_rate(0.8)
        .warmup_cycles(0)
        .measure_cycles(20_000)
        .stall_threshold(2_000)
        .seed(6)
        .build()
        .unwrap();
    let mut sim =
        Simulation::new(Box::new(mesh), Box::new(routing), Box::new(pattern), cfg).unwrap();
    let stats = sim.run().unwrap();
    // Hot-spot ceiling holds for the adaptive router too.
    let tp = stats.throughput_flits_per_cycle();
    assert!(tp > 0.85 && tp < 1.05, "throughput {tp}");
}

#[test]
fn router_delay_adds_per_hop_latency() {
    let run = |delay: u64| {
        let mesh = RectMesh::new(4, 4).unwrap();
        let routing = MeshXY::new(&mesh);
        let cfg = SimConfig::builder()
            .injection_rate(0.02) // near zero load
            .router_delay(delay)
            .warmup_cycles(300)
            .measure_cycles(6_000)
            .seed(3)
            .build()
            .unwrap();
        Simulation::new(
            Box::new(mesh),
            Box::new(routing),
            Box::new(UniformRandom::new(16).unwrap()),
            cfg,
        )
        .unwrap()
        .run()
        .unwrap()
    };
    let base = run(0);
    let piped = run(3);
    // With one-flit input buffers the pipeline delay gates every flit
    // of the packet at every hop: a link can hand over a flit only
    // each `1 + delay` cycles, so the whole zero-load latency scales
    // by about `1 + delay` (no stage overlap in the paper's node).
    let ratio = piped.latency.mean().unwrap() / base.latency.mean().unwrap();
    assert!(
        (ratio - 4.0).abs() < 0.8,
        "latency ratio {ratio}, expected ~4 for delay 3"
    );
    // Accepted throughput at (very) low load is unaffected.
    assert!((base.throughput_flits_per_cycle() - piped.throughput_flits_per_cycle()).abs() < 0.02);
}

#[test]
fn across_first_vs_across_last_shift_hotspot_pressure() {
    use noc_routing::{SpidergonAcrossFirst, SpidergonAcrossLast};
    use noc_topology::{Direction, Spidergon};

    let n = 16;
    let run = |last: bool| {
        let topo = Spidergon::new(n).unwrap();
        let routing: Box<dyn RoutingAlgorithm> = if last {
            Box::new(SpidergonAcrossLast::new(&topo))
        } else {
            Box::new(SpidergonAcrossFirst::new(&topo))
        };
        let pattern = SingleHotspot::new(n, NodeId::new(0)).unwrap();
        // Below saturation (15 * 0.05 = 0.75 < 1 flit/cycle) so link
        // flows reflect routing demand, not sink arbitration.
        Simulation::new(Box::new(topo), routing, Box::new(pattern), config(0.05))
            .unwrap()
            .run()
            .unwrap()
    };
    let first = run(false);
    let last = run(true);
    // Same ceiling (the sink), same minimal distances.
    assert!((first.throughput_flits_per_cycle() - last.throughput_flits_per_cycle()).abs() < 0.05);
    assert!((first.mean_hops().unwrap() - last.mean_hops().unwrap()).abs() < 0.3);
    // Across-Last funnels the whole far half through the single across
    // link n/2 -> 0 into the target; Across-First spreads across-link
    // usage over all the far sources' own links. Compare that link's
    // load under the two schemes.
    let across_load = |stats: &noc_sim::SimStats| {
        stats
            .per_link
            .iter()
            .find(|l| l.from == NodeId::new(n / 2) && l.direction == Direction::Across)
            .map(|l| l.flits)
            .unwrap_or(0)
    };
    let (af, al) = (across_load(&first), across_load(&last));
    assert!(
        al > 3 * af.max(1),
        "across-last should concentrate the 8->0 across link: {af} vs {al}"
    );
}

#[test]
fn mixed_hotspot_interpolates_between_paper_scenarios() {
    use noc_topology::Spidergon;
    use noc_traffic::MixedHotspot;

    let n = 16;
    let run = |fraction: f64| {
        let topo = Spidergon::new(n).unwrap();
        let routing = noc_routing::SpidergonAcrossFirst::new(&topo);
        let pattern = MixedHotspot::new(n, NodeId::new(0), fraction).unwrap();
        Simulation::new(
            Box::new(topo),
            Box::new(routing),
            Box::new(pattern),
            config(0.25),
        )
        .unwrap()
        .run()
        .unwrap()
    };
    let uniform = run(0.0);
    let mixed = run(0.5);
    let pure = run(1.0);
    // Throughput decreases monotonically toward the 1 flit/cycle
    // hot-spot ceiling as the hot fraction rises.
    let (a, b, c) = (
        uniform.throughput_flits_per_cycle(),
        mixed.throughput_flits_per_cycle(),
        pure.throughput_flits_per_cycle(),
    );
    assert!(a > b && b > c, "{a} > {b} > {c} violated");
    // Pure fraction: ceiling = sink rate + the hot node's own uniform
    // share (it keeps sending at lambda = 0.25).
    assert!(c < 1.35, "ceiling {c}");
    // Sink-load imbalance rises with the hot fraction.
    assert!(uniform.sink_load_imbalance().unwrap() < mixed.sink_load_imbalance().unwrap());
    assert!(mixed.sink_load_imbalance().unwrap() < pure.sink_load_imbalance().unwrap());
}
