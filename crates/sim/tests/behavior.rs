//! Cross-module behavioral tests of the simulator: conservation,
//! determinism, saturation behavior, and deadlock failure injection.

use noc_routing::{MeshXY, RingShortestPath, RoutingAlgorithm, SpidergonAcrossFirst};
use noc_sim::{SimConfig, SimError, Simulation};
use noc_topology::{Direction, NodeId, RectMesh, Ring, Spidergon, Topology};
use noc_traffic::{SingleHotspot, TrafficPattern, UniformRandom};

fn config(lambda: f64, seed: u64) -> SimConfig {
    SimConfig::builder()
        .injection_rate(lambda)
        .warmup_cycles(300)
        .measure_cycles(3_000)
        .seed(seed)
        .build()
        .unwrap()
}

fn build(
    topo: Box<dyn Topology>,
    routing: Box<dyn RoutingAlgorithm>,
    pattern: Box<dyn TrafficPattern>,
    cfg: SimConfig,
) -> Simulation {
    Simulation::new(topo, routing, pattern, cfg).unwrap()
}

fn ring_uniform(n: usize, lambda: f64, seed: u64) -> Simulation {
    let topo = Ring::new(n).unwrap();
    let routing = RingShortestPath::new(&topo);
    build(
        Box::new(topo),
        Box::new(routing),
        Box::new(UniformRandom::new(n).unwrap()),
        config(lambda, seed),
    )
}

fn spidergon_uniform(n: usize, lambda: f64, seed: u64) -> Simulation {
    let topo = Spidergon::new(n).unwrap();
    let routing = SpidergonAcrossFirst::new(&topo);
    build(
        Box::new(topo),
        Box::new(routing),
        Box::new(UniformRandom::new(n).unwrap()),
        config(lambda, seed),
    )
}

fn mesh_uniform(cols: usize, rows: usize, lambda: f64, seed: u64) -> Simulation {
    let topo = RectMesh::new(cols, rows).unwrap();
    let routing = MeshXY::new(&topo);
    build(
        Box::new(topo),
        Box::new(routing),
        Box::new(UniformRandom::new(cols * rows).unwrap()),
        config(lambda, seed),
    )
}

#[test]
fn all_topologies_deliver_under_light_uniform_load() {
    for (label, mut sim) in [
        ("ring", ring_uniform(12, 0.05, 1)),
        ("spidergon", spidergon_uniform(12, 0.05, 1)),
        ("mesh", mesh_uniform(3, 4, 0.05, 1)),
    ] {
        let stats = sim.run().unwrap();
        assert!(stats.packets_delivered > 20, "{label}: {stats}");
        assert!(stats.acceptance_ratio() > 0.99, "{label}");
    }
}

#[test]
fn generated_equals_delivered_plus_in_flight_plus_backlog() {
    // Strict flit conservation at every 100-cycle checkpoint:
    // generated = consumed + in-network + source backlog, exactly.
    let mut sim = spidergon_uniform(10, 0.4, 7);
    for _ in 0..50 {
        for _ in 0..100 {
            sim.step().unwrap();
        }
        assert_eq!(
            sim.total_flits_generated(),
            sim.total_flits_consumed() + sim.flits_in_network() + sim.source_backlog(),
            "conservation violated at cycle {}",
            sim.cycle()
        );
    }
    assert!(sim.total_flits_consumed() > 0);
}

#[test]
fn determinism_across_identical_runs() {
    let a = spidergon_uniform(14, 0.25, 99).run().unwrap();
    let b = spidergon_uniform(14, 0.25, 99).run().unwrap();
    assert_eq!(a, b);
}

#[test]
fn latency_grows_with_load() {
    let low = spidergon_uniform(12, 0.05, 5).run().unwrap();
    let high = spidergon_uniform(12, 0.45, 5).run().unwrap();
    let (l, h) = (low.latency.mean().unwrap(), high.latency.mean().unwrap());
    assert!(h > l, "latency must grow with load: {l} vs {h}");
}

#[test]
fn throughput_tracks_offered_load_below_saturation() {
    for lambda in [0.05, 0.1, 0.15] {
        let stats = spidergon_uniform(12, lambda, 3).run().unwrap();
        let offered = lambda * 12.0;
        let tp = stats.throughput_flits_per_cycle();
        assert!(
            (tp - offered).abs() / offered < 0.15,
            "lambda={lambda}: throughput {tp} vs offered {offered}"
        );
    }
}

#[test]
fn ring_saturates_before_spidergon() {
    // Paper Figure 10: Ring is the first topology to saturate under
    // homogeneous traffic.
    let lambda = 0.5;
    let ring = ring_uniform(16, lambda, 11).run().unwrap();
    let spidergon = spidergon_uniform(16, lambda, 11).run().unwrap();
    assert!(
        spidergon.throughput_flits_per_cycle() > ring.throughput_flits_per_cycle(),
        "spidergon {} !> ring {}",
        spidergon.throughput_flits_per_cycle(),
        ring.throughput_flits_per_cycle()
    );
}

#[test]
fn hotspot_latency_explodes_past_sink_saturation() {
    // Sources saturate the single sink when N_sources * lambda > 1.
    let n = 8;
    let make = |lambda: f64| {
        let topo = Spidergon::new(n).unwrap();
        let routing = SpidergonAcrossFirst::new(&topo);
        build(
            Box::new(topo),
            Box::new(routing),
            Box::new(SingleHotspot::new(n, NodeId::new(0)).unwrap()),
            config(lambda, 2),
        )
    };
    let below = make(0.08).run().unwrap(); // 7 * 0.08 = 0.56 < 1
    let above = make(0.3).run().unwrap(); // 7 * 0.3 = 2.1 > 1
    assert!(above.latency.mean().unwrap() > 3.0 * below.latency.mean().unwrap());
    assert!(above.acceptance_ratio() < 0.9);
}

/// Ring shortest-path routing with the dateline VC switch disabled:
/// the channel dependency cycle is real, so wormhole traffic must
/// deadlock — and the watchdog must catch it.
#[derive(Debug)]
struct SingleVcRing(RingShortestPath);

impl RoutingAlgorithm for SingleVcRing {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        self.0.next_hop(current, dest)
    }
    fn num_vcs_required(&self) -> usize {
        1
    }
    fn vc_for_hop(&self, _c: NodeId, _dest: NodeId, _d: Direction, _vc: usize) -> usize {
        0
    }
    fn label(&self) -> String {
        "ring-single-vc".into()
    }
}

#[test]
fn deadlock_watchdog_fires_without_dateline_vcs() {
    let n = 8;
    let topo = Ring::new(n).unwrap();
    let routing = SingleVcRing(RingShortestPath::new(&topo));
    let cfg = SimConfig::builder()
        .injection_rate(0.9)
        .warmup_cycles(0)
        .measure_cycles(60_000)
        .stall_threshold(2_000)
        .seed(4242)
        .build()
        .unwrap();
    let mut sim = Simulation::new(
        Box::new(topo),
        Box::new(routing),
        Box::new(UniformRandom::new(n).unwrap()),
        cfg,
    )
    .unwrap();
    match sim.run() {
        Err(SimError::Stalled {
            flits_in_flight, ..
        }) => {
            assert!(flits_in_flight > 0);
        }
        Ok(stats) => panic!("expected deadlock, but run completed: {stats}"),
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn dateline_vcs_prevent_the_same_deadlock() {
    // Identical setup, proper 2-VC dateline routing: must complete.
    let n = 8;
    let topo = Ring::new(n).unwrap();
    let routing = RingShortestPath::new(&topo);
    let cfg = SimConfig::builder()
        .injection_rate(0.9)
        .warmup_cycles(0)
        .measure_cycles(60_000)
        .stall_threshold(2_000)
        .seed(4242)
        .build()
        .unwrap();
    let mut sim = Simulation::new(
        Box::new(topo),
        Box::new(routing),
        Box::new(UniformRandom::new(n).unwrap()),
        cfg,
    )
    .unwrap();
    let stats = sim.run().unwrap();
    assert!(stats.packets_delivered > 1_000);
}

#[test]
fn doubling_sink_rate_doubles_hotspot_ceiling() {
    let n = 8;
    let make = |sink_rate: usize| {
        let topo = Spidergon::new(n).unwrap();
        let routing = SpidergonAcrossFirst::new(&topo);
        let cfg = SimConfig::builder()
            .injection_rate(0.6)
            .sink_rate(sink_rate)
            .warmup_cycles(300)
            .measure_cycles(3_000)
            .seed(8)
            .build()
            .unwrap();
        Simulation::new(
            Box::new(topo),
            Box::new(routing),
            Box::new(SingleHotspot::new(n, NodeId::new(0)).unwrap()),
            cfg,
        )
        .unwrap()
    };
    let single = make(1).run().unwrap().throughput_flits_per_cycle();
    let double = make(2).run().unwrap().throughput_flits_per_cycle();
    assert!(single < 1.05);
    assert!(
        double > 1.3,
        "sink_rate 2 should lift the ceiling: {double}"
    );
}

#[test]
fn bigger_output_buffers_do_not_change_hotspot_ceiling() {
    // Paper: "small buffer tuning have some marginal impact on the peak
    // performances" — the hot-spot ceiling is the sink, not buffering.
    let n = 8;
    let make = |buf: usize| {
        let topo = Spidergon::new(n).unwrap();
        let routing = SpidergonAcrossFirst::new(&topo);
        let cfg = SimConfig::builder()
            .injection_rate(0.6)
            .output_buffer_capacity(buf)
            .warmup_cycles(300)
            .measure_cycles(3_000)
            .seed(8)
            .build()
            .unwrap();
        Simulation::new(
            Box::new(topo),
            Box::new(routing),
            Box::new(SingleHotspot::new(n, NodeId::new(0)).unwrap()),
            cfg,
        )
        .unwrap()
    };
    let small = make(3).run().unwrap().throughput_flits_per_cycle();
    let large = make(12).run().unwrap().throughput_flits_per_cycle();
    assert!((small - large).abs() < 0.08, "{small} vs {large}");
}

#[test]
fn per_node_load_maps_expose_the_hot_spot() {
    let n = 8;
    let topo = Spidergon::new(n).unwrap();
    let routing = SpidergonAcrossFirst::new(&topo);
    let pattern = SingleHotspot::new(n, NodeId::new(3)).unwrap();
    let mut sim = build(
        Box::new(topo),
        Box::new(routing),
        Box::new(pattern),
        config(0.2, 9),
    );
    let stats = sim.run().unwrap();
    // All consumption happens at the hot spot.
    let (busiest, flits) = stats.busiest_sink().unwrap();
    assert_eq!(busiest, 3);
    assert_eq!(flits, stats.flits_delivered);
    assert!(stats.sink_load_imbalance().unwrap() > 2.0);
    // The target generates nothing; everyone else does.
    assert_eq!(stats.per_node_generated[3], 0);
    assert!(stats
        .per_node_generated
        .iter()
        .enumerate()
        .all(|(i, &p)| i == 3 || p > 0));
}

#[test]
fn uniform_traffic_balances_sink_load() {
    let stats = spidergon_uniform(12, 0.2, 4).run().unwrap();
    assert!(
        stats.sink_load_imbalance().unwrap() < 0.25,
        "uniform CV {}",
        stats.sink_load_imbalance().unwrap()
    );
}

#[test]
fn occupancy_snapshot_matches_counters() {
    let mut sim = spidergon_uniform(10, 0.4, 13);
    for _ in 0..500 {
        sim.step().unwrap();
        let occ = sim.occupancy();
        assert_eq!(occ.in_network(), sim.flits_in_network());
        assert_eq!(occ.source_flits, sim.source_backlog());
    }
    assert!(sim.occupancy().in_network() > 0);
}

#[test]
fn link_heat_map_identifies_hotspot_feeders() {
    // Single hot-spot at node 0 on a ring: the two links entering node
    // 0 (clockwise from N-1, counterclockwise from 1) must be the
    // hottest in the network.
    let n = 8;
    let topo = Ring::new(n).unwrap();
    let routing = RingShortestPath::new(&topo);
    let pattern = SingleHotspot::new(n, NodeId::new(0)).unwrap();
    let mut sim = build(
        Box::new(topo),
        Box::new(routing),
        Box::new(pattern),
        config(0.3, 17),
    );
    let stats = sim.run().unwrap();
    assert_eq!(stats.per_link.len(), 2 * n);
    let hottest = stats.hottest_link().unwrap();
    let feeds_target = (hottest.from == NodeId::new(n - 1)
        && hottest.direction == Direction::Clockwise)
        || (hottest.from == NodeId::new(1) && hottest.direction == Direction::CounterClockwise);
    assert!(
        feeds_target,
        "hottest link {hottest:?} does not feed node 0"
    );
    // Conservation: per-link total equals the aggregate counter.
    let total: u64 = stats.per_link.iter().map(|l| l.flits).sum();
    assert_eq!(total, stats.link_traversals);
}

#[test]
fn throughput_time_series_has_tight_ci_below_saturation() {
    let n = 8;
    let topo = Spidergon::new(n).unwrap();
    let routing = SpidergonAcrossFirst::new(&topo);
    let cfg = SimConfig::builder()
        .injection_rate(0.1)
        .warmup_cycles(500)
        .measure_cycles(8_000)
        .sample_interval(500)
        .seed(23)
        .build()
        .unwrap();
    let mut sim = Simulation::new(
        Box::new(topo),
        Box::new(routing),
        Box::new(UniformRandom::new(n).unwrap()),
        cfg,
    )
    .unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(stats.throughput_samples.len(), 16);
    let (mean, half_width) = stats.throughput_ci(1.96);
    // CI brackets the overall throughput and is reasonably tight.
    let overall = stats.throughput_flits_per_cycle();
    assert!((mean - overall).abs() < 1e-9, "{mean} vs {overall}");
    assert!(
        half_width < 0.15 * mean,
        "CI too wide: {mean} +/- {half_width}"
    );
}

#[test]
fn mser_detects_cold_start_warmup_on_a_real_run() {
    // Run with NO configured warmup but with sampling on: the MSER rule
    // must cut a nonzero cold-start prefix at high load, and the
    // post-truncation mean must sit at the saturated throughput.
    let n = 16;
    let topo = Spidergon::new(n).unwrap();
    let routing = SpidergonAcrossFirst::new(&topo);
    // The sampling window must be short enough that the first window is
    // dominated by the cold start (empty network, nothing delivered yet)
    // rather than by sampling noise: with ~10-20 cycles of fill time, a
    // 20-cycle first window is mostly cold, while a 50-cycle one leaves
    // the below-mean deficit smaller than the per-window noise.
    let cfg = SimConfig::builder()
        .injection_rate(0.6)
        .warmup_cycles(0)
        .measure_cycles(20_000)
        .sample_interval(20)
        .seed(41)
        .build()
        .unwrap();
    let mut sim = Simulation::new(
        Box::new(topo),
        Box::new(routing),
        Box::new(UniformRandom::new(n).unwrap()),
        cfg,
    )
    .unwrap();
    let stats = sim.run().unwrap();
    // The raw series shows the cold start: the first sample (network
    // filling up) is below the steady-state mean.
    let all_mean = stats.throughput_flits_per_cycle();
    assert!(
        stats.throughput_samples[0] < all_mean,
        "first window {} should be below the mean {all_mean}",
        stats.throughput_samples[0]
    );
    let cut = noc_sim::mser_truncation(&stats.throughput_samples);
    assert!(cut <= stats.throughput_samples.len() / 2);
    let tail = &stats.throughput_samples[cut..];
    let tail_mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        tail_mean >= all_mean - 1e-9,
        "truncation should not lower the mean: {tail_mean} vs {all_mean}"
    );
}
