//! Integration tests for the runtime invariant auditor: clean
//! simulations audit clean (with bit-identical statistics), and
//! deliberately broken components — a misrouting fast path, a routing
//! scheme without the dateline VC — are caught with structured,
//! correctly-localized violations.

use noc_routing::{MeshXY, RingShortestPath, RoutingAlgorithm, SpidergonAcrossFirst};
use noc_sim::{Invariant, SimConfig, SimError, Simulation, StallDiagnosis};
use noc_topology::{Direction, NodeId, RectMesh, Ring, Spidergon, Topology};
use noc_traffic::{Trace, TraceEntry, UniformRandom};

fn config(lambda: f64, audit: bool) -> SimConfig {
    SimConfig::builder()
        .injection_rate(lambda)
        .warmup_cycles(200)
        .measure_cycles(2_000)
        .seed(20060306)
        .audit(audit)
        .build()
        .unwrap()
}

fn build(n: usize, kind: &str, cfg: SimConfig) -> Simulation {
    let pattern = UniformRandom::new(n).unwrap();
    match kind {
        "ring" => {
            let topo = Ring::new(n).unwrap();
            let routing = RingShortestPath::new(&topo);
            Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), cfg)
        }
        "spidergon" => {
            let topo = Spidergon::new(n).unwrap();
            let routing = SpidergonAcrossFirst::new(&topo);
            Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), cfg)
        }
        "mesh" => {
            let topo = RectMesh::new(4, n / 4).unwrap();
            let routing = MeshXY::new(&topo);
            Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), cfg)
        }
        other => panic!("unknown topology {other}"),
    }
    .unwrap()
}

#[test]
fn audited_runs_are_clean_across_topology_triple() {
    for kind in ["ring", "spidergon", "mesh"] {
        for lambda in [0.2, 1.0] {
            let mut sim = build(16, kind, config(lambda, true));
            sim.run().unwrap_or_else(|e| panic!("{kind}@{lambda}: {e}"));
            let report = sim.take_audit_report().expect("auditing enabled");
            assert!(
                report.is_clean(),
                "{kind}@{lambda} audit found violations:\n{report}"
            );
            assert!(report.preflight_ran, "{kind}: preflight skipped");
            assert!(report.cycles_audited >= 2_200, "{kind}: {report}");
            assert!(report.checks > 0 && report.flit_events > 0);
        }
    }
}

#[test]
fn audited_stats_bit_identical_to_unaudited() {
    for kind in ["ring", "spidergon", "mesh"] {
        let plain = build(16, kind, config(0.3, false)).run().unwrap();
        let audited = build(16, kind, config(0.3, true)).run().unwrap();
        assert_eq!(plain, audited, "{kind}: auditing changed the statistics");
    }
}

#[test]
fn audit_report_absent_when_disabled() {
    let mut sim = build(8, "ring", config(0.1, false));
    assert!(sim.audit_report().is_none());
    assert!(sim.take_audit_report().is_none());
}

#[test]
fn audit_interval_thins_the_sweep() {
    let cfg = SimConfig::builder()
        .injection_rate(0.2)
        .warmup_cycles(100)
        .measure_cycles(900)
        .audit(true)
        .audit_interval(10)
        .build()
        .unwrap();
    let mut sim = build(8, "spidergon", cfg);
    sim.run().unwrap();
    let report = sim.take_audit_report().unwrap();
    assert!(report.is_clean(), "{report}");
    // 1000 cycles, every 10th swept.
    assert_eq!(report.cycles_audited, 100);
    // Per-flit checks still ran on every event.
    assert!(report.flit_events > 100);
}

/// A routing algorithm whose *fast path* (`candidates_into`, the method
/// the switch allocator actually calls) disagrees with its reference
/// methods — the class of bug a hand-optimized hot path introduces.
/// At node 0 towards node 2 it routes South instead of MeshXY's East.
#[derive(Debug)]
struct BrokenFastPath {
    inner: MeshXY,
}

impl RoutingAlgorithm for BrokenFastPath {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        self.inner.next_hop(current, dest)
    }

    fn num_vcs_required(&self) -> usize {
        self.inner.num_vcs_required()
    }

    fn vc_for_hop(&self, current: NodeId, dest: NodeId, dir: Direction, vc: usize) -> usize {
        self.inner.vc_for_hop(current, dest, dir, vc)
    }

    fn candidates_into(&self, current: NodeId, dest: NodeId, out: &mut Vec<Direction>) {
        if current == NodeId::new(0) && dest == NodeId::new(2) {
            out.push(Direction::South); // the deliberate mutant
        } else {
            self.inner.candidates_into(current, dest, out);
        }
    }

    fn label(&self) -> String {
        "broken-fast-path".to_owned()
    }
}

#[test]
fn mutant_fast_path_caught_with_route_legality_violation() {
    // One traced packet 0 -> 2 on a 3x3 mesh. The mutant sends it
    // 0 -> 3 (South); XY recovers via 3 -> 4 -> 5 -> 2, so the run
    // completes — only the auditor notices the illegal first hop.
    let topo = RectMesh::new(3, 3).unwrap();
    let routing = BrokenFastPath {
        inner: MeshXY::new(&topo),
    };
    let trace = Trace::new(
        topo.num_nodes(),
        vec![TraceEntry {
            cycle: 0,
            src: NodeId::new(0),
            dst: NodeId::new(2),
        }],
    )
    .unwrap();
    let cfg = SimConfig::builder()
        .warmup_cycles(0)
        .measure_cycles(200)
        .audit(true)
        // The mutant lives in `candidates_into`, the *dynamic* fast
        // path; the compiled-route table is built from `next_hop` and
        // would route around the bug entirely.
        .compiled_routes(false)
        .build()
        .unwrap();
    let mut sim = Simulation::with_trace(Box::new(topo), Box::new(routing), &trace, cfg).unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(stats.packets_delivered, 1, "packet still arrives");
    let report = sim.take_audit_report().unwrap();
    assert!(!report.is_clean());
    let route_violations: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.invariant == Invariant::RouteLegality)
        .collect();
    assert!(!route_violations.is_empty(), "mutant not caught:\n{report}");
    // The violation names the offending hop: node 0, direction south,
    // the traced packet.
    let v = route_violations[0];
    assert_eq!(v.node, Some(NodeId::new(0)), "{v}");
    assert_eq!(v.packet, Some(noc_sim::PacketId::new(0)), "{v}");
    let buffer = v.buffer.expect("hop violation names the link");
    assert_eq!(buffer.direction, Some(Direction::South), "{v}");
    assert!(v.detail.contains("south"), "{v}");
}

/// Collapses a routing algorithm to a single virtual channel, removing
/// the dateline deadlock avoidance the paper's ring-like topologies
/// rely on.
#[derive(Debug)]
struct SingleVc {
    inner: RingShortestPath,
}

impl RoutingAlgorithm for SingleVc {
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Direction {
        self.inner.next_hop(current, dest)
    }

    fn num_vcs_required(&self) -> usize {
        1
    }

    fn vc_for_hop(&self, _: NodeId, _: NodeId, _: Direction, _: usize) -> usize {
        0
    }

    fn label(&self) -> String {
        "ring-single-vc".to_owned()
    }
}

#[test]
fn single_vc_ring_deadlock_is_diagnosed() {
    let topo = Ring::new(8).unwrap();
    let routing = SingleVc {
        inner: RingShortestPath::new(&topo),
    };
    let pattern = UniformRandom::new(8).unwrap();
    let cfg = SimConfig::builder()
        .injection_rate(1.0)
        .warmup_cycles(0)
        .measure_cycles(50_000)
        .stall_threshold(1_000)
        .seed(11)
        .audit(true)
        .build()
        .unwrap();
    let mut sim =
        Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), cfg).unwrap();
    let err = sim.run().expect_err("single-VC ring at saturation wedges");
    assert!(matches!(err, SimError::Stalled { .. }), "{err}");
    let report = sim.take_audit_report().unwrap();
    // Preflight already warned: the CDG with one VC is cyclic.
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::Progress && v.cycle == 0),
        "no preflight CDG warning:\n{report}"
    );
    // And the watchdog stall is diagnosed as a true circular wait with
    // a witness chain of blocked channels.
    match &report.stall {
        Some(StallDiagnosis::Deadlock { cycle }) => {
            assert!(cycle.len() >= 2, "degenerate witness: {report}");
        }
        other => panic!("expected deadlock diagnosis, got {other:?}:\n{report}"),
    }
}
