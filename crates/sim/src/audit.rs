//! Runtime invariant auditor for the wormhole simulation.
//!
//! The paper's throughput/latency figures are only as trustworthy as
//! the simulator's bookkeeping: a switch-allocation bug that drops or
//! duplicates a flit shifts every curve without failing a single
//! assertion. The auditor is an opt-in observer
//! ([`SimConfig::audit`](crate::SimConfig)) attached to a
//! [`Simulation`] that cross-checks, while the simulation runs:
//!
//! * **Flit conservation** — `generated = consumed + source backlog +
//!   in network`, re-derived from the buffers every audited cycle and
//!   compared against the simulator's incremental counters;
//! * **Buffer capacity** — every input buffer, output VC queue and
//!   ejection queue holds at most its capacity (the signal-based flow
//!   control credit never goes negative);
//! * **Wormhole ordering** — flits of different packets never
//!   interleave within a VC (on links and inside queues), queue
//!   ownership matches the queued flits, and packets reassemble at
//!   their destination head-first, in order, with the full flit count
//!   and equal per-flit hop counts;
//! * **Route legality** — every link a head flit crosses is one the
//!   [`RoutingAlgorithm`] could have produced
//!   ([`RoutingAlgorithm::candidates`]), hops make strict progress
//!   towards the destination when the algorithm routes minimally
//!   (checked against an independent BFS distance matrix), and no flit
//!   exceeds the `4·N + 4` hop budget of
//!   [`noc_routing::validate::walk_route`];
//! * **Progress** — when the stall watchdog fires, the wait-for graph
//!   of blocked virtual channels is inspected to distinguish a true
//!   circular wait (deadlock, with a witness cycle) from starvation;
//!   saturation alone never trips the watchdog because flits keep
//!   moving.
//!
//! On attach the auditor also runs a **preflight** cross-check of the
//! routing algorithm through [`noc_routing::validate`] and the channel
//! dependency graph ([`noc_routing::cdg`]), so a routing function that
//! cannot possibly be correct is flagged before the first cycle.
//!
//! Violations are reported as structured [`AuditViolation`] values in
//! an [`AuditReport`] — never panics — so sweeps can aggregate audit
//! findings across workers deterministically. The auditor only *reads*
//! simulation state: an audited run produces bit-identical
//! [`SimStats`](crate::SimStats) to an unaudited run of the same seed
//! (asserted by the conformance harness in `noc-core`).
//!
//! The route-legality check deliberately consults
//! [`RoutingAlgorithm::candidates`], not the
//! [`candidates_into`](RoutingAlgorithm::candidates_into) fast path the
//! switch allocator uses — the two are required to agree, so a
//! miscompiled or hand-"optimized" fast path is caught by the slow one.

use crate::network::{NodeState, Simulation, EJECT};
use crate::probe::Probe;
use crate::{Flit, PacketId, SimConfig};
use core::fmt;
use noc_routing::cdg::CdgAnalysis;
use noc_routing::{validate, RoutingAlgorithm};
use noc_topology::graph::DistanceMatrix;
use noc_topology::{Direction, NodeId, Topology};
use std::collections::HashMap;

/// Hard cap on recorded violations; a broken invariant usually fires
/// every cycle, and the first few occurrences carry all the signal.
const MAX_VIOLATIONS: usize = 64;

/// Node-count ceiling for the preflight route/CDG validation and the
/// BFS distance oracle (both are O(N²) or worse; beyond this the
/// auditor still checks conservation, buffers, wormhole order and
/// candidate membership, but skips the all-pairs analyses).
const PREFLIGHT_MAX_NODES: usize = 512;

/// The invariant classes the auditor checks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Invariant {
    /// `generated = consumed + source backlog + in network`, and the
    /// incremental counters agree with the buffer-derived occupancy.
    FlitConservation,
    /// Every buffer holds at most its capacity.
    BufferCapacity,
    /// Flits of different packets never interleave within a VC and
    /// packets reassemble in order with all their flits.
    WormholeOrder,
    /// Every hop taken is one the routing algorithm could have
    /// produced, and makes progress towards the destination.
    RouteLegality,
    /// The network keeps making progress: a fired stall watchdog with a
    /// circular wait among blocked VCs is a deadlock.
    Progress,
}

impl Invariant {
    /// Stable machine-readable name of the invariant.
    pub const fn name(self) -> &'static str {
        match self {
            Invariant::FlitConservation => "flit-conservation",
            Invariant::BufferCapacity => "buffer-capacity",
            Invariant::WormholeOrder => "wormhole-order",
            Invariant::RouteLegality => "route-legality",
            Invariant::Progress => "progress",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which buffer class of the node model a violation points at.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BufferClass {
    /// The NI source (injection) queue.
    Source,
    /// An input buffer of a link port.
    Input,
    /// An output VC queue of a link port.
    Output,
    /// A local ejection queue towards the IP sink.
    Ejection,
    /// The link itself (wormhole ordering on the wire).
    Link,
}

impl fmt::Display for BufferClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BufferClass::Source => "source",
            BufferClass::Input => "input",
            BufferClass::Output => "output",
            BufferClass::Ejection => "eject",
            BufferClass::Link => "link",
        })
    }
}

/// Identifies one buffer (or link) of the node model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufferRef {
    /// The node the buffer belongs to.
    pub node: NodeId,
    /// Buffer class within the node model.
    pub class: BufferClass,
    /// Link direction, where the class has one.
    pub direction: Option<Direction>,
    /// Virtual channel (or ejection-channel) index.
    pub vc: usize,
}

impl fmt::Display for BufferRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.direction {
            Some(d) => write!(f, "{}:{}[{d}].vc{}", self.node, self.class, self.vc),
            None => write!(f, "{}:{}.vc{}", self.node, self.class, self.vc),
        }
    }
}

/// One invariant violation, with enough context to localize the bug:
/// which invariant, at which cycle, at which node and buffer, and which
/// packet's flits were involved.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AuditViolation {
    /// The invariant that was violated.
    pub invariant: Invariant,
    /// Cycle at which the violation was detected (0 for preflight
    /// findings, recorded before the first cycle runs).
    pub cycle: u64,
    /// Node at which the violation was observed, if localized.
    pub node: Option<NodeId>,
    /// Buffer or link involved, if localized.
    pub buffer: Option<BufferRef>,
    /// Packet whose flits were involved, if any.
    pub packet: Option<PacketId>,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] cycle {}", self.invariant, self.cycle)?;
        if let Some(node) = self.node {
            write!(f, " at {node}")?;
        }
        if let Some(buf) = self.buffer {
            write!(f, " ({buf})")?;
        }
        if let Some(p) = self.packet {
            write!(f, " {p}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Outcome of the wait-for-graph inspection run when the stall watchdog
/// fires: was the stall a true deadlock or mere starvation?
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StallDiagnosis {
    /// A circular wait among blocked virtual channels: the witness
    /// cycle, as the chain of buffers each waiting on the next.
    Deadlock {
        /// The buffers forming the circular wait, in chain order.
        cycle: Vec<BufferRef>,
    },
    /// No circular wait was found among the blocked VCs — the stall is
    /// starvation or an arbitration bug, not a wormhole deadlock.
    NoCircularWait,
}

/// Aggregated findings of one audited simulation run.
///
/// Obtained from [`Simulation::audit_report`]. Reports are plain data
/// (`PartialEq`, serde) so replicated sweeps can compare and aggregate
/// them deterministically across workers.
#[derive(Clone, PartialEq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AuditReport {
    /// Violations found, in detection order (capped; see `truncated`).
    pub violations: Vec<AuditViolation>,
    /// Individual invariant evaluations performed.
    pub checks: u64,
    /// Cycles at which the per-cycle sweep ran.
    pub cycles_audited: u64,
    /// Per-flit events observed (link crossings and consumptions).
    pub flit_events: u64,
    /// `true` if more violations occurred than were recorded.
    pub truncated: bool,
    /// Whether the preflight route/CDG validation ran (skipped above
    /// a node-count ceiling).
    pub preflight_ran: bool,
    /// Stall diagnosis, present only if the watchdog fired.
    pub stall: Option<StallDiagnosis>,
}

impl AuditReport {
    /// `true` if no violation was observed (or dropped).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit: {} violation(s){} over {} cycle(s), {} check(s), {} flit event(s)",
            self.violations.len(),
            if self.truncated { "+ (truncated)" } else { "" },
            self.cycles_audited,
            self.checks,
            self.flit_events,
        )?;
        match &self.stall {
            Some(StallDiagnosis::Deadlock { cycle }) => {
                write!(f, "; DEADLOCK via {} blocked channel(s)", cycle.len())?;
            }
            Some(StallDiagnosis::NoCircularWait) => {
                write!(f, "; stalled without circular wait")?;
            }
            None => {}
        }
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Per-packet reassembly tracking at the sinks.
struct PacketTrack {
    /// Flits of the packet consumed so far.
    consumed: usize,
    /// Hop count of the first consumed flit; all flits of a wormhole
    /// packet cross the same links, so the rest must match.
    hops: u64,
}

/// The auditor itself: owned by [`Simulation`] when
/// [`SimConfig::audit`](crate::SimConfig) is set, invoked from the
/// cycle phases. Read-only with respect to simulation state.
pub(crate) struct Auditor {
    interval: u64,
    packet_len: usize,
    hop_budget: u64,
    /// Progress oracle enabled: preflight proved the algorithm minimal,
    /// so every hop must reduce the BFS distance by exactly one.
    minimal: bool,
    dist: Option<DistanceMatrix>,
    /// Packet currently holding each unidirectional link VC, indexed
    /// `[node][dir][vc]` — tracks wormhole ownership *on the wire*.
    link_owner: Vec<Vec<Vec<Option<PacketId>>>>,
    packets: HashMap<PacketId, PacketTrack>,
    report: AuditReport,
}

impl fmt::Debug for Auditor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Auditor")
            .field("interval", &self.interval)
            .field("minimal", &self.minimal)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl Auditor {
    /// Builds an auditor for the assembled simulation and runs the
    /// preflight routing validation.
    pub(crate) fn attach(
        topo: &dyn Topology,
        routing: &dyn RoutingAlgorithm,
        nodes: &[NodeState],
        vcs: usize,
        config: &SimConfig,
    ) -> Self {
        let n = topo.num_nodes();
        let link_owner = nodes
            .iter()
            .map(|node| vec![vec![None; vcs]; node.dirs.len()])
            .collect();
        let mut auditor = Auditor {
            interval: config.audit_interval.max(1),
            packet_len: config.packet_len,
            hop_budget: (4 * n + 4) as u64,
            minimal: false,
            dist: None,
            link_owner,
            packets: HashMap::new(),
            report: AuditReport::default(),
        };
        if n <= PREFLIGHT_MAX_NODES {
            auditor.preflight(topo, routing);
        }
        auditor
    }

    /// Cross-checks the routing algorithm against
    /// [`noc_routing::validate`] and the CDG before the first cycle.
    fn preflight(&mut self, topo: &dyn Topology, routing: &dyn RoutingAlgorithm) {
        self.dist = Some(topo.graph().all_pairs_distances());
        self.report.preflight_ran = true;
        self.report.checks += 1;
        match validate::validate_all_routes(routing, topo) {
            Ok(rep) => {
                // Deterministic walks terminate; check deadlock freedom
                // of the resulting channel dependency graph.
                self.report.checks += 1;
                let cdg = CdgAnalysis::analyze(routing, topo);
                if let Some(cycle) = cdg.cycle() {
                    let witness: Vec<String> = cycle.iter().map(|c| c.to_string()).collect();
                    self.push(AuditViolation {
                        invariant: Invariant::Progress,
                        cycle: 0,
                        node: None,
                        buffer: None,
                        packet: None,
                        detail: format!(
                            "preflight: channel dependency graph is cyclic ({})",
                            witness.join(" -> ")
                        ),
                    });
                }
                if rep.non_minimal == 0 {
                    // next_hop routes minimally; if every adaptive
                    // candidate also makes strict progress, enable the
                    // per-hop distance oracle.
                    self.report.checks += 1;
                    match validate::validate_all_candidates(routing, topo) {
                        Ok(()) => self.minimal = true,
                        Err(e) => self.push(AuditViolation {
                            invariant: Invariant::RouteLegality,
                            cycle: 0,
                            node: None,
                            buffer: None,
                            packet: None,
                            detail: format!("preflight: candidate validation failed: {e}"),
                        }),
                    }
                }
            }
            Err(e) => self.push(AuditViolation {
                invariant: Invariant::RouteLegality,
                cycle: 0,
                node: None,
                buffer: None,
                packet: None,
                detail: format!("preflight: route validation failed: {e}"),
            }),
        }
    }

    pub(crate) fn report(&self) -> &AuditReport {
        &self.report
    }

    pub(crate) fn into_report(self) -> AuditReport {
        self.report
    }

    fn push(&mut self, violation: AuditViolation) {
        if self.report.violations.len() >= MAX_VIOLATIONS {
            self.report.truncated = true;
            return;
        }
        self.report.violations.push(violation);
    }

    /// Observes one flit crossing the link `(v, dirs[d])` on `vc`.
    /// `flit` is the flit *after* its hop counter was incremented.
    pub(crate) fn on_link_transfer<Q: Probe>(
        &mut self,
        sim: &Simulation<Q>,
        v: usize,
        d: usize,
        vc: usize,
        flit: &Flit,
    ) {
        self.report.flit_events += 1;
        self.report.checks += 2;
        let dir = sim.nodes[v].dirs[d];
        let (peer, _) = sim.nodes[v].peer[d];
        let link = BufferRef {
            node: NodeId::new(v),
            class: BufferClass::Link,
            direction: Some(dir),
            vc,
        };
        // Wormhole ownership on the wire: a head claims the link VC
        // until the matching tail; no foreign flit may interleave.
        let owner = self.link_owner[v][d][vc];
        if flit.kind.is_head() {
            if let Some(prev) = owner {
                self.push(AuditViolation {
                    invariant: Invariant::WormholeOrder,
                    cycle: sim.cycle(),
                    node: Some(NodeId::new(v)),
                    buffer: Some(link),
                    packet: Some(flit.packet),
                    detail: format!("head {flit} crossed link still owned by {prev}"),
                });
            }
            self.link_owner[v][d][vc] = if flit.kind.is_tail() {
                None
            } else {
                Some(flit.packet)
            };
        } else {
            if owner != Some(flit.packet) {
                self.push(AuditViolation {
                    invariant: Invariant::WormholeOrder,
                    cycle: sim.cycle(),
                    node: Some(NodeId::new(v)),
                    buffer: Some(link),
                    packet: Some(flit.packet),
                    detail: format!(
                        "{flit} crossed link owned by {} (interleaved wormholes)",
                        owner.map_or_else(|| "nobody".to_owned(), |p| p.to_string()),
                    ),
                });
            }
            if flit.kind.is_tail() {
                self.link_owner[v][d][vc] = None;
            }
        }
        if flit.kind.is_head() {
            self.check_hop_legality(sim, v, peer, dir, vc, flit);
        }
        if flit.hops > self.hop_budget {
            self.push(AuditViolation {
                invariant: Invariant::RouteLegality,
                cycle: sim.cycle(),
                node: Some(NodeId::new(v)),
                buffer: Some(link),
                packet: Some(flit.packet),
                detail: format!(
                    "{flit} exceeded the {}-hop budget ({} hops): routing livelock",
                    self.hop_budget, flit.hops
                ),
            });
        }
    }

    /// Route legality of one head-flit hop: membership in the routing
    /// algorithm's candidate set, and strict progress under the BFS
    /// distance oracle when the algorithm is minimal.
    fn check_hop_legality<Q: Probe>(
        &mut self,
        sim: &Simulation<Q>,
        v: usize,
        peer: usize,
        dir: Direction,
        vc: usize,
        flit: &Flit,
    ) {
        let here = NodeId::new(v);
        self.report.checks += 1;
        let legal = sim.routing.candidates(here, flit.dst);
        if !legal.contains(&dir) {
            self.push(AuditViolation {
                invariant: Invariant::RouteLegality,
                cycle: sim.cycle(),
                node: Some(here),
                buffer: Some(BufferRef {
                    node: here,
                    class: BufferClass::Link,
                    direction: Some(dir),
                    vc,
                }),
                packet: Some(flit.packet),
                detail: format!(
                    "hop {here} --{dir}--> n{peer} for {flit} is not among the \
                     routing candidates {legal:?}"
                ),
            });
            return;
        }
        if !self.minimal {
            return;
        }
        if let Some(dist) = &self.dist {
            self.report.checks += 1;
            let from = dist.distance(v, flit.dst.index());
            let to = dist.distance(peer, flit.dst.index());
            if to + 1 != from {
                self.push(AuditViolation {
                    invariant: Invariant::RouteLegality,
                    cycle: sim.cycle(),
                    node: Some(here),
                    buffer: Some(BufferRef {
                        node: here,
                        class: BufferClass::Link,
                        direction: Some(dir),
                        vc,
                    }),
                    packet: Some(flit.packet),
                    detail: format!(
                        "hop {here} --{dir}--> n{peer} for {flit} is non-minimal \
                         (distance {from} -> {to}) under a minimal algorithm"
                    ),
                });
            }
        }
    }

    /// Observes one flit consumed by the sink at node `v`.
    pub(crate) fn on_consume(&mut self, cycle: u64, v: usize, flit: &Flit) {
        self.report.flit_events += 1;
        self.report.checks += 2;
        if flit.dst.index() != v {
            self.push(AuditViolation {
                invariant: Invariant::RouteLegality,
                cycle,
                node: Some(NodeId::new(v)),
                buffer: None,
                packet: Some(flit.packet),
                detail: format!("{flit} consumed at n{v}, not its destination {}", flit.dst),
            });
        }
        let track = self.packets.entry(flit.packet).or_insert(PacketTrack {
            consumed: 0,
            hops: flit.hops,
        });
        let mut bad: Option<String> = None;
        if flit.kind.is_head() && track.consumed > 0 {
            bad = Some(format!(
                "head {flit} consumed after {} earlier flit(s)",
                track.consumed
            ));
        } else if !flit.kind.is_head() && track.consumed == 0 {
            bad = Some(format!("{flit} consumed before its head"));
        } else if track.hops != flit.hops {
            bad = Some(format!(
                "{flit} crossed {} link(s) but its head crossed {} (divergent wormhole path)",
                flit.hops, track.hops
            ));
        }
        track.consumed += 1;
        let consumed = track.consumed;
        if flit.kind.is_tail() {
            self.packets.remove(&flit.packet);
            if bad.is_none() && consumed != self.packet_len {
                bad = Some(format!(
                    "packet reassembled with {consumed} of {} flit(s)",
                    self.packet_len
                ));
            }
        } else if bad.is_none() && consumed >= self.packet_len {
            bad = Some(format!(
                "{flit} is flit #{consumed} of a {}-flit packet with no tail yet",
                self.packet_len
            ));
        }
        if let Some(detail) = bad {
            self.push(AuditViolation {
                invariant: Invariant::WormholeOrder,
                cycle,
                node: Some(NodeId::new(v)),
                buffer: None,
                packet: Some(flit.packet),
                detail,
            });
        }
    }

    /// Per-cycle sweep (every `audit_interval` cycles): conservation
    /// identity, counter consistency, buffer bounds and queue
    /// structure.
    pub(crate) fn on_cycle_end<Q: Probe>(&mut self, sim: &Simulation<Q>) {
        if !sim.cycle().is_multiple_of(self.interval) {
            return;
        }
        let cycle = sim.cycle();
        self.report.cycles_audited += 1;
        self.report.checks += 3;
        let occ = sim.occupancy();
        let generated = sim.total_flits_generated();
        let consumed = sim.total_flits_consumed();
        let accounted = consumed + occ.source_flits + occ.in_network();
        if generated != accounted {
            self.push(AuditViolation {
                invariant: Invariant::FlitConservation,
                cycle,
                node: None,
                buffer: None,
                packet: None,
                detail: format!(
                    "generated {generated} != consumed {consumed} + backlog {} + \
                     in-network {} (flits lost or duplicated)",
                    occ.source_flits,
                    occ.in_network()
                ),
            });
        }
        if sim.flits_in_network() != occ.in_network() {
            self.push(AuditViolation {
                invariant: Invariant::FlitConservation,
                cycle,
                node: None,
                buffer: None,
                packet: None,
                detail: format!(
                    "in-network counter {} drifted from buffer-derived occupancy {}",
                    sim.flits_in_network(),
                    occ.in_network()
                ),
            });
        }
        if sim.source_backlog() != occ.source_flits {
            self.push(AuditViolation {
                invariant: Invariant::FlitConservation,
                cycle,
                node: None,
                buffer: None,
                packet: None,
                detail: format!(
                    "source-backlog counter {} drifted from derived backlog {}",
                    sim.source_backlog(),
                    occ.source_flits
                ),
            });
        }
        for v in 0..sim.nodes.len() {
            self.check_node_buffers(sim, v, cycle);
        }
    }

    /// Capacity and wormhole-structure checks for every buffer of one
    /// node.
    fn check_node_buffers<Q: Probe>(&mut self, sim: &Simulation<Q>, v: usize, cycle: u64) {
        let node = &sim.nodes[v];
        let id = NodeId::new(v);
        for d in 0..node.dirs.len() {
            let dir = node.dirs[d];
            for (c, buf) in node.input[d].iter().enumerate() {
                let r = BufferRef {
                    node: id,
                    class: BufferClass::Input,
                    direction: Some(dir),
                    vc: c,
                };
                self.report.checks += 1;
                if buf.len() > buf.capacity() {
                    self.push_overflow(cycle, r, buf.len(), buf.capacity());
                }
                self.check_queue_structure(
                    cycle,
                    r,
                    buf.iter().map(|&f| sim.arena.materialize(f)),
                    None,
                );
            }
            for (c, q) in node.out[d].iter().enumerate() {
                let r = BufferRef {
                    node: id,
                    class: BufferClass::Output,
                    direction: Some(dir),
                    vc: c,
                };
                self.report.checks += 1;
                if q.len() > q.capacity() {
                    self.push_overflow(cycle, r, q.len(), q.capacity());
                }
                self.check_queue_structure(
                    cycle,
                    r,
                    q.iter().map(|&f| sim.arena.materialize(f)),
                    Some(q.owner().map(|p| sim.arena.packet_id(p))),
                );
            }
        }
        for (c, q) in node.eject.iter().enumerate() {
            let r = BufferRef {
                node: id,
                class: BufferClass::Ejection,
                direction: None,
                vc: c,
            };
            self.report.checks += 1;
            if q.len() > q.capacity() {
                self.push_overflow(cycle, r, q.len(), q.capacity());
            }
            self.check_queue_structure(
                cycle,
                r,
                q.iter().map(|&f| sim.arena.materialize(f)),
                Some(q.owner().map(|p| sim.arena.packet_id(p))),
            );
        }
    }

    fn push_overflow(&mut self, cycle: u64, buffer: BufferRef, len: usize, capacity: usize) {
        self.push(AuditViolation {
            invariant: Invariant::BufferCapacity,
            cycle,
            node: Some(buffer.node),
            buffer: Some(buffer),
            packet: None,
            detail: format!("buffer holds {len} flit(s), capacity {capacity}"),
        });
    }

    /// Wormhole structure of one queue: consecutive flits either belong
    /// to the same packet (head..tail order) or a fresh head follows a
    /// tail; for owned queues the declared owner must match the flits.
    fn check_queue_structure(
        &mut self,
        cycle: u64,
        buffer: BufferRef,
        flits: impl Iterator<Item = Flit>,
        declared_owner: Option<Option<PacketId>>,
    ) {
        self.report.checks += 1;
        let mut last: Option<Flit> = None;
        for flit in flits {
            if let Some(prev) = last {
                let ok = if flit.kind.is_head() {
                    prev.kind.is_tail()
                } else {
                    flit.packet == prev.packet && !prev.kind.is_tail()
                };
                if !ok {
                    self.push(AuditViolation {
                        invariant: Invariant::WormholeOrder,
                        cycle,
                        node: Some(buffer.node),
                        buffer: Some(buffer),
                        packet: Some(flit.packet),
                        detail: format!("{flit} queued directly after {prev}"),
                    });
                }
            }
            last = Some(flit);
        }
        if let (Some(owner), Some(tail)) = (declared_owner, last) {
            let expect = if tail.kind.is_tail() {
                None
            } else {
                Some(tail.packet)
            };
            if owner != expect {
                self.push(AuditViolation {
                    invariant: Invariant::WormholeOrder,
                    cycle,
                    node: Some(buffer.node),
                    buffer: Some(buffer),
                    packet: expect.or(owner),
                    detail: format!(
                        "queue owner {owner:?} inconsistent with last queued flit {tail}"
                    ),
                });
            }
        }
    }

    /// Called when the stall watchdog fires: inspects the wait-for
    /// graph of blocked VCs to tell deadlock from starvation.
    pub(crate) fn on_stall<Q: Probe>(&mut self, sim: &Simulation<Q>) {
        self.report.checks += 1;
        match find_circular_wait(sim) {
            Some(chain) => {
                let witness: Vec<String> = chain.iter().map(|b| b.to_string()).collect();
                self.push(AuditViolation {
                    invariant: Invariant::Progress,
                    cycle: sim.cycle(),
                    node: chain.first().map(|b| b.node),
                    buffer: chain.first().copied(),
                    packet: None,
                    detail: format!("deadlock: circular wait {}", witness.join(" -> ")),
                });
                self.report.stall = Some(StallDiagnosis::Deadlock { cycle: chain });
            }
            None => {
                self.push(AuditViolation {
                    invariant: Invariant::Progress,
                    cycle: sim.cycle(),
                    node: None,
                    buffer: None,
                    packet: None,
                    detail: "watchdog fired but no circular wait exists among blocked VCs \
                             (starvation or arbitration bug, not wormhole deadlock)"
                        .to_owned(),
                });
                self.report.stall = Some(StallDiagnosis::NoCircularWait);
            }
        }
    }
}

/// Builds the wait-for graph over blocked VC resources and returns a
/// witness cycle, if one exists.
///
/// Resources are input buffers and output VC queues. Edges:
///
/// * a nonempty output queue waits for space in the downstream input
///   buffer of its link;
/// * a nonempty input buffer whose front flit cannot enter any of its
///   legal output queues waits on those queues (all routing candidates
///   for a head flit; the wormhole allocation for body/tail flits).
///
/// Ejection queues are sinks (the IP drains them every cycle) and
/// source queues hold no network resource, so neither can close a
/// cycle.
fn find_circular_wait<Q: Probe>(sim: &Simulation<Q>) -> Option<Vec<BufferRef>> {
    let vcs = sim.vcs;
    let n = sim.nodes.len();
    // Resource ids: per node, `dirs.len() * vcs` input slots followed by
    // `dirs.len() * vcs` output slots.
    let mut base = vec![0usize; n + 1];
    for v in 0..n {
        base[v + 1] = base[v] + 2 * sim.nodes[v].dirs.len() * vcs;
    }
    let total = base[n];
    let input_id = |v: usize, d: usize, c: usize| base[v] + d * vcs + c;
    let output_id =
        |v: usize, d: usize, c: usize| base[v] + sim.nodes[v].dirs.len() * vcs + d * vcs + c;
    let mut refs: Vec<Option<BufferRef>> = vec![None; total];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); total];
    for (v, node) in sim.nodes.iter().enumerate() {
        for d in 0..node.dirs.len() {
            let dir = node.dirs[d];
            for c in 0..vcs {
                refs[input_id(v, d, c)] = Some(BufferRef {
                    node: NodeId::new(v),
                    class: BufferClass::Input,
                    direction: Some(dir),
                    vc: c,
                });
                refs[output_id(v, d, c)] = Some(BufferRef {
                    node: NodeId::new(v),
                    class: BufferClass::Output,
                    direction: Some(dir),
                    vc: c,
                });
                // Output queue -> downstream input buffer.
                if node.out[d][c].front().is_some() {
                    let (u, up) = node.peer[d];
                    if !sim.nodes[u].input[up][c].has_space() {
                        adj[output_id(v, d, c)].push(input_id(u, up, c));
                    }
                }
                // Input buffer -> blocked output queue(s) at this node.
                let Some(&flit) = node.input[d][c].iter().next() else {
                    continue;
                };
                if flit.kind.is_head() {
                    let dst = sim.arena.dst(flit.pkt);
                    for cand in sim.routing.candidates(NodeId::new(v), dst) {
                        if cand == Direction::Local {
                            continue; // ejection queues always drain
                        }
                        let Some(p) = node.dirs.iter().position(|&x| x == cand) else {
                            continue; // illegal hop, flagged elsewhere
                        };
                        let out_vc = sim.routing.vc_for_hop(NodeId::new(v), dst, cand, c);
                        if out_vc < vcs && !node.out[p][out_vc].can_accept(&flit) {
                            adj[input_id(v, d, c)].push(output_id(v, p, out_vc));
                        }
                    }
                } else if let Some(route) = node.input[d][c].route {
                    if route.out_port != EJECT
                        && !node.out[route.out_port][route.out_vc].can_accept(&flit)
                    {
                        adj[input_id(v, d, c)].push(output_id(v, route.out_port, route.out_vc));
                    }
                }
            }
        }
    }
    let cycle_ids = find_cycle(&adj)?;
    Some(cycle_ids.iter().filter_map(|&id| refs[id]).collect())
}

/// Iterative DFS cycle detection; returns the node ids forming the
/// first cycle found, in chain order.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; adj.len()];
    for start in 0..adj.len() {
        if color[start] != WHITE {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        color[start] = GRAY;
        while let Some(frame) = stack.last_mut() {
            let (u, edge) = (frame.0, frame.1);
            if edge < adj[u].len() {
                frame.1 += 1;
                let w = adj[u][edge];
                if color[w] == WHITE {
                    color[w] = GRAY;
                    stack.push((w, 0));
                    path.push(w);
                } else if color[w] == GRAY {
                    let pos = path.iter().position(|&x| x == w)?;
                    return Some(path[pos..].to_vec());
                }
            } else {
                color[u] = BLACK;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_names_are_stable() {
        assert_eq!(Invariant::FlitConservation.name(), "flit-conservation");
        assert_eq!(Invariant::RouteLegality.to_string(), "route-legality");
    }

    #[test]
    fn buffer_ref_display() {
        let r = BufferRef {
            node: NodeId::new(3),
            class: BufferClass::Output,
            direction: Some(Direction::Clockwise),
            vc: 1,
        };
        assert_eq!(r.to_string(), "n3:output[cw].vc1");
        let e = BufferRef {
            node: NodeId::new(0),
            class: BufferClass::Ejection,
            direction: None,
            vc: 0,
        };
        assert_eq!(e.to_string(), "n0:eject.vc0");
    }

    #[test]
    fn report_display_and_cleanliness() {
        let mut report = AuditReport::default();
        assert!(report.is_clean());
        report.violations.push(AuditViolation {
            invariant: Invariant::FlitConservation,
            cycle: 42,
            node: None,
            buffer: None,
            packet: None,
            detail: "x".to_owned(),
        });
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("flit-conservation"), "{text}");
        assert!(text.contains("cycle 42"), "{text}");
    }

    #[test]
    fn find_cycle_detects_and_clears() {
        // 0 -> 1 -> 2 -> 0 plus a tail 3 -> 0.
        let adj = vec![vec![1], vec![2], vec![0], vec![0]];
        let cycle = find_cycle(&adj).unwrap();
        assert_eq!(cycle.len(), 3);
        // A DAG has none.
        let dag = vec![vec![1, 2], vec![2], vec![]];
        assert!(find_cycle(&dag).is_none());
    }
}
