//! A small discrete-event simulation kernel.
//!
//! The original study used OMNeT++, a general-purpose discrete-event
//! engine; this module is our substitute. The NoC model itself advances
//! in synchronous cycles (as OMNeT++ NoC models typically do via
//! self-messages), but *asynchronous* happenings — packet arrivals drawn
//! from a continuous Poisson process — are kept in a proper time-ordered
//! event queue with deterministic FIFO tie-breaking.
//!
//! The kernel is deliberately generic (events are any payload type) and
//! independently tested, so it can be reused outside the NoC model.

use core::fmt;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in (possibly fractional) cycles.
///
/// Wraps an `f64` and provides a total order so it can live in a
/// [`BinaryHeap`].
///
/// # Examples
///
/// ```
/// use noc_sim::des::SimTime;
///
/// let a = SimTime::new(1.5);
/// let b = SimTime::new(2.0);
/// assert!(a < b);
/// assert_eq!(a.as_f64(), 1.5);
/// assert_eq!(b.cycle(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time stamp.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN or negative.
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite() || t == f64::INFINITY, "time must not be NaN");
        assert!(t >= 0.0, "time must be non-negative");
        SimTime(t)
    }

    /// Raw value in cycles.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// The integer cycle this instant belongs to (`floor`).
    pub fn cycle(self) -> u64 {
        self.0 as u64
    }

    /// This instant advanced by `delta` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is NaN or negative.
    pub fn advanced(self, delta: f64) -> Self {
        SimTime::new(self.0 + delta)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are never NaN by construction.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

/// An event queue: a time-ordered priority queue with deterministic
/// FIFO ordering among simultaneous events.
///
/// # Examples
///
/// ```
/// use noc_sim::des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::new(2.0), "second");
/// q.schedule(SimTime::new(1.0), "first");
/// q.schedule(SimTime::new(2.0), "third"); // same instant: FIFO
///
/// assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("second"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("third"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with
        // lower sequence number winning ties (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time stamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event if it is strictly before
    /// `deadline` — the idiom for draining all events belonging to the
    /// current cycle.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? < deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_orders_and_floors() {
        assert!(SimTime::new(1.0) < SimTime::new(1.5));
        assert_eq!(SimTime::new(3.7).cycle(), 3);
        assert_eq!(SimTime::ZERO.advanced(2.5).as_f64(), 2.5);
        assert_eq!(SimTime::new(4.0).to_string(), "t=4");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        for (t, tag) in [(5.0, 'e'), (1.0, 'a'), (3.0, 'c'), (2.0, 'b'), (4.0, 'd')] {
            q.schedule(SimTime::new(t), tag);
        }
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd', 'e']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::new(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(0.25), "in-cycle-0");
        q.schedule(SimTime::new(0.75), "also-cycle-0");
        q.schedule(SimTime::new(1.5), "cycle-1");
        let mut drained = Vec::new();
        while let Some((_, e)) = q.pop_before(SimTime::new(1.0)) {
            drained.push(e);
        }
        assert_eq!(drained, vec!["in-cycle-0", "also-cycle-0"]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::new(2.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(2.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
    }
}
