//! Error type for simulation construction and execution.

use core::fmt;

/// Error returned by simulation construction or execution.
#[derive(Clone, PartialEq, Debug)]
pub enum SimError {
    /// A configuration field was out of range.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The topology, routing algorithm and traffic pattern disagree on
    /// the node count.
    NodeCountMismatch {
        /// Nodes in the topology.
        topology: usize,
        /// Nodes in the traffic pattern.
        pattern: usize,
    },
    /// A trace entry targets a node outside the topology.
    InvalidTrace {
        /// Human-readable reason.
        reason: String,
    },
    /// The deadlock watchdog fired: flits were in flight but none moved
    /// for the configured number of cycles.
    Stalled {
        /// Cycle at which the stall was declared.
        cycle: u64,
        /// Number of flits stuck in the network.
        flits_in_flight: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::NodeCountMismatch { topology, pattern } => write!(
                f,
                "traffic pattern covers {pattern} nodes but topology has {topology}"
            ),
            SimError::InvalidTrace { reason } => write!(f, "invalid trace: {reason}"),
            SimError::Stalled {
                cycle,
                flits_in_flight,
            } => write!(
                f,
                "network stalled at cycle {cycle} with {flits_in_flight} flits in flight (deadlock?)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::Stalled {
            cycle: 100,
            flits_in_flight: 12,
        };
        assert!(e.to_string().contains("cycle 100"));
        assert!(e.to_string().contains("12 flits"));
        let e = SimError::NodeCountMismatch {
            topology: 8,
            pattern: 9,
        };
        assert!(e.to_string().contains('8') && e.to_string().contains('9'));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
