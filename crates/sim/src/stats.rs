//! Statistics collection: throughput, latency, utilization, backlog.
//!
//! The paper's performance indexes are NoC **throughput** (flits per
//! cycle absorbed by destinations) and **latency** (packet creation to
//! delivery), as functions of the injection rate, topology and node
//! count. This module also records the auxiliary quantities needed to
//! interpret them: acceptance ratio, source backlog (the saturation
//! signal), link utilization and per-packet hop counts (Figure 5).

use core::fmt;
use noc_topology::{Direction, NodeId};

/// Histogram-backed summary of packet latencies in cycles.
///
/// Latencies up to [`LatencyStats::HISTOGRAM_BINS`]` - 1` cycles are
/// binned exactly; larger values share the overflow bin (percentiles
/// then saturate, min/max/mean stay exact).
///
/// # Examples
///
/// ```
/// use noc_sim::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for latency in [10, 20, 30, 40, 50] {
///     stats.record(latency);
/// }
/// assert_eq!(stats.count(), 5);
/// assert_eq!(stats.min(), Some(10));
/// assert_eq!(stats.max(), Some(50));
/// assert!((stats.mean().unwrap() - 30.0).abs() < 1e-12);
/// assert_eq!(stats.percentile(50.0), Some(30));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    bins: Vec<u64>,
}

impl LatencyStats {
    /// Number of exact histogram bins.
    pub const HISTOGRAM_BINS: usize = 4096;

    /// Creates an empty summary.
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            bins: vec![0; Self::HISTOGRAM_BINS],
        }
    }

    /// Records one latency sample in cycles.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let bin = (latency as usize).min(Self::HISTOGRAM_BINS - 1);
        self.bins[bin] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean latency, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `p`-th percentile (0 < p <= 100) from the histogram, `None`
    /// if empty. Values beyond the last bin saturate to the bin edge.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `(0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.count == 0 {
            return None;
        }
        let threshold = (p / 100.0 * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (value, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= threshold {
                return Some(value as u64);
            }
        }
        Some((Self::HISTOGRAM_BINS - 1) as u64)
    }

    /// Merges another summary into this one (used to combine
    /// replications).
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::new()
    }
}

// Hand-written serialization with a *sparse* histogram: at realistic
// sample counts the dense 4096-bin vector is overwhelmingly zeros, so
// the wire format carries only the non-zero bins as `[index, count]`
// pairs. Scalar counters keep their dense meaning; a round trip is
// exact. (This keeps serialized `SimStats` — e.g. records in
// `noc_core`'s experiment cache — roughly an order of magnitude
// smaller than the dense encoding.)
#[cfg(feature = "serde")]
impl serde::Serialize for LatencyStats {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let bins: Vec<Value> = self
            .bins
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| Value::Array(vec![(i as u64).to_value(), n.to_value()]))
            .collect();
        Value::Object(vec![
            ("count".to_owned(), self.count.to_value()),
            ("sum".to_owned(), self.sum.to_value()),
            ("min".to_owned(), self.min.to_value()),
            ("max".to_owned(), self.max.to_value()),
            ("bins".to_owned(), Value::Array(bins)),
        ])
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for LatencyStats {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::__private::{as_object, opt_field, req_field};
        use serde::{DeError, Value};
        let obj = as_object(value, "LatencyStats")?;
        let mut out = LatencyStats::new();
        out.count = req_field(obj, "LatencyStats", "count")?;
        out.sum = req_field(obj, "LatencyStats", "sum")?;
        out.min = req_field(obj, "LatencyStats", "min")?;
        out.max = req_field(obj, "LatencyStats", "max")?;
        let bins = opt_field(obj, "bins")
            .ok_or_else(|| DeError::custom("LatencyStats: missing field `bins`"))?;
        let Value::Array(pairs) = bins else {
            return Err(DeError::custom(format!(
                "LatencyStats: `bins` must be an array, got {bins}"
            )));
        };
        for pair in pairs {
            let Value::Array(pair) = pair else {
                return Err(DeError::custom(
                    "LatencyStats: each bin must be an [index, count] pair",
                ));
            };
            let [index, count] = pair.as_slice() else {
                return Err(DeError::custom(
                    "LatencyStats: each bin must be an [index, count] pair",
                ));
            };
            let index = u64::from_value(index)? as usize;
            let slot = out.bins.get_mut(index).ok_or_else(|| {
                DeError::custom(format!(
                    "LatencyStats: bin index {index} out of range (< {})",
                    Self::HISTOGRAM_BINS
                ))
            })?;
            *slot = u64::from_value(count)?;
        }
        Ok(out)
    }
}

/// Flits carried by one unidirectional link during the measurement
/// window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkLoad {
    /// Sending router.
    pub from: NodeId,
    /// Output direction of the link at the sender.
    pub direction: Direction,
    /// Flits that crossed the link during the window.
    pub flits: u64,
}

/// Mean and half-width of a normal-approximation confidence interval
/// over independent samples (e.g. per-window throughput or replicated
/// runs). Returns `(mean, half_width)`; the half-width is 0 for fewer
/// than two samples.
///
/// `z` is the standard-normal quantile: 1.96 for 95%, 2.58 for 99%.
/// For the long windows used here the batch means are approximately
/// independent and normal, the textbook output-analysis setup.
///
/// # Panics
///
/// Panics if `z` is not positive.
///
/// # Examples
///
/// ```
/// use noc_sim::confidence_interval;
///
/// let (mean, hw) = confidence_interval(&[10.0, 12.0, 11.0, 9.0], 1.96);
/// assert!((mean - 10.5).abs() < 1e-12);
/// assert!(hw > 0.0 && hw < 2.0);
/// ```
pub fn confidence_interval(samples: &[f64], z: f64) -> (f64, f64) {
    assert!(z > 0.0, "z quantile must be positive");
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, z * (var / n).sqrt())
}

/// The MSER (Marginal Standard Error Rule) truncation point of a time
/// series: the prefix length `d` to discard so that the marginal
/// standard error `s^2(d) / (n - d)` of the retained suffix is
/// minimized. The standard data-driven warmup detector of simulation
/// output analysis — run once with a long window and
/// [`crate::SimConfig::sample_interval`] enabled, feed
/// [`SimStats::throughput_samples`] here, and use the result (times the
/// interval) as the warmup for production runs.
///
/// Candidate truncations are limited to the first half of the series
/// (the usual MSER-5 guard against degenerate all-but-tail cuts).
/// Returns 0 for series shorter than 4 samples.
///
/// # Examples
///
/// ```
/// use noc_sim::mser_truncation;
///
/// // A transient of low values, then a steady state around 10.
/// let mut series = vec![0.0, 2.0, 5.0];
/// series.extend(std::iter::repeat_n(10.0, 20));
/// let cut = mser_truncation(&series);
/// assert_eq!(cut, 3); // exactly the transient prefix
/// ```
pub fn mser_truncation(samples: &[f64]) -> usize {
    let n = samples.len();
    if n < 4 {
        return 0;
    }
    let mut best = (f64::INFINITY, 0usize);
    for d in 0..=n / 2 {
        let tail = &samples[d..];
        let m = tail.len() as f64;
        let mean = tail.iter().sum::<f64>() / m;
        let sse = tail.iter().map(|v| (v - mean).powi(2)).sum::<f64>();
        let mser = sse / (m * m);
        if mser < best.0 {
            best = (mser, d);
        }
    }
    best.1
}

/// Results of one simulation run, collected over the measurement
/// window.
#[derive(Clone, PartialEq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub struct SimStats {
    /// Length of the measurement window in cycles.
    pub measured_cycles: u64,
    /// Number of nodes in the simulated network.
    pub num_nodes: usize,
    /// Number of source nodes in the traffic pattern.
    pub num_sources: usize,
    /// Packets created by sources during the window.
    pub packets_generated: u64,
    /// Flits created by sources during the window.
    pub flits_generated: u64,
    /// Flits that left source queues into the network during the
    /// window.
    pub flits_injected: u64,
    /// Packets fully consumed by sinks during the window.
    pub packets_delivered: u64,
    /// Flits consumed by sinks during the window.
    pub flits_delivered: u64,
    /// Packet latency summary (creation to tail consumption).
    pub latency: LatencyStats,
    /// Total hops travelled by the head flits of delivered packets.
    pub total_hops: u64,
    /// Flits that crossed any inter-router link during the window.
    pub link_traversals: u64,
    /// Flits waiting in source queues when the run ended.
    pub backlog_flits: u64,
    /// Largest single-source queue length (in flits) seen at any cycle
    /// end during the window.
    pub max_source_backlog: u64,
    /// Flits consumed per node during the window (destination load
    /// map; hot spots show up as spikes).
    pub per_node_delivered: Vec<u64>,
    /// Packets generated per node during the window (source load map).
    pub per_node_generated: Vec<u64>,
    /// Flits carried per unidirectional link during the window (link
    /// heat map; empty if the topology reported no links).
    pub per_link: Vec<LinkLoad>,
    /// Delivered flits per sampling window (see
    /// [`crate::SimConfig::sample_interval`]); empty when sampling is
    /// disabled.
    pub throughput_samples: Vec<f64>,
}

impl SimStats {
    /// Aggregate throughput in flits per cycle consumed by sinks.
    pub fn throughput_flits_per_cycle(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / self.measured_cycles as f64
    }

    /// Throughput normalized per node, in flits per cycle per node.
    pub fn throughput_per_node(&self) -> f64 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        self.throughput_flits_per_cycle() / self.num_nodes as f64
    }

    /// Packets delivered per cycle.
    pub fn packet_throughput(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        self.packets_delivered as f64 / self.measured_cycles as f64
    }

    /// Offered load actually generated, in flits per cycle (should track
    /// `num_sources * lambda` below saturation).
    pub fn offered_load(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        self.flits_generated as f64 / self.measured_cycles as f64
    }

    /// Fraction of generated flits the network accepted from the source
    /// queues; below 1.0 the network is saturated.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.flits_generated == 0 {
            return 1.0;
        }
        (self.flits_injected as f64 / self.flits_generated as f64).min(1.0)
    }

    /// Mean hops per delivered packet (Figure 5's simulated average
    /// network distance).
    pub fn mean_hops(&self) -> Option<f64> {
        (self.packets_delivered > 0).then(|| self.total_hops as f64 / self.packets_delivered as f64)
    }

    /// The node that consumed the most flits during the window, with
    /// its count (`None` if nothing was delivered).
    pub fn busiest_sink(&self) -> Option<(usize, u64)> {
        self.per_node_delivered
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, flits)| flits)
            .filter(|&(_, flits)| flits > 0)
    }

    /// Coefficient of variation of per-node consumed flits (0 for a
    /// perfectly balanced load, large under hot-spot traffic); `None`
    /// when nothing was delivered.
    pub fn sink_load_imbalance(&self) -> Option<f64> {
        let n = self.per_node_delivered.len();
        if n == 0 || self.flits_delivered == 0 {
            return None;
        }
        let mean = self.flits_delivered as f64 / n as f64;
        let var = self
            .per_node_delivered
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        Some(var.sqrt() / mean)
    }

    /// The most loaded link, if any flit crossed a link.
    pub fn hottest_link(&self) -> Option<LinkLoad> {
        self.per_link
            .iter()
            .copied()
            .max_by_key(|l| l.flits)
            .filter(|l| l.flits > 0)
    }

    /// Batch-means confidence interval of the throughput samples:
    /// `(mean flits/cycle, half-width)` at normal quantile `z`
    /// (1.96 for 95%). Zero half-width when sampling was disabled.
    ///
    /// # Panics
    ///
    /// Panics if `z` is not positive.
    pub fn throughput_ci(&self, z: f64) -> (f64, f64) {
        confidence_interval(&self.throughput_samples, z)
    }

    /// Mean link utilization: flits per cycle per unidirectional link,
    /// given the topology's link count.
    pub fn link_utilization(&self, num_links: usize) -> f64 {
        if self.measured_cycles == 0 || num_links == 0 {
            return 0.0;
        }
        self.link_traversals as f64 / (self.measured_cycles as f64 * num_links as f64)
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = |p: f64| {
            self.latency
                .percentile(p)
                .map_or_else(|| "-".to_owned(), |v| v.to_string())
        };
        write!(
            f,
            "throughput {:.4} flits/cycle, latency p50 {} / p95 {} / p99 {} cycles (mean {:.1}), delivered {} packets in {} cycles",
            self.throughput_flits_per_cycle(),
            pct(50.0),
            pct(95.0),
            pct(99.0),
            self.latency.mean().unwrap_or(0.0),
            self.packets_delivered,
            self.measured_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_latency_stats() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let mut s = LatencyStats::new();
        for v in 1..=100u64 {
            s.record(v);
        }
        assert_eq!(s.percentile(1.0), Some(1));
        assert_eq!(s.percentile(50.0), Some(50));
        assert_eq!(s.percentile(95.0), Some(95));
        assert_eq!(s.percentile(100.0), Some(100));
    }

    #[test]
    fn overflow_bin_saturates_percentile_but_not_mean() {
        let mut s = LatencyStats::new();
        s.record(10_000_000);
        assert_eq!(s.max(), Some(10_000_000));
        assert_eq!(s.mean(), Some(10_000_000.0));
        assert_eq!(
            s.percentile(50.0),
            Some((LatencyStats::HISTOGRAM_BINS - 1) as u64)
        );
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyStats::new();
        a.record(5);
        let mut b = LatencyStats::new();
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(25));
        assert_eq!(a.mean(), Some(15.0));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LatencyStats::new();
        a.record(7);
        let before = a.clone();
        a.merge(&LatencyStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_accumulates_saturated_overflow_bins() {
        // Both sides hold samples beyond the last exact bin; the merged
        // overflow bin must carry the combined count while the moment
        // summaries (count/sum/min/max/mean) stay exact.
        let big = LatencyStats::HISTOGRAM_BINS as u64;
        let mut a = LatencyStats::new();
        a.record(big + 10);
        a.record(big * 3);
        let mut b = LatencyStats::new();
        b.record(big + 1);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(big * 3));
        assert_eq!(
            a.mean(),
            Some((big + 10 + big * 3 + big + 1 + 2) as f64 / 4.0)
        );
        // 3 of 4 samples saturate: p50 and above clamp to the overflow
        // bin's value, p25 still resolves exactly.
        assert_eq!(a.percentile(25.0), Some(2));
        assert_eq!(a.percentile(50.0), Some(big - 1));
        assert_eq!(a.percentile(99.0), Some(big - 1));
    }

    #[test]
    fn mser_on_constant_series_truncates_nothing() {
        let series = vec![3.5; 32];
        assert_eq!(mser_truncation(&series), 0);
    }

    #[test]
    fn mser_on_monotone_series_hits_the_half_guard() {
        // A strictly increasing series never reaches steady state; the
        // marginal standard error keeps shrinking with shorter tails,
        // so the MSER-5 guard caps the cut at half the series.
        let series: Vec<f64> = (0..40).map(f64::from).collect();
        assert_eq!(mser_truncation(&series), series.len() / 2);
    }

    #[test]
    fn confidence_interval_degenerate_sample_counts() {
        // n = 0: no data at all.
        assert_eq!(confidence_interval(&[], 1.96), (0.0, 0.0));
        // n = 1: a mean exists but no spread estimate.
        assert_eq!(confidence_interval(&[42.0], 1.96), (42.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn zero_percentile_rejected() {
        let s = LatencyStats::new();
        let _ = s.percentile(0.0);
    }

    #[test]
    fn throughput_and_ratios() {
        let stats = SimStats {
            measured_cycles: 1000,
            num_nodes: 8,
            num_sources: 7,
            packets_generated: 100,
            flits_generated: 600,
            flits_injected: 540,
            packets_delivered: 80,
            flits_delivered: 480,
            total_hops: 240,
            link_traversals: 2000,
            ..SimStats::default()
        };
        assert!((stats.throughput_flits_per_cycle() - 0.48).abs() < 1e-12);
        assert!((stats.throughput_per_node() - 0.06).abs() < 1e-12);
        assert!((stats.packet_throughput() - 0.08).abs() < 1e-12);
        assert!((stats.offered_load() - 0.6).abs() < 1e-12);
        assert!((stats.acceptance_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(stats.mean_hops(), Some(3.0));
        assert!((stats.link_utilization(16) - 2000.0 / 16000.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_stats_do_not_divide_by_zero() {
        let stats = SimStats::default();
        assert_eq!(stats.throughput_flits_per_cycle(), 0.0);
        assert_eq!(stats.throughput_per_node(), 0.0);
        assert_eq!(stats.acceptance_ratio(), 1.0);
        assert_eq!(stats.mean_hops(), None);
        assert_eq!(stats.link_utilization(0), 0.0);
    }

    #[test]
    fn mser_finds_the_transient_boundary() {
        // Pure steady state: no truncation.
        let steady = vec![5.0; 30];
        assert_eq!(mser_truncation(&steady), 0);
        // Obvious warmup ramp.
        let mut series = vec![0.0, 1.0, 2.0, 3.0];
        series.extend(std::iter::repeat_n(8.0, 24));
        assert_eq!(mser_truncation(&series), 4);
        // Short series: conservative zero.
        assert_eq!(mser_truncation(&[1.0, 2.0]), 0);
        // Truncation never exceeds half the series.
        let mut late = vec![0.0; 20];
        late.extend([9.0, 9.0]);
        assert!(mser_truncation(&late) <= 11);
    }

    #[test]
    fn confidence_interval_basics() {
        assert_eq!(confidence_interval(&[], 1.96), (0.0, 0.0));
        assert_eq!(confidence_interval(&[5.0], 1.96), (5.0, 0.0));
        let (m, hw) = confidence_interval(&[1.0, 1.0, 1.0], 1.96);
        assert_eq!((m, hw), (1.0, 0.0));
        // Wider spread, wider interval.
        let (_, hw_narrow) = confidence_interval(&[10.0, 10.1, 9.9, 10.0], 1.96);
        let (_, hw_wide) = confidence_interval(&[5.0, 15.0, 2.0, 18.0], 1.96);
        assert!(hw_wide > hw_narrow);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn confidence_interval_rejects_bad_z() {
        let _ = confidence_interval(&[1.0], 0.0);
    }

    #[test]
    fn hottest_link_and_samples() {
        let stats = SimStats {
            per_link: vec![
                LinkLoad {
                    from: NodeId::new(0),
                    direction: Direction::East,
                    flits: 3,
                },
                LinkLoad {
                    from: NodeId::new(1),
                    direction: Direction::West,
                    flits: 9,
                },
            ],
            throughput_samples: vec![1.0, 2.0, 3.0],
            ..SimStats::default()
        };
        assert_eq!(stats.hottest_link().unwrap().flits, 9);
        let (m, hw) = stats.throughput_ci(1.96);
        assert!((m - 2.0).abs() < 1e-12);
        assert!(hw > 0.0);
        assert_eq!(SimStats::default().hottest_link(), None);
    }

    #[test]
    fn per_node_maps_summarize_load() {
        let stats = SimStats {
            flits_delivered: 12,
            per_node_delivered: vec![0, 12, 0, 0],
            ..SimStats::default()
        };
        assert_eq!(stats.busiest_sink(), Some((1, 12)));
        // All flits at one of four nodes: CV = sqrt(3) ~ 1.73.
        let cv = stats.sink_load_imbalance().unwrap();
        assert!((cv - 3f64.sqrt()).abs() < 1e-12);
        let balanced = SimStats {
            flits_delivered: 12,
            per_node_delivered: vec![3, 3, 3, 3],
            ..SimStats::default()
        };
        assert_eq!(balanced.sink_load_imbalance(), Some(0.0));
        assert_eq!(SimStats::default().busiest_sink(), None);
        assert_eq!(SimStats::default().sink_load_imbalance(), None);
    }

    #[test]
    fn display_reports_percentiles() {
        let rendered = SimStats::default().to_string();
        assert!(rendered.contains("p50") && rendered.contains("p95") && rendered.contains("p99"));
        let mut s = SimStats {
            measured_cycles: 10,
            ..Default::default()
        };
        for v in 1..=100u64 {
            s.latency.record(v);
        }
        let rendered = s.to_string();
        assert!(rendered.contains("p50 50 / p95 95 / p99 99"), "{rendered}");
    }

    #[test]
    #[cfg(feature = "serde")]
    fn latency_stats_sparse_serialization_round_trips_exactly() {
        let mut lat = LatencyStats::new();
        for v in [0u64, 1, 7, 7, 4095, 10_000] {
            lat.record(v);
        }
        let json = serde_json::to_string(&lat).unwrap();
        // Sparse: only the non-zero bins appear on the wire.
        assert!(json.contains("[0,1]") && json.contains("[7,2]"), "{json}");
        assert!(json.contains("[4095,2]"), "overflow bin shared: {json}");
        assert!(!json.contains("[2,0]"), "zero bins omitted: {json}");
        let back: LatencyStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, lat);
        // Empty summary (min = u64::MAX sentinel) survives too.
        let empty = LatencyStats::new();
        let back: LatencyStats =
            serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    #[cfg(feature = "serde")]
    fn latency_stats_deserialize_rejects_malformed_bins() {
        let base = r#"{"count":1,"sum":1,"min":1,"max":1,"bins":BINS}"#;
        for (bins, what) in [
            ("[[4096,1]]", "out-of-range index"),
            ("[[1]]", "short pair"),
            ("[[1,2,3]]", "long pair"),
            ("[7]", "non-pair element"),
            ("7", "non-array bins"),
        ] {
            let json = base.replace("BINS", bins);
            assert!(
                serde_json::from_str::<LatencyStats>(&json).is_err(),
                "{what} must be rejected: {json}"
            );
        }
        assert!(
            serde_json::from_str::<LatencyStats>(r#"{"count":1,"sum":1,"min":1,"max":1}"#).is_err(),
            "missing bins must be rejected"
        );
    }

    #[test]
    #[cfg(feature = "serde")]
    fn sim_stats_json_round_trip_is_bit_exact() {
        // The experiment cache persists serialized run results; a
        // round trip must reproduce every field bit-for-bit, floats
        // included (the vendored serde_json re-parses f64 exactly).
        let mut stats = SimStats {
            measured_cycles: 1000,
            flits_injected: 123,
            flits_delivered: 120,
            packets_delivered: 20,
            throughput_samples: vec![0.1, 0.2 + 0.1, f64::MIN_POSITIVE, 1.0 / 3.0],
            per_node_delivered: vec![5, 5, 10],
            ..SimStats::default()
        };
        for v in [3u64, 9, 9, 400] {
            stats.latency.record(v);
        }
        let json = serde_json::to_string(&stats).unwrap();
        let back: SimStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        // Idempotent: serializing the round-tripped value is
        // byte-identical.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
