//! Observability probes: flit-lifecycle tracing, windowed time-series
//! and per-packet latency decomposition.
//!
//! The simulator hot path is instrumented through the sealed [`Probe`]
//! trait. [`Simulation`](crate::Simulation) is generic over its probe
//! (`Simulation<P: Probe = NullProbe>`), so the default build
//! monomorphizes every hook into an empty inlined call — the unprobed
//! simulator pays nothing (guarded by the `probe_guard` overhead
//! benchmark in the bench crate). Attaching a [`Recorder`] via
//! [`Simulation::with_probe`](crate::Simulation::with_probe) captures:
//!
//! * **flit-lifecycle events** — generate, inject, per-hop buffer
//!   enter/exit, link traverse, deliver — with cycle stamps,
//!   exportable as JSONL ([`Recorder::to_jsonl`]);
//! * **windowed time-series** — injection/acceptance rate, in-network
//!   occupancy, link utilization and peak buffer depth per window
//!   ([`Recorder::timeseries_csv`]), so warmup transients and
//!   saturation onset are visible instead of averaged away;
//! * **latency decomposition** — each delivered packet's latency split
//!   exactly into source-queuing, router-blocking and transfer
//!   components ([`Recorder::breakdown`], [`Recorder::packet_timings`]).
//!
//! A probe only *observes*: it receives copies of the data the
//! simulator is moving and never touches the RNG, the statistics or
//! any buffer, so a recorded run produces bit-identical
//! [`SimStats`](crate::SimStats) to an unrecorded one with the same
//! seed (asserted in `tests/probe.rs`). Because a run is
//! seed-deterministic, recorder exports are byte-identical regardless
//! of how many worker threads the surrounding experiment engine uses.
//!
//! # Latency decomposition
//!
//! For a packet created at cycle `g`, whose tail flit is injected
//! (leaves the source queue) at cycle `i` and consumed at cycle `c`
//! after `h` link crossings, with router pipeline delay `d`:
//!
//! * `source_queuing = i - g` — time spent waiting in the NI source
//!   queue;
//! * `transfer = h * (1 + d) + 1` — the contention-free minimum for the
//!   remaining path: each hop costs one link cycle plus `d` pipeline
//!   cycles, and the final sink consumption costs one more cycle;
//! * `router_blocking = (c - g) - source_queuing - transfer` — every
//!   cycle lost to switch contention, busy links and backpressure.
//!
//! The components sum to the end-to-end latency `c - g` *exactly*, and
//! `router_blocking` is provably non-negative: the earliest possible
//! tail consumption after injection is `i + h*(1+d) + 1` (first link
//! crossing no earlier than `i + 1`, each later hop at least `1 + d`
//! cycles after the previous one, final ejection `d + 1` cycles after
//! the last crossing).

use crate::audit::BufferClass;
use crate::stats::LatencyStats;
use crate::Flit;
use crate::PacketId;
use core::fmt::Write as _;
use noc_topology::{Direction, NodeId};
use std::collections::HashMap;

/// Seals [`Probe`]: the simulator's hook contract is an internal
/// interface, implemented only by [`NullProbe`] and [`Recorder`].
mod sealed {
    pub trait Sealed {}
    impl Sealed for super::NullProbe {}
    impl Sealed for super::Recorder {}
}

/// Static description of the assembled network, handed to a probe once
/// before the first cycle ([`Probe::on_attach`]).
#[derive(Clone, Debug, Default)]
pub struct NetworkShape {
    /// Number of routers.
    pub num_nodes: usize,
    /// Virtual channels per link.
    pub vcs: usize,
    /// Flits per packet.
    pub packet_len: usize,
    /// Router pipeline delay in cycles (see `SimConfig::router_delay`).
    pub router_delay: u64,
    /// Cycles of warmup before measurement starts.
    pub warmup_cycles: u64,
    /// Ejection channels per node (`SimConfig::sink_rate`).
    pub sink_channels: usize,
    /// Link directions per node, in the simulator's canonical port
    /// order (`dirs[node][port]`).
    pub dirs: Vec<Vec<Direction>>,
    /// Per node and port: (peer node, peer input-port index).
    pub peer: Vec<Vec<(usize, usize)>>,
}

impl NetworkShape {
    /// Total number of unidirectional links.
    pub fn num_links(&self) -> usize {
        self.dirs.iter().map(Vec::len).sum()
    }
}

/// Simulator observation hooks, called from the cycle phases.
///
/// All hooks default to empty `#[inline]` bodies so the
/// [`NullProbe`]-instantiated simulator compiles them away. Hooks
/// receive plain copies of event data (never the simulation itself):
/// a probe can record, but cannot perturb.
///
/// This trait is sealed; outside this crate it can be named and used
/// as a bound but not implemented.
pub trait Probe: sealed::Sealed + core::fmt::Debug {
    /// `true` for probes that record events ([`Recorder`]), `false` for
    /// [`NullProbe`]. The simulator uses this monomorphization-time
    /// constant to skip materializing event payloads on the hot path
    /// and to disable the sparse core's empty-network fast-forward,
    /// which would elide the per-cycle [`on_cycle_end`](Probe::on_cycle_end)
    /// calls a recording probe's time-series depends on.
    const ACTIVE: bool;

    /// Called once at assembly with the network's static description.
    #[inline]
    fn on_attach(&mut self, shape: NetworkShape) {
        let _ = shape;
    }

    /// A packet of `len` flits was created at `src` and appended to its
    /// source queue (phase 1).
    #[inline]
    fn on_generate(&mut self, cycle: u64, packet: PacketId, src: NodeId, dst: NodeId, len: usize) {
        let _ = (cycle, packet, src, dst, len);
    }

    /// A flit left the source queue of `node` into output queue
    /// `(out_port, out_vc)` (phase 4; the injection port is never the
    /// ejection port).
    #[inline]
    fn on_inject(&mut self, cycle: u64, node: usize, out_port: usize, out_vc: usize, flit: &Flit) {
        let _ = (cycle, node, out_port, out_vc, flit);
    }

    /// A flit left input buffer `(in_port, in_vc)` of `node` through
    /// the crossbar into output queue `(out_port, out_vc)`, or into
    /// ejection channel `out_vc` when `out_port` is `None` (phase 4).
    #[expect(
        clippy::too_many_arguments,
        reason = "the hook mirrors the crossbar's full (in, out) coordinates"
    )]
    #[inline]
    fn on_buffer_exit(
        &mut self,
        cycle: u64,
        node: usize,
        in_port: usize,
        in_vc: usize,
        out_port: Option<usize>,
        out_vc: usize,
        flit: &Flit,
    ) {
        let _ = (cycle, node, in_port, in_vc, out_port, out_vc, flit);
    }

    /// A flit crossed the link out of `(from, port)` on `vc` into the
    /// downstream input buffer (phase 3). `flit.hops` already counts
    /// this crossing; the receiving side follows from
    /// [`NetworkShape::peer`].
    #[inline]
    fn on_link_traverse(&mut self, cycle: u64, from: usize, port: usize, vc: usize, flit: &Flit) {
        let _ = (cycle, from, port, vc, flit);
    }

    /// The sink at `node` consumed a flit from ejection channel
    /// `channel` (phase 2). Tail flits complete their packet.
    #[inline]
    fn on_consume(&mut self, cycle: u64, node: usize, channel: usize, flit: &Flit) {
        let _ = (cycle, node, channel, flit);
    }

    /// All phases of `cycle` have run.
    #[inline]
    fn on_cycle_end(&mut self, cycle: u64) {
        let _ = cycle;
    }
}

/// The do-nothing probe: the default `Simulation` type parameter.
///
/// Every hook keeps its empty trait default, so after monomorphization
/// the unprobed simulator contains no probe code at all.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ACTIVE: bool = false;
}

/// One recorded flit-lifecycle event.
///
/// Events carry raw indices (not [`NodeId`]) plus cycle stamps; the
/// JSONL rendering ([`Recorder::to_jsonl`]) is integer-only and
/// therefore byte-deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// Packet creation at its source NI (phase 1).
    Generate {
        /// Cycle stamp.
        cycle: u64,
        /// Raw packet id.
        packet: u64,
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
        /// Packet length in flits.
        len: usize,
    },
    /// Flit moved from source queue to an output queue (phase 4).
    Inject {
        /// Cycle stamp.
        cycle: u64,
        /// Injecting node.
        node: usize,
        /// Output port claimed.
        port: usize,
        /// Output VC claimed.
        vc: usize,
        /// Raw packet id.
        packet: u64,
        /// Flit kind.
        kind: crate::FlitKind,
    },
    /// Flit moved from an input buffer through the crossbar (phase 4).
    BufferExit {
        /// Cycle stamp.
        cycle: u64,
        /// Router where the move happened.
        node: usize,
        /// Input port the flit left.
        in_port: usize,
        /// Input VC the flit left.
        in_vc: usize,
        /// Output port entered; `None` = ejection channel `out_vc`.
        out_port: Option<usize>,
        /// Output VC (or ejection channel) entered.
        out_vc: usize,
        /// Raw packet id.
        packet: u64,
        /// Flit kind.
        kind: crate::FlitKind,
    },
    /// Flit crossed a link into the downstream input buffer (phase 3).
    LinkTraverse {
        /// Cycle stamp.
        cycle: u64,
        /// Upstream node.
        from: usize,
        /// Upstream output port.
        port: usize,
        /// Virtual channel used.
        vc: usize,
        /// Downstream node.
        to: usize,
        /// Downstream input port.
        to_port: usize,
        /// Raw packet id.
        packet: u64,
        /// Flit kind.
        kind: crate::FlitKind,
        /// Link crossings including this one.
        hops: u64,
    },
    /// Sink consumed a flit (phase 2).
    Deliver {
        /// Cycle stamp.
        cycle: u64,
        /// Consuming node.
        node: usize,
        /// Ejection channel drained.
        channel: usize,
        /// Raw packet id.
        packet: u64,
        /// Flit kind.
        kind: crate::FlitKind,
    },
    /// Tail consumption completed a packet: end-to-end latency and its
    /// exact decomposition.
    PacketDelivered {
        /// Cycle stamp (tail consumption).
        cycle: u64,
        /// Raw packet id.
        packet: u64,
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
        /// Link crossings per flit.
        hops: u64,
        /// End-to-end latency in cycles.
        latency: u64,
        /// Cycles the tail waited in the source queue.
        source_queuing: u64,
        /// Cycles lost to contention inside the network.
        router_blocking: u64,
        /// Contention-free transfer cycles (`hops * (1 + router_delay) + 1`).
        transfer: u64,
    },
}

impl TraceEvent {
    /// The event's cycle stamp.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Generate { cycle, .. }
            | TraceEvent::Inject { cycle, .. }
            | TraceEvent::BufferExit { cycle, .. }
            | TraceEvent::LinkTraverse { cycle, .. }
            | TraceEvent::Deliver { cycle, .. }
            | TraceEvent::PacketDelivered { cycle, .. } => cycle,
        }
    }

    /// Appends the event as one JSON object line (no trailing newline).
    fn write_jsonl(&self, out: &mut String) {
        let kind_str = |k: crate::FlitKind| match k {
            crate::FlitKind::Head => "H",
            crate::FlitKind::Body => "B",
            crate::FlitKind::Tail => "T",
            crate::FlitKind::HeadTail => "HT",
        };
        // All values are integers or fixed ASCII tags, so the output is
        // byte-deterministic with no float formatting involved.
        match *self {
            TraceEvent::Generate {
                cycle,
                packet,
                src,
                dst,
                len,
            } => {
                let _ = write!(
                    out,
                    r#"{{"event":"generate","cycle":{cycle},"packet":{packet},"src":{src},"dst":{dst},"len":{len}}}"#
                );
            }
            TraceEvent::Inject {
                cycle,
                node,
                port,
                vc,
                packet,
                kind,
            } => {
                let _ = write!(
                    out,
                    r#"{{"event":"inject","cycle":{cycle},"node":{node},"port":{port},"vc":{vc},"packet":{packet},"kind":"{}"}}"#,
                    kind_str(kind)
                );
            }
            TraceEvent::BufferExit {
                cycle,
                node,
                in_port,
                in_vc,
                out_port,
                out_vc,
                packet,
                kind,
            } => {
                let _ = match out_port {
                    Some(p) => write!(
                        out,
                        r#"{{"event":"buffer_exit","cycle":{cycle},"node":{node},"in_port":{in_port},"in_vc":{in_vc},"out_port":{p},"out_vc":{out_vc},"packet":{packet},"kind":"{}"}}"#,
                        kind_str(kind)
                    ),
                    None => write!(
                        out,
                        r#"{{"event":"buffer_exit","cycle":{cycle},"node":{node},"in_port":{in_port},"in_vc":{in_vc},"eject_channel":{out_vc},"packet":{packet},"kind":"{}"}}"#,
                        kind_str(kind)
                    ),
                };
            }
            TraceEvent::LinkTraverse {
                cycle,
                from,
                port,
                vc,
                to,
                to_port,
                packet,
                kind,
                hops,
            } => {
                let _ = write!(
                    out,
                    r#"{{"event":"link_traverse","cycle":{cycle},"from":{from},"port":{port},"vc":{vc},"to":{to},"to_port":{to_port},"packet":{packet},"kind":"{}","hops":{hops}}}"#,
                    kind_str(kind)
                );
            }
            TraceEvent::Deliver {
                cycle,
                node,
                channel,
                packet,
                kind,
            } => {
                let _ = write!(
                    out,
                    r#"{{"event":"deliver","cycle":{cycle},"node":{node},"channel":{channel},"packet":{packet},"kind":"{}"}}"#,
                    kind_str(kind)
                );
            }
            TraceEvent::PacketDelivered {
                cycle,
                packet,
                src,
                dst,
                hops,
                latency,
                source_queuing,
                router_blocking,
                transfer,
            } => {
                let _ = write!(
                    out,
                    r#"{{"event":"packet_delivered","cycle":{cycle},"packet":{packet},"src":{src},"dst":{dst},"hops":{hops},"latency":{latency},"source_queuing":{source_queuing},"router_blocking":{router_blocking},"transfer":{transfer}}}"#
                );
            }
        }
    }
}

/// One completed packet's timing record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PacketTiming {
    /// Raw packet id.
    pub packet: u64,
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Creation cycle.
    pub created: u64,
    /// Tail-consumption cycle.
    pub delivered: u64,
    /// Link crossings per flit.
    pub hops: u64,
    /// Source-queuing component (cycles).
    pub source_queuing: u64,
    /// Router-blocking component (cycles).
    pub router_blocking: u64,
    /// Contention-free transfer component (cycles).
    pub transfer: u64,
}

impl PacketTiming {
    /// End-to-end latency; always equals the sum of the three
    /// components.
    pub fn latency(&self) -> u64 {
        self.delivered - self.created
    }
}

/// Per-component latency histograms over all delivered packets.
#[derive(Clone, PartialEq, Default, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyBreakdown {
    /// Source-queuing component.
    pub source_queuing: LatencyStats,
    /// Router-blocking component.
    pub router_blocking: LatencyStats,
    /// Transfer component.
    pub transfer: LatencyStats,
    /// End-to-end latency (sum of the three components per packet).
    pub total: LatencyStats,
}

/// One window of the recorded time-series. All fields are raw integer
/// counts; rates are derived at export time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowSample {
    /// First cycle of the window.
    pub start: u64,
    /// Cycles covered (shorter than the window length only for the
    /// final partial window).
    pub cycles: u64,
    /// Flits created by sources during the window.
    pub generated_flits: u64,
    /// Flits injected (source queue → router) during the window.
    pub injected_flits: u64,
    /// Flits consumed by sinks during the window.
    pub delivered_flits: u64,
    /// Packets completed (tail consumed) during the window.
    pub delivered_packets: u64,
    /// Link crossings during the window.
    pub link_traversals: u64,
    /// Flits inside routers at the end of the window.
    pub occupancy_end: u64,
    /// Largest router-buffer depth (input, output or ejection) observed
    /// during the window.
    pub peak_buffer_depth: usize,
}

/// Peak occupancy of one buffer over the whole recorded run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufferPeak {
    /// Which buffer class (source / input / output / ejection).
    pub class: BufferClass,
    /// Node the buffer belongs to.
    pub node: usize,
    /// Port index (0 for source queues; ejection channel for ejection
    /// queues).
    pub port: usize,
    /// Virtual channel (0 for source and ejection queues).
    pub vc: usize,
    /// Maximum flits observed in the buffer.
    pub peak: usize,
}

/// Counters accumulated inside the currently open window.
#[derive(Clone, Copy, Default, Debug)]
struct WindowAccum {
    generated_flits: u64,
    injected_flits: u64,
    delivered_flits: u64,
    delivered_packets: u64,
    link_traversals: u64,
    peak_buffer_depth: usize,
}

/// Per-buffer depth counters with running peaks, indexed like the
/// simulator's buffer arrays.
#[derive(Clone, Default, Debug)]
struct DepthTracker {
    /// `[node][port][vc]` current depth.
    input: Vec<Vec<Vec<usize>>>,
    /// `[node][port][vc]` current depth.
    output: Vec<Vec<Vec<usize>>>,
    /// `[node][channel]` current depth.
    eject: Vec<Vec<usize>>,
    /// `[node]` current source-queue depth.
    source: Vec<usize>,
    input_peak: Vec<Vec<Vec<usize>>>,
    output_peak: Vec<Vec<Vec<usize>>>,
    eject_peak: Vec<Vec<usize>>,
    source_peak: Vec<usize>,
}

impl DepthTracker {
    fn for_shape(shape: &NetworkShape) -> Self {
        let per_node: Vec<Vec<Vec<usize>>> = shape
            .dirs
            .iter()
            .map(|dirs| vec![vec![0; shape.vcs]; dirs.len()])
            .collect();
        let eject = vec![vec![0; shape.sink_channels]; shape.num_nodes];
        DepthTracker {
            input: per_node.clone(),
            output: per_node.clone(),
            eject: eject.clone(),
            source: vec![0; shape.num_nodes],
            input_peak: per_node.clone(),
            output_peak: per_node,
            eject_peak: eject,
            source_peak: vec![0; shape.num_nodes],
        }
    }
}

/// The recording probe: captures lifecycle events, time-series windows,
/// buffer peaks and the per-packet latency decomposition.
///
/// Construct with [`Recorder::new`] (100-cycle windows) or
/// [`Recorder::with_window`], pass to
/// [`Simulation::with_probe`](crate::Simulation::with_probe), run, then
/// read the captured data back (e.g. via
/// [`Simulation::into_probe`](crate::Simulation::into_probe)).
#[derive(Clone, Debug)]
pub struct Recorder {
    shape: NetworkShape,
    window: u64,
    events: Vec<TraceEvent>,
    /// Tail-flit injection cycle per in-flight packet (raw id), removed
    /// at tail consumption. Access is keyed only — iteration order
    /// never matters, so the map cannot perturb determinism.
    tail_injected: HashMap<u64, u64>,
    timings: Vec<PacketTiming>,
    breakdown: LatencyBreakdown,
    windows: Vec<WindowSample>,
    current: WindowAccum,
    window_start: u64,
    cycles_in_window: u64,
    observed_cycles: u64,
    /// Flits currently inside routers (injected − consumed).
    occupancy: u64,
    /// Link crossings per `[node][port]` over the whole run.
    link_flits: Vec<Vec<u64>>,
    depths: DepthTracker,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Default time-series window length in cycles.
    pub const DEFAULT_WINDOW: u64 = 100;

    /// A recorder with the default window length.
    pub fn new() -> Self {
        Recorder::with_window(Self::DEFAULT_WINDOW)
    }

    /// A recorder sampling time-series every `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_window(window: u64) -> Self {
        assert!(window > 0, "time-series window must be positive");
        Recorder {
            shape: NetworkShape::default(),
            window,
            events: Vec::new(),
            tail_injected: HashMap::new(),
            timings: Vec::new(),
            breakdown: LatencyBreakdown::default(),
            windows: Vec::new(),
            current: WindowAccum::default(),
            window_start: 0,
            cycles_in_window: 0,
            observed_cycles: 0,
            occupancy: 0,
            link_flits: Vec::new(),
            depths: DepthTracker::default(),
        }
    }

    /// The network description captured at attach time.
    pub fn shape(&self) -> &NetworkShape {
        &self.shape
    }

    /// All recorded events, in simulation order (cycle-major, then
    /// phase order: deliveries, link traversals, injections/crossbar
    /// moves — packet generation stamps lead each cycle).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Timing records of all completed packets, in delivery order.
    pub fn packet_timings(&self) -> &[PacketTiming] {
        &self.timings
    }

    /// Latency-component histograms over all completed packets.
    pub fn breakdown(&self) -> &LatencyBreakdown {
        &self.breakdown
    }

    /// Completed time-series windows (the still-open partial window is
    /// appended by [`timeseries_csv`](Self::timeseries_csv) only).
    pub fn windows(&self) -> &[WindowSample] {
        &self.windows
    }

    /// Cycles observed so far ([`Probe::on_cycle_end`] count).
    pub fn observed_cycles(&self) -> u64 {
        self.observed_cycles
    }

    /// Link crossings per `[node][port]` over the whole run.
    pub fn link_flits(&self) -> &[Vec<u64>] {
        &self.link_flits
    }

    /// Peak depth of every buffer over the run, in a fixed scan order
    /// (source, then per node: inputs, outputs, ejections).
    pub fn buffer_peaks(&self) -> Vec<BufferPeak> {
        let mut peaks = Vec::new();
        for (v, &peak) in self.depths.source_peak.iter().enumerate() {
            peaks.push(BufferPeak {
                class: BufferClass::Source,
                node: v,
                port: 0,
                vc: 0,
                peak,
            });
        }
        for (v, ports) in self.depths.input_peak.iter().enumerate() {
            for (p, vcs) in ports.iter().enumerate() {
                for (vc, &peak) in vcs.iter().enumerate() {
                    peaks.push(BufferPeak {
                        class: BufferClass::Input,
                        node: v,
                        port: p,
                        vc,
                        peak,
                    });
                }
            }
        }
        for (v, ports) in self.depths.output_peak.iter().enumerate() {
            for (p, vcs) in ports.iter().enumerate() {
                for (vc, &peak) in vcs.iter().enumerate() {
                    peaks.push(BufferPeak {
                        class: BufferClass::Output,
                        node: v,
                        port: p,
                        vc,
                        peak,
                    });
                }
            }
        }
        for (v, channels) in self.depths.eject_peak.iter().enumerate() {
            for (q, &peak) in channels.iter().enumerate() {
                peaks.push(BufferPeak {
                    class: BufferClass::Ejection,
                    node: v,
                    port: q,
                    vc: 0,
                    peak,
                });
            }
        }
        peaks
    }

    /// Renders all events as JSON Lines: one object per event, every
    /// object carrying `"event"` and `"cycle"` keys. Integer-only
    /// values make the output byte-deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for ev in &self.events {
            ev.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// Renders the time-series as CSV, one row per window (including
    /// the final partial window, if any). Derived-rate columns are
    /// computed from the integer counts with fixed 6-decimal
    /// formatting, keeping the bytes deterministic.
    pub fn timeseries_csv(&self) -> String {
        let mut out = String::from(
            "start,cycles,generated_flits,injected_flits,delivered_flits,\
             delivered_packets,link_traversals,injection_rate,acceptance_rate,\
             occupancy,link_utilization,peak_buffer_depth\n",
        );
        let links = self.shape.num_links().max(1) as f64;
        let mut write_row = |w: &WindowSample| {
            let cycles = w.cycles.max(1) as f64;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{:.6},{:.6},{},{:.6},{}",
                w.start,
                w.cycles,
                w.generated_flits,
                w.injected_flits,
                w.delivered_flits,
                w.delivered_packets,
                w.link_traversals,
                w.injected_flits as f64 / cycles,
                w.delivered_flits as f64 / cycles,
                w.occupancy_end,
                w.link_traversals as f64 / (links * cycles),
                w.peak_buffer_depth,
            );
        };
        for w in &self.windows {
            write_row(w);
        }
        if self.cycles_in_window > 0 {
            write_row(&self.sample_from(self.current, self.cycles_in_window));
        }
        out
    }

    /// Renders whole-run per-link load as CSV
    /// (`node,direction,flits,utilization`), one row per unidirectional
    /// link in canonical port order. Utilization is flits per observed
    /// cycle (warmup included).
    pub fn links_csv(&self) -> String {
        let mut out = String::from("node,direction,flits,utilization\n");
        let cycles = self.observed_cycles.max(1) as f64;
        for (v, ports) in self.link_flits.iter().enumerate() {
            for (p, &flits) in ports.iter().enumerate() {
                let dir = self.shape.dirs[v][p];
                let _ = writeln!(out, "{v},{dir},{flits},{:.6}", flits as f64 / cycles);
            }
        }
        out
    }

    /// A 64-bit FNV-1a digest over the three exports (JSONL,
    /// time-series CSV, links CSV). Two runs with identical recorded
    /// behaviour produce identical digests, regardless of worker-thread
    /// count in the surrounding experiment engine.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for part in [self.to_jsonl(), self.timeseries_csv(), self.links_csv()] {
            for byte in part.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(PRIME);
            }
        }
        hash
    }

    fn sample_from(&self, acc: WindowAccum, cycles: u64) -> WindowSample {
        WindowSample {
            start: self.window_start,
            cycles,
            generated_flits: acc.generated_flits,
            injected_flits: acc.injected_flits,
            delivered_flits: acc.delivered_flits,
            delivered_packets: acc.delivered_packets,
            link_traversals: acc.link_traversals,
            occupancy_end: self.occupancy,
            peak_buffer_depth: acc.peak_buffer_depth,
        }
    }

    /// Folds a router-side depth update into the window peak.
    fn note_depth(&mut self, depth: usize) {
        if depth > self.current.peak_buffer_depth {
            self.current.peak_buffer_depth = depth;
        }
    }
}

impl Probe for Recorder {
    const ACTIVE: bool = true;

    fn on_attach(&mut self, shape: NetworkShape) {
        self.link_flits = shape.dirs.iter().map(|dirs| vec![0; dirs.len()]).collect();
        self.depths = DepthTracker::for_shape(&shape);
        self.shape = shape;
    }

    fn on_generate(&mut self, cycle: u64, packet: PacketId, src: NodeId, dst: NodeId, len: usize) {
        self.events.push(TraceEvent::Generate {
            cycle,
            packet: packet.raw(),
            src: src.index(),
            dst: dst.index(),
            len,
        });
        self.current.generated_flits += len as u64;
        let d = &mut self.depths.source[src.index()];
        *d += len;
        let d = *d;
        let peak = &mut self.depths.source_peak[src.index()];
        if d > *peak {
            *peak = d;
        }
    }

    fn on_inject(&mut self, cycle: u64, node: usize, out_port: usize, out_vc: usize, flit: &Flit) {
        self.events.push(TraceEvent::Inject {
            cycle,
            node,
            port: out_port,
            vc: out_vc,
            packet: flit.packet.raw(),
            kind: flit.kind,
        });
        self.current.injected_flits += 1;
        self.occupancy += 1;
        self.depths.source[node] -= 1;
        if flit.kind.is_tail() {
            self.tail_injected.insert(flit.packet.raw(), cycle);
        }
        let d = &mut self.depths.output[node][out_port][out_vc];
        *d += 1;
        let d = *d;
        let peak = &mut self.depths.output_peak[node][out_port][out_vc];
        if d > *peak {
            *peak = d;
        }
        self.note_depth(d);
    }

    fn on_buffer_exit(
        &mut self,
        cycle: u64,
        node: usize,
        in_port: usize,
        in_vc: usize,
        out_port: Option<usize>,
        out_vc: usize,
        flit: &Flit,
    ) {
        self.events.push(TraceEvent::BufferExit {
            cycle,
            node,
            in_port,
            in_vc,
            out_port,
            out_vc,
            packet: flit.packet.raw(),
            kind: flit.kind,
        });
        self.depths.input[node][in_port][in_vc] -= 1;
        let d = match out_port {
            Some(p) => {
                let d = &mut self.depths.output[node][p][out_vc];
                *d += 1;
                let d = *d;
                let peak = &mut self.depths.output_peak[node][p][out_vc];
                if d > *peak {
                    *peak = d;
                }
                d
            }
            None => {
                let d = &mut self.depths.eject[node][out_vc];
                *d += 1;
                let d = *d;
                let peak = &mut self.depths.eject_peak[node][out_vc];
                if d > *peak {
                    *peak = d;
                }
                d
            }
        };
        self.note_depth(d);
    }

    fn on_link_traverse(&mut self, cycle: u64, from: usize, port: usize, vc: usize, flit: &Flit) {
        let (to, to_port) = self.shape.peer[from][port];
        self.events.push(TraceEvent::LinkTraverse {
            cycle,
            from,
            port,
            vc,
            to,
            to_port,
            packet: flit.packet.raw(),
            kind: flit.kind,
            hops: flit.hops,
        });
        self.current.link_traversals += 1;
        self.link_flits[from][port] += 1;
        self.depths.output[from][port][vc] -= 1;
        let d = &mut self.depths.input[to][to_port][vc];
        *d += 1;
        let d = *d;
        let peak = &mut self.depths.input_peak[to][to_port][vc];
        if d > *peak {
            *peak = d;
        }
        self.note_depth(d);
    }

    fn on_consume(&mut self, cycle: u64, node: usize, channel: usize, flit: &Flit) {
        self.events.push(TraceEvent::Deliver {
            cycle,
            node,
            channel,
            packet: flit.packet.raw(),
            kind: flit.kind,
        });
        self.current.delivered_flits += 1;
        self.occupancy -= 1;
        self.depths.eject[node][channel] -= 1;
        if flit.kind.is_tail() {
            self.current.delivered_packets += 1;
            let total = cycle - flit.created;
            // The tail is always injected before it can be consumed, so
            // the lookup hits; fall back to the creation cycle (zero
            // queuing) rather than panicking inside the hot loop.
            let injected = self
                .tail_injected
                .remove(&flit.packet.raw())
                .unwrap_or(flit.created);
            let source_queuing = injected - flit.created;
            let transfer = flit.hops * (1 + self.shape.router_delay) + 1;
            // Non-negative by the timing argument in the module docs;
            // `expect` (not saturation) keeps the decomposition honest:
            // components must sum to the total exactly.
            let router_blocking = (total - source_queuing)
                .checked_sub(transfer)
                .expect("transfer component exceeded post-injection latency");
            self.breakdown.source_queuing.record(source_queuing);
            self.breakdown.router_blocking.record(router_blocking);
            self.breakdown.transfer.record(transfer);
            self.breakdown.total.record(total);
            self.timings.push(PacketTiming {
                packet: flit.packet.raw(),
                src: flit.src.index(),
                dst: flit.dst.index(),
                created: flit.created,
                delivered: cycle,
                hops: flit.hops,
                source_queuing,
                router_blocking,
                transfer,
            });
            self.events.push(TraceEvent::PacketDelivered {
                cycle,
                packet: flit.packet.raw(),
                src: flit.src.index(),
                dst: flit.dst.index(),
                hops: flit.hops,
                latency: total,
                source_queuing,
                router_blocking,
                transfer,
            });
        }
    }

    fn on_cycle_end(&mut self, _cycle: u64) {
        self.observed_cycles += 1;
        self.cycles_in_window += 1;
        if self.cycles_in_window == self.window {
            let sample = self.sample_from(self.current, self.cycles_in_window);
            self.windows.push(sample);
            self.window_start += self.window;
            self.cycles_in_window = 0;
            self.current = WindowAccum::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlitKind;

    fn two_node_shape() -> NetworkShape {
        NetworkShape {
            num_nodes: 2,
            vcs: 1,
            packet_len: 2,
            router_delay: 0,
            warmup_cycles: 0,
            sink_channels: 1,
            dirs: vec![
                vec![Direction::Clockwise],
                vec![Direction::CounterClockwise],
            ],
            peer: vec![vec![(1, 0)], vec![(0, 0)]],
        }
    }

    fn flit(kind: FlitKind, hops: u64) -> Flit {
        Flit {
            packet: PacketId::new(0),
            kind,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            created: 0,
            hops,
        }
    }

    /// Walks one 2-flit packet through a minimal 2-node network and
    /// checks events, decomposition, windows and depth peaks.
    #[test]
    fn recorder_tracks_minimal_packet() {
        let mut rec = Recorder::with_window(4);
        rec.on_attach(two_node_shape());
        assert_eq!(rec.shape().num_links(), 2);

        rec.on_generate(0, PacketId::new(0), NodeId::new(0), NodeId::new(1), 2);
        // Cycle 0: head injected; cycle 1: head crosses, tail injected.
        rec.on_inject(0, 0, 0, 0, &flit(FlitKind::Head, 0));
        rec.on_cycle_end(0);
        rec.on_link_traverse(1, 0, 0, 0, &flit(FlitKind::Head, 1));
        rec.on_inject(1, 0, 0, 0, &flit(FlitKind::Tail, 0));
        rec.on_cycle_end(1);
        // Cycle 2: head exits input into ejection, tail crosses.
        rec.on_buffer_exit(2, 1, 0, 0, None, 0, &flit(FlitKind::Head, 1));
        rec.on_link_traverse(2, 0, 0, 0, &flit(FlitKind::Tail, 1));
        rec.on_cycle_end(2);
        // Cycle 3: head consumed, tail exits into ejection.
        rec.on_consume(3, 1, 0, &flit(FlitKind::Head, 1));
        rec.on_buffer_exit(3, 1, 0, 0, None, 0, &flit(FlitKind::Tail, 1));
        rec.on_cycle_end(3);
        // Cycle 4: tail consumed -> packet completes.
        rec.on_consume(4, 1, 0, &flit(FlitKind::Tail, 1));
        rec.on_cycle_end(4);

        let t = rec.packet_timings();
        assert_eq!(t.len(), 1);
        // Tail injected at 1 -> queuing 1; 1 hop, d=0 -> transfer 2;
        // delivered at 4 -> total 4, blocking 1.
        assert_eq!(t[0].source_queuing, 1);
        assert_eq!(t[0].transfer, 2);
        assert_eq!(t[0].router_blocking, 1);
        assert_eq!(
            t[0].source_queuing + t[0].router_blocking + t[0].transfer,
            t[0].latency()
        );
        assert_eq!(rec.breakdown().total.count(), 1);
        assert_eq!(rec.observed_cycles(), 5);
        assert_eq!(rec.occupancy, 0);

        // One full window (cycles 0..4) plus a partial one in progress.
        assert_eq!(rec.windows().len(), 1);
        let w = rec.windows()[0];
        assert_eq!(
            (w.generated_flits, w.injected_flits, w.delivered_flits),
            (2, 2, 1)
        );
        assert_eq!(w.delivered_packets, 0);
        assert_eq!(w.link_traversals, 2);
        assert_eq!(w.peak_buffer_depth, 1);

        // Every buffer is empty again; peaks reflect transit.
        let peaks = rec.buffer_peaks();
        assert!(peaks
            .iter()
            .any(|p| p.class == BufferClass::Source && p.node == 0 && p.peak == 2));
        assert!(peaks
            .iter()
            .any(|p| p.class == BufferClass::Ejection && p.node == 1 && p.peak == 1));
    }

    #[test]
    fn jsonl_lines_carry_event_and_cycle() {
        let mut rec = Recorder::new();
        rec.on_attach(two_node_shape());
        rec.on_generate(7, PacketId::new(3), NodeId::new(0), NodeId::new(1), 6);
        rec.on_inject(8, 0, 0, 0, &flit(FlitKind::Head, 0));
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"event":"generate","cycle":7,"packet":3,"src":0,"dst":1,"len":6}"#
        );
        assert_eq!(
            lines[1],
            r#"{"event":"inject","cycle":8,"node":0,"port":0,"vc":0,"packet":0,"kind":"H"}"#
        );
        assert_eq!(rec.events()[0].cycle(), 7);
    }

    #[test]
    fn csv_exports_have_stable_headers() {
        let rec = Recorder::new();
        assert!(rec
            .timeseries_csv()
            .starts_with("start,cycles,generated_flits"));
        assert!(rec
            .links_csv()
            .starts_with("node,direction,flits,utilization"));
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let build = |n: u64| {
            let mut rec = Recorder::new();
            rec.on_attach(two_node_shape());
            for c in 0..n {
                rec.on_generate(c, PacketId::new(c), NodeId::new(0), NodeId::new(1), 2);
                rec.on_cycle_end(c);
            }
            rec
        };
        assert_eq!(build(5).digest(), build(5).digest());
        assert_ne!(build(5).digest(), build(6).digest());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = Recorder::with_window(0);
    }

    #[test]
    fn null_probe_is_trivially_callable() {
        let mut p = NullProbe;
        p.on_attach(NetworkShape::default());
        p.on_generate(0, PacketId::new(0), NodeId::new(0), NodeId::new(1), 6);
        p.on_cycle_end(0);
    }
}
