//! Simulation configuration.

use crate::SimError;
use noc_traffic::InjectionProcess;

/// Configuration of one simulation run.
///
/// Defaults mirror the paper's setup: 6-flit packets, 1-flit input
/// buffers, 3-flit output buffers, sink consumption of one flit per
/// cycle, Poisson injection.
///
/// Build with [`SimConfig::builder`]:
///
/// ```
/// use noc_sim::SimConfig;
///
/// let cfg = SimConfig::builder()
///     .injection_rate(0.2)
///     .warmup_cycles(1_000)
///     .measure_cycles(10_000)
///     .seed(7)
///     .build()?;
/// assert_eq!(cfg.packet_len, 6);
/// assert_eq!(cfg.output_buffer_capacity, 3);
/// # Ok::<(), noc_sim::SimError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
// Missing fields in serialized configs (e.g. specs written before a
// field existed) fall back to the paper defaults.
#[cfg_attr(feature = "serde", serde(default))]
#[non_exhaustive]
pub struct SimConfig {
    /// Packet length in flits (paper: 6).
    pub packet_len: usize,
    /// Per-source injection rate lambda in flits per cycle (paper's
    /// x-axis).
    pub injection_rate: f64,
    /// Stochastic process for packet creation times.
    pub injection_process: InjectionProcess,
    /// Capacity of each input (one per port and VC) buffer in flits
    /// (paper: 1).
    pub input_buffer_capacity: usize,
    /// Capacity of each output VC queue in flits (paper: 3).
    pub output_buffer_capacity: usize,
    /// Flits the sink consumes from the ejection queue per cycle
    /// (paper: packets leave through the IP memory in FIFO order; 1
    /// flit/cycle makes the destination the hot-spot bottleneck).
    pub sink_rate: usize,
    /// Cycles to run before statistics collection starts.
    pub warmup_cycles: u64,
    /// Cycles of the measurement window.
    pub measure_cycles: u64,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Abort with [`SimError::Stalled`] if no flit moves for this many
    /// consecutive cycles while flits are in flight (deadlock watchdog).
    pub stall_threshold: u64,
    /// Record a [`crate::Delivery`] for every packet consumed during
    /// the measurement window (off by default; the log grows with the
    /// packet count).
    pub record_deliveries: bool,
    /// Sampling window (cycles) for the throughput time series used by
    /// [`crate::SimStats::throughput_ci`]; 0 disables sampling.
    pub sample_interval: u64,
    /// Router pipeline depth in cycles: a flit arriving in an input
    /// buffer becomes eligible for switch allocation this many cycles
    /// later (0 = the paper's single-stage router; 2-3 models the
    /// classic RC/VA/SA/ST pipelines). With the paper's one-flit input
    /// buffers there is no stage overlap, so per-link bandwidth drops
    /// to `1/(1 + router_delay)` flits/cycle and zero-load latency
    /// scales by about `1 + router_delay`; deepen
    /// [`input_buffer_capacity`](Self::input_buffer_capacity) to model
    /// overlapped pipelines.
    pub router_delay: u64,
    /// Attach the runtime invariant auditor ([`crate::audit`]): flit
    /// conservation, buffer bounds, wormhole ordering, route legality
    /// and deadlock diagnosis are checked while the simulation runs,
    /// with findings collected in a [`crate::AuditReport`]. Auditing
    /// never changes simulation behaviour — an audited run produces
    /// bit-identical statistics to an unaudited run of the same seed.
    pub audit: bool,
    /// Cycle stride of the auditor's whole-network sweep (conservation
    /// and buffer checks): 1 audits every cycle, larger values trade
    /// coverage for speed. Per-flit checks (route legality, wormhole
    /// ordering) always run on every event. Ignored unless
    /// [`audit`](Self::audit) is set.
    pub audit_interval: u64,
    /// Sparse activity tracking (on by default): each cycle the
    /// simulator visits only routers holding flits, with idle stretches
    /// of the whole network fast-forwarded to the next scheduled
    /// arrival. Sparse and dense stepping are bit-identical — disabling
    /// this exists for the differential conformance harness and for
    /// perf comparison, not for correctness.
    pub sparse: bool,
    /// Use a precomputed [`noc_routing::CompiledRoutes`] next-hop table
    /// (on by default) instead of re-evaluating the routing function per
    /// blocked head flit. Falls back to the dynamic algorithm
    /// automatically when the algorithm is adaptive; disabling this
    /// forces the dynamic path everywhere (differential testing).
    pub compiled_routes: bool,
}

impl SimConfig {
    /// Starts building a configuration from the paper's defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }

    /// Average packets per cycle each source generates under this
    /// configuration.
    pub fn packets_per_cycle(&self) -> f64 {
        self.injection_rate / self.packet_len as f64
    }

    /// Total simulated cycles (warmup plus measurement).
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfigBuilder::new()
            .build()
            .expect("default configuration is valid")
    }
}

/// Builder for [`SimConfig`] (see there for field semantics).
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Creates a builder initialized with the paper's defaults.
    pub fn new() -> Self {
        SimConfigBuilder {
            config: SimConfig {
                packet_len: 6,
                injection_rate: 0.1,
                injection_process: InjectionProcess::Poisson,
                input_buffer_capacity: 1,
                output_buffer_capacity: 3,
                sink_rate: 1,
                warmup_cycles: 1_000,
                measure_cycles: 10_000,
                seed: 0xBAD5EED,
                stall_threshold: 50_000,
                record_deliveries: false,
                sample_interval: 0,
                router_delay: 0,
                audit: false,
                audit_interval: 1,
                sparse: true,
                compiled_routes: true,
            },
        }
    }

    /// Sets the packet length in flits.
    pub fn packet_len(&mut self, flits: usize) -> &mut Self {
        self.config.packet_len = flits;
        self
    }

    /// Sets the per-source injection rate in flits/cycle.
    pub fn injection_rate(&mut self, lambda: f64) -> &mut Self {
        self.config.injection_rate = lambda;
        self
    }

    /// Sets the injection process.
    pub fn injection_process(&mut self, process: InjectionProcess) -> &mut Self {
        self.config.injection_process = process;
        self
    }

    /// Sets the input buffer capacity in flits.
    pub fn input_buffer_capacity(&mut self, flits: usize) -> &mut Self {
        self.config.input_buffer_capacity = flits;
        self
    }

    /// Sets the output VC queue capacity in flits.
    pub fn output_buffer_capacity(&mut self, flits: usize) -> &mut Self {
        self.config.output_buffer_capacity = flits;
        self
    }

    /// Sets the sink consumption rate in flits/cycle.
    pub fn sink_rate(&mut self, flits_per_cycle: usize) -> &mut Self {
        self.config.sink_rate = flits_per_cycle;
        self
    }

    /// Sets the warmup window length.
    pub fn warmup_cycles(&mut self, cycles: u64) -> &mut Self {
        self.config.warmup_cycles = cycles;
        self
    }

    /// Sets the measurement window length.
    pub fn measure_cycles(&mut self, cycles: u64) -> &mut Self {
        self.config.measure_cycles = cycles;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Sets the deadlock watchdog threshold.
    pub fn stall_threshold(&mut self, cycles: u64) -> &mut Self {
        self.config.stall_threshold = cycles;
        self
    }

    /// Enables or disables the per-packet delivery log.
    pub fn record_deliveries(&mut self, enabled: bool) -> &mut Self {
        self.config.record_deliveries = enabled;
        self
    }

    /// Sets the throughput sampling window in cycles (0 disables).
    pub fn sample_interval(&mut self, cycles: u64) -> &mut Self {
        self.config.sample_interval = cycles;
        self
    }

    /// Sets the router pipeline depth in cycles.
    pub fn router_delay(&mut self, cycles: u64) -> &mut Self {
        self.config.router_delay = cycles;
        self
    }

    /// Enables or disables the runtime invariant auditor.
    pub fn audit(&mut self, enabled: bool) -> &mut Self {
        self.config.audit = enabled;
        self
    }

    /// Sets the cycle stride of the auditor's whole-network sweep.
    pub fn audit_interval(&mut self, cycles: u64) -> &mut Self {
        self.config.audit_interval = cycles;
        self
    }

    /// Enables or disables sparse activity tracking (idle-router
    /// skipping and empty-network fast-forward).
    pub fn sparse(&mut self, enabled: bool) -> &mut Self {
        self.config.sparse = enabled;
        self
    }

    /// Enables or disables the precomputed next-hop table.
    pub fn compiled_routes(&mut self, enabled: bool) -> &mut Self {
        self.config.compiled_routes = enabled;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any field is out of range
    /// (zero packet length or buffer capacities, negative or non-finite
    /// injection rate, empty measurement window, zero stall threshold).
    pub fn build(&self) -> Result<SimConfig, SimError> {
        let c = &self.config;
        let reason = if c.packet_len == 0 {
            Some("packet_len must be positive")
        } else if !c.injection_rate.is_finite() || c.injection_rate < 0.0 {
            Some("injection_rate must be finite and non-negative")
        } else if c.input_buffer_capacity == 0 {
            Some("input_buffer_capacity must be positive")
        } else if c.output_buffer_capacity == 0 {
            Some("output_buffer_capacity must be positive")
        } else if c.sink_rate == 0 {
            Some("sink_rate must be positive")
        } else if c.measure_cycles == 0 {
            Some("measure_cycles must be positive")
        } else if c.stall_threshold == 0 {
            Some("stall_threshold must be positive")
        } else if c.audit_interval == 0 {
            Some("audit_interval must be positive")
        } else {
            None
        };
        match reason {
            Some(reason) => Err(SimError::InvalidConfig {
                reason: reason.to_owned(),
            }),
            None => Ok(self.config.clone()),
        }
    }
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.packet_len, 6);
        assert_eq!(cfg.input_buffer_capacity, 1);
        assert_eq!(cfg.output_buffer_capacity, 3);
        assert_eq!(cfg.sink_rate, 1);
        assert_eq!(cfg.injection_process, InjectionProcess::Poisson);
    }

    #[test]
    fn builder_chains() {
        let cfg = SimConfig::builder()
            .packet_len(4)
            .injection_rate(0.5)
            .sink_rate(2)
            .warmup_cycles(10)
            .measure_cycles(20)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(cfg.packet_len, 4);
        assert_eq!(cfg.total_cycles(), 30);
        assert_eq!(cfg.seed, 99);
        assert!((cfg.packets_per_cycle() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(SimConfig::builder().packet_len(0).build().is_err());
        assert!(SimConfig::builder().injection_rate(-0.1).build().is_err());
        assert!(SimConfig::builder()
            .injection_rate(f64::NAN)
            .build()
            .is_err());
        assert!(SimConfig::builder()
            .input_buffer_capacity(0)
            .build()
            .is_err());
        assert!(SimConfig::builder()
            .output_buffer_capacity(0)
            .build()
            .is_err());
        assert!(SimConfig::builder().sink_rate(0).build().is_err());
        assert!(SimConfig::builder().measure_cycles(0).build().is_err());
        assert!(SimConfig::builder().stall_threshold(0).build().is_err());
        assert!(SimConfig::builder().audit_interval(0).build().is_err());
    }

    #[test]
    fn audit_fields_build_and_default_off() {
        let cfg = SimConfig::default();
        assert!(!cfg.audit);
        assert_eq!(cfg.audit_interval, 1);
        let cfg = SimConfig::builder()
            .audit(true)
            .audit_interval(16)
            .build()
            .unwrap();
        assert!(cfg.audit);
        assert_eq!(cfg.audit_interval, 16);
    }

    #[test]
    fn partial_json_configs_fill_defaults() {
        // Specs written before a field existed must still parse.
        let cfg: SimConfig =
            serde_json::from_str(r#"{"injection_rate": 0.25, "seed": 9}"#).unwrap();
        assert_eq!(cfg.injection_rate, 0.25);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.packet_len, 6);
        assert_eq!(cfg.sample_interval, 0);
        assert!(!cfg.record_deliveries);
        assert!(cfg.sparse, "old specs get the sparse core");
        assert!(cfg.compiled_routes);
    }

    #[test]
    fn sparse_and_compiled_routes_default_on_and_toggle() {
        let cfg = SimConfig::default();
        assert!(cfg.sparse);
        assert!(cfg.compiled_routes);
        let cfg = SimConfig::builder()
            .sparse(false)
            .compiled_routes(false)
            .build()
            .unwrap();
        assert!(!cfg.sparse);
        assert!(!cfg.compiled_routes);
    }

    #[test]
    fn zero_rate_is_valid_silence() {
        let cfg = SimConfig::builder().injection_rate(0.0).build().unwrap();
        assert_eq!(cfg.packets_per_cycle(), 0.0);
    }
}
