//! Router buffers: per-VC output queues with wormhole ownership, and
//! one-flit input slots.
//!
//! The paper's node model (Figure 4): "Incoming links have a one-flit
//! buffer, while outgoing links have a pair of output buffers (used both
//! for virtual channel management and deadlock avoidance) in Ring and
//! Spidergon topologies, and one single buffer in Mesh topologies. All
//! output buffers may contain up to three flits."
//!
//! Buffers store the compact [`ArenaFlit`] handle; per-packet constants
//! (source, destination, id, creation cycle) live in the simulation's
//! [`crate::PacketArena`] and are materialized only at the
//! observability seams.

use crate::flit::{ArenaFlit, PacketRef};
use std::collections::VecDeque;

/// A bounded output queue for one virtual channel of one output port.
///
/// Wormhole switching forbids interleaving flits of different packets
/// within a VC: the queue is *owned* by a packet from the moment its
/// head flit enters until its tail flit enters. While owned, only flits
/// of the owning packet may be pushed.
///
/// # Examples
///
/// ```
/// use noc_sim::{FlitKind, OutputQueue, PacketArena, PacketId};
/// use noc_topology::NodeId;
///
/// let mut arena = PacketArena::new();
/// let pkt = arena.alloc(PacketId::new(0), NodeId::new(0), NodeId::new(1), 0);
/// let mut q = OutputQueue::new(3);
/// let head = arena.flit(pkt, FlitKind::Head);
/// assert!(q.can_accept(&head));
/// q.push(head);
/// // Mid-packet, another packet's head is rejected.
/// let other = arena.alloc(PacketId::new(1), NodeId::new(2), NodeId::new(1), 0);
/// assert!(!q.can_accept(&arena.flit(other, FlitKind::Head)));
/// ```
#[derive(Clone, Debug)]
pub struct OutputQueue {
    flits: VecDeque<ArenaFlit>,
    capacity: usize,
    owner: Option<PacketRef>,
}

impl OutputQueue {
    /// Creates an empty queue holding at most `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "output buffers must hold at least one flit");
        OutputQueue {
            flits: VecDeque::with_capacity(capacity),
            capacity,
            owner: None,
        }
    }

    /// Maximum number of flits the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of flits currently queued.
    pub fn len(&self) -> usize {
        self.flits.len()
    }

    /// Returns `true` if no flits are queued.
    pub fn is_empty(&self) -> bool {
        self.flits.is_empty()
    }

    /// The packet currently owning the queue tail for enqueueing, if
    /// any.
    pub fn owner(&self) -> Option<PacketRef> {
        self.owner
    }

    /// Returns `true` if `flit` may be pushed now: there is space, and
    /// either the queue is unowned and `flit` is a head, or it is owned
    /// by `flit`'s packet.
    pub fn can_accept(&self, flit: &ArenaFlit) -> bool {
        if self.flits.len() >= self.capacity {
            return false;
        }
        match self.owner {
            None => flit.kind.is_head(),
            Some(owner) => owner == flit.pkt && !flit.kind.is_head(),
        }
    }

    /// Pushes a flit, updating ownership (head claims, tail releases).
    ///
    /// # Panics
    ///
    /// Panics if [`can_accept`](Self::can_accept) is false for `flit` —
    /// callers must check first; pushing blindly indicates a switch
    /// allocation bug.
    pub fn push(&mut self, flit: ArenaFlit) {
        assert!(
            self.can_accept(&flit),
            "queue cannot accept {flit:?} (owner {:?}, len {})",
            self.owner,
            self.flits.len()
        );
        if flit.kind.is_head() {
            self.owner = Some(flit.pkt);
        }
        if flit.kind.is_tail() {
            self.owner = None;
        }
        self.flits.push_back(flit);
    }

    /// The flit at the queue head (next to traverse the link), if any.
    pub fn front(&self) -> Option<&ArenaFlit> {
        self.flits.front()
    }

    /// Removes and returns the queue-head flit.
    pub fn pop(&mut self) -> Option<ArenaFlit> {
        self.flits.pop_front()
    }

    /// Iterator over queued flits, head first.
    pub fn iter(&self) -> impl Iterator<Item = &ArenaFlit> {
        self.flits.iter()
    }
}

/// The input buffer of one virtual channel of one input port (one flit
/// deep in the paper's node model, deeper for buffer-sizing ablations),
/// together with the wormhole switching state for the packet currently
/// traversing it.
#[derive(Clone, Debug)]
pub struct InputBuffer {
    /// Buffered flits with the cycle from which each may leave (the
    /// router pipeline delay counted from arrival).
    flits: VecDeque<(ArenaFlit, u64)>,
    capacity: usize,
    /// Wormhole allocation for the in-flight packet: output port index
    /// and VC selected by the head flit, followed by body/tail flits.
    pub route: Option<SlotRoute>,
}

/// Allocation held by an input buffer for the packet currently in
/// flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlotRoute {
    /// Index into the node's output-port table (the ejection port uses
    /// a sentinel index chosen by the router).
    pub out_port: usize,
    /// Virtual channel on the output port.
    pub out_vc: usize,
    /// Packet the allocation belongs to (guards against stale state).
    pub packet: PacketRef,
}

impl InputBuffer {
    /// Creates an empty input buffer holding at most `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "input buffers must hold at least one flit");
        InputBuffer {
            flits: VecDeque::with_capacity(capacity),
            capacity,
            route: None,
        }
    }

    /// Returns `true` if the buffer can receive a flit from the link —
    /// the paper's signal-based flow control.
    pub fn has_space(&self) -> bool {
        self.flits.len() < self.capacity
    }

    /// Maximum number of flits the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterator over buffered flits, oldest first, regardless of
    /// whether they have cleared the router pipeline yet.
    pub fn iter(&self) -> impl Iterator<Item = &ArenaFlit> {
        self.flits.iter().map(|(flit, _)| flit)
    }

    /// Number of buffered flits.
    pub fn len(&self) -> usize {
        self.flits.len()
    }

    /// Returns `true` if no flit is buffered.
    pub fn is_empty(&self) -> bool {
        self.flits.is_empty()
    }

    /// Stores an arriving flit that becomes eligible for switch
    /// allocation at cycle `eligible_at` (arrival cycle plus the router
    /// pipeline delay).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — the sender must check
    /// [`has_space`](Self::has_space) first.
    pub fn receive(&mut self, flit: ArenaFlit, eligible_at: u64) {
        assert!(self.has_space(), "input buffer overrun by {flit:?}");
        self.flits.push_back((flit, eligible_at));
    }

    /// The oldest buffered flit if it has cleared the router pipeline
    /// by cycle `now`.
    pub fn front_ready(&self, now: u64) -> Option<&ArenaFlit> {
        self.flits
            .front()
            .filter(|&&(_, at)| at <= now)
            .map(|(f, _)| f)
    }

    /// Removes and returns the oldest buffered flit if ready at `now`.
    pub fn take_ready(&mut self, now: u64) -> Option<ArenaFlit> {
        if self.front_ready(now).is_some() {
            self.flits.pop_front().map(|(f, _)| f)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlitKind, PacketArena, PacketId};
    use noc_topology::NodeId;

    /// Flit sequence of one `len`-flit packet, allocated in `arena`.
    fn packet(arena: &mut PacketArena, id: u64, len: usize) -> Vec<ArenaFlit> {
        let pkt = arena.alloc(PacketId::new(id), NodeId::new(0), NodeId::new(1), 0);
        (0..len)
            .map(|i| {
                let kind = match (i, len) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (i, l) if i + 1 == l => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                arena.flit(pkt, kind)
            })
            .collect()
    }

    #[test]
    fn capacity_is_enforced() {
        let mut arena = PacketArena::new();
        let mut q = OutputQueue::new(3);
        let flits = packet(&mut arena, 0, 6);
        q.push(flits[0]);
        q.push(flits[1]);
        q.push(flits[2]);
        assert!(!q.can_accept(&flits[3]));
        assert_eq!(q.len(), 3);
        q.pop();
        assert!(q.can_accept(&flits[3]));
    }

    #[test]
    fn ownership_lifecycle() {
        let mut arena = PacketArena::new();
        let mut q = OutputQueue::new(8);
        let a = packet(&mut arena, 0, 3);
        let b = packet(&mut arena, 1, 3);
        q.push(a[0]);
        assert_eq!(q.owner(), Some(a[0].pkt));
        assert!(!q.can_accept(&b[0]), "foreign head rejected mid-packet");
        q.push(a[1]);
        q.push(a[2]); // tail releases
        assert_eq!(q.owner(), None);
        assert!(q.can_accept(&b[0]), "new head accepted after tail");
        q.push(b[0]);
        assert_eq!(q.owner(), Some(b[0].pkt));
    }

    #[test]
    fn body_without_head_rejected() {
        let mut arena = PacketArena::new();
        let q = OutputQueue::new(3);
        let a = packet(&mut arena, 0, 3);
        assert!(!q.can_accept(&a[1]), "body flit needs an owning head");
    }

    #[test]
    fn single_flit_packet_claims_and_releases_at_once() {
        let mut arena = PacketArena::new();
        let mut q = OutputQueue::new(3);
        let a = packet(&mut arena, 0, 1);
        q.push(a[0]);
        assert_eq!(q.owner(), None);
        let b = packet(&mut arena, 1, 1);
        assert!(q.can_accept(&b[0]));
    }

    #[test]
    fn fifo_order_preserved() {
        let mut arena = PacketArena::new();
        let mut q = OutputQueue::new(6);
        let a = packet(&mut arena, 0, 3);
        for f in &a {
            q.push(*f);
        }
        assert_eq!(q.front().unwrap().kind, a[0].kind);
        let drained: Vec<ArenaFlit> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, a);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot accept")]
    fn blind_push_panics() {
        let mut arena = PacketArena::new();
        let mut q = OutputQueue::new(1);
        let a = packet(&mut arena, 0, 3);
        q.push(a[0]);
        q.push(a[1]); // full
    }

    #[test]
    fn input_buffer_flow_control() {
        let mut arena = PacketArena::new();
        let mut buf = InputBuffer::new(1);
        assert!(buf.has_space());
        assert!(buf.is_empty());
        let a = packet(&mut arena, 0, 2);
        buf.receive(a[0], 0);
        assert!(!buf.has_space());
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.front_ready(0), Some(&a[0]));
        assert_eq!(buf.take_ready(0), Some(a[0]));
        assert!(buf.has_space());
        assert_eq!(buf.take_ready(0), None);
    }

    #[test]
    fn pipeline_delay_gates_eligibility() {
        let mut arena = PacketArena::new();
        let mut buf = InputBuffer::new(1);
        let a = packet(&mut arena, 0, 2);
        buf.receive(a[0], 5);
        assert_eq!(buf.front_ready(4), None, "not yet through the pipeline");
        assert_eq!(buf.take_ready(4), None);
        assert_eq!(buf.len(), 1, "flit still occupies the buffer");
        assert_eq!(buf.front_ready(5), Some(&a[0]));
        assert_eq!(buf.take_ready(5), Some(a[0]));
    }

    #[test]
    fn deep_input_buffer_is_fifo() {
        let mut arena = PacketArena::new();
        let mut buf = InputBuffer::new(3);
        let a = packet(&mut arena, 0, 3);
        for f in &a {
            buf.receive(*f, 0);
        }
        assert!(!buf.has_space());
        let drained: Vec<ArenaFlit> = std::iter::from_fn(|| buf.take_ready(0)).collect();
        assert_eq!(drained, a);
    }

    #[test]
    #[should_panic(expected = "overrun")]
    fn input_buffer_overrun_panics() {
        let mut arena = PacketArena::new();
        let mut buf = InputBuffer::new(1);
        let a = packet(&mut arena, 0, 2);
        buf.receive(a[0], 0);
        buf.receive(a[1], 0);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_capacity_input_buffer_rejected() {
        let _ = InputBuffer::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_capacity_rejected() {
        let _ = OutputQueue::new(0);
    }

    #[test]
    fn iter_matches_order() {
        let mut arena = PacketArena::new();
        let mut q = OutputQueue::new(4);
        let a = packet(&mut arena, 0, 3);
        for f in &a {
            q.push(*f);
        }
        let kinds: Vec<_> = q.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, a.iter().map(|f| f.kind).collect::<Vec<_>>());
    }
}
