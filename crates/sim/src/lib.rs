//! Flit-level wormhole NoC simulator for the DATE 2006 Ring / Spidergon
//! / 2D-Mesh study.
//!
//! This crate is the substitute for the paper's OMNeT++ models: a
//! discrete-event kernel ([`des`]) plus a cycle-level wormhole network
//! model ([`Simulation`]) that replicates the paper's node architecture
//! (Figure 4) — one-flit input buffers, three-flit output queues, a pair
//! of virtual channels on ring-like links, Poisson packet sources of
//! constant 6-flit packets, and FIFO sinks consuming one flit per cycle.
//!
//! # Quick start
//!
//! ```
//! use noc_routing::RingShortestPath;
//! use noc_sim::{SimConfig, Simulation};
//! use noc_topology::Ring;
//! use noc_traffic::UniformRandom;
//!
//! let ring = Ring::new(8)?;
//! let routing = RingShortestPath::new(&ring);
//! let traffic = UniformRandom::new(8)?;
//! let config = SimConfig::builder()
//!     .injection_rate(0.1) // flits/cycle per source (the paper's lambda)
//!     .warmup_cycles(500)
//!     .measure_cycles(5_000)
//!     .build()?;
//!
//! let mut sim = Simulation::new(Box::new(ring), Box::new(routing), Box::new(traffic), config)?;
//! let stats = sim.run()?;
//! println!(
//!     "throughput {:.3} flits/cycle, mean latency {:.1} cycles",
//!     stats.throughput_flits_per_cycle(),
//!     stats.latency.mean().unwrap_or(f64::NAN),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Audit and error paths must report structured failures
// (`AuditViolation`, `SimError`), never panic through `unwrap` —
// enforced crate-wide outside tests (CI runs clippy with `-D
// warnings`, so a violation fails the build).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

/// This crate's version, folded into `noc_core`'s cache fingerprints
/// so cached results never survive an engine change.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

pub mod audit;
mod buffer;
mod config;
pub mod des;
mod error;
mod flit;
mod network;
pub mod probe;
mod stats;

pub use audit::{AuditReport, AuditViolation, BufferClass, BufferRef, Invariant, StallDiagnosis};
pub use buffer::{InputBuffer, OutputQueue, SlotRoute};
pub use config::{SimConfig, SimConfigBuilder};
pub use error::SimError;
pub use flit::{ArenaFlit, Flit, FlitKind, PacketArena, PacketId, PacketRef};
pub use network::{Delivery, Occupancy, Simulation};
pub use probe::{
    BufferPeak, LatencyBreakdown, NetworkShape, NullProbe, PacketTiming, Probe, Recorder,
    TraceEvent, WindowSample,
};
pub use stats::{confidence_interval, mser_truncation, LatencyStats, LinkLoad, SimStats};
