//! Flits and packets: the paper's data units.
//!
//! "In packet-based NoC communication each packet is split into data
//! units called flits. The buffer queues for channels are defined as
//! multiples of the flit data unit." Packets are constant-size (6 flits
//! in the paper's simulations); the head flit is actively routed and
//! the rest follow its wormhole path.

use core::fmt;
use noc_topology::NodeId;

/// Unique identifier of a packet within one simulation run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet identifier from a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// The raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FlitKind {
    /// First flit: carries routing information, opens the wormhole path.
    Head,
    /// Middle flit: passively switched along the established path.
    Body,
    /// Last flit: closes the path, releases allocations.
    Tail,
    /// A complete single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Returns `true` for flits that open a path (head or head-tail).
    pub const fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Returns `true` for flits that close a path (tail or head-tail).
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control digit travelling through the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Source node of the packet.
    pub src: NodeId,
    /// Destination node of the packet.
    pub dst: NodeId,
    /// Cycle at which the packet was created at its source.
    pub created: u64,
    /// Link crossings this flit has made so far. Under wormhole
    /// switching every flit of a packet traverses the same links, so
    /// the tail's counter at consumption equals the head's hop count —
    /// which is why the simulator needs no per-packet hop table.
    pub hops: u64,
}

impl Flit {
    /// Builds the flit sequence of one packet: `Head`, `len - 2` times
    /// `Body`, `Tail` (or a single `HeadTail` for `len == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `src == dst`.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_sim::{Flit, FlitKind, PacketId};
    /// use noc_topology::NodeId;
    ///
    /// let flits = Flit::packet(PacketId::new(0), NodeId::new(1), NodeId::new(2), 6, 100);
    /// assert_eq!(flits.len(), 6);
    /// assert_eq!(flits[0].kind, FlitKind::Head);
    /// assert!(flits[1..5].iter().all(|f| f.kind == FlitKind::Body));
    /// assert_eq!(flits[5].kind, FlitKind::Tail);
    /// ```
    pub fn packet(
        packet: PacketId,
        src: NodeId,
        dst: NodeId,
        len: usize,
        created: u64,
    ) -> Vec<Flit> {
        assert!(len > 0, "packets must contain at least one flit");
        assert_ne!(src, dst, "packet source must differ from destination");
        let template = Flit {
            packet,
            kind: FlitKind::Body,
            src,
            dst,
            created,
            hops: 0,
        };
        (0..len)
            .map(|i| {
                let kind = match (i, len) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (i, l) if i + 1 == l => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                Flit { kind, ..template }
            })
            .collect()
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            FlitKind::Head => "H",
            FlitKind::Body => "B",
            FlitKind::Tail => "T",
            FlitKind::HeadTail => "HT",
        };
        write!(f, "{}{}[{}->{}]", self.packet, k, self.src, self.dst)
    }
}

/// Generational handle to a packet slot in a [`PacketArena`].
///
/// The generation counter detects stale handles: a slot reused for a new
/// packet increments its generation, so a leftover reference to the old
/// packet can no longer resolve.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PacketRef {
    index: u32,
    generation: u32,
}

/// The in-network representation of a flit: a 12-byte handle instead of
/// the 48-byte [`Flit`] record.
///
/// Per-packet constants (source, destination, id, creation cycle) live
/// once in the [`PacketArena`]; each travelling flit carries only its
/// packet handle, its position in the packet and its own hop counter.
/// [`PacketArena::materialize`] reconstructs the full [`Flit`] view for
/// observability seams (probes, audit, stats) that want the flat record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArenaFlit {
    /// Handle of the packet this flit belongs to.
    pub pkt: PacketRef,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Link crossings this flit has made so far.
    pub hops: u32,
}

/// Slab allocator for in-flight packet descriptors, SoA layout.
///
/// One slot per live packet; slots are recycled through a free list when
/// the packet's tail flit is consumed (wormhole ordering guarantees the
/// tail is the last flit of its packet to leave the network, so freeing
/// at tail consumption can never orphan a sibling flit). Capacity grows
/// with the peak number of simultaneously in-flight packets — bounded by
/// buffer space, not by simulation length — so per-packet heap
/// allocation disappears from the generate hot path.
///
/// # Examples
///
/// ```
/// use noc_sim::{FlitKind, PacketArena, PacketId};
/// use noc_topology::NodeId;
///
/// let mut arena = PacketArena::new();
/// let pkt = arena.alloc(PacketId::new(0), NodeId::new(1), NodeId::new(4), 100);
/// assert_eq!(arena.dst(pkt), NodeId::new(4));
/// let flit = arena.flit(pkt, FlitKind::Head);
/// assert_eq!(arena.materialize(flit).src, NodeId::new(1));
/// arena.free(pkt);
/// assert_eq!(arena.live(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PacketArena {
    id: Vec<PacketId>,
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
    created: Vec<u64>,
    generation: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Creates an empty arena with room for `capacity` concurrent
    /// packets before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        PacketArena {
            id: Vec::with_capacity(capacity),
            src: Vec::with_capacity(capacity),
            dst: Vec::with_capacity(capacity),
            created: Vec::with_capacity(capacity),
            generation: Vec::with_capacity(capacity),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (allocated, not yet freed) packets.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Allocates a slot for one packet and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (the simulator never self-addresses) or if
    /// the arena exceeds `u32::MAX` slots.
    pub fn alloc(&mut self, id: PacketId, src: NodeId, dst: NodeId, created: u64) -> PacketRef {
        assert_ne!(src, dst, "packet source must differ from destination");
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let i = index as usize;
            self.id[i] = id;
            self.src[i] = src;
            self.dst[i] = dst;
            self.created[i] = created;
            PacketRef {
                index,
                generation: self.generation[i],
            }
        } else {
            let index = u32::try_from(self.id.len()).expect("arena exceeds u32::MAX packets");
            self.id.push(id);
            self.src.push(src);
            self.dst.push(dst);
            self.created.push(created);
            self.generation.push(0);
            PacketRef {
                index,
                generation: 0,
            }
        }
    }

    /// Releases a packet slot for reuse, invalidating all existing
    /// handles to it.
    ///
    /// # Panics
    ///
    /// Panics if `pkt` is stale (already freed).
    pub fn free(&mut self, pkt: PacketRef) {
        let i = self.check(pkt);
        self.generation[i] = self.generation[i].wrapping_add(1);
        self.free.push(pkt.index);
        self.live -= 1;
    }

    #[inline]
    fn check(&self, pkt: PacketRef) -> usize {
        let i = pkt.index as usize;
        assert_eq!(
            self.generation[i], pkt.generation,
            "stale packet handle {pkt:?}"
        );
        i
    }

    /// Packet identifier of the packet behind `pkt`.
    #[inline]
    pub fn packet_id(&self, pkt: PacketRef) -> PacketId {
        self.id[self.check(pkt)]
    }

    /// Source node of the packet behind `pkt`.
    #[inline]
    pub fn src(&self, pkt: PacketRef) -> NodeId {
        self.src[self.check(pkt)]
    }

    /// Destination node of the packet behind `pkt`.
    #[inline]
    pub fn dst(&self, pkt: PacketRef) -> NodeId {
        self.dst[self.check(pkt)]
    }

    /// Creation cycle of the packet behind `pkt`.
    #[inline]
    pub fn created(&self, pkt: PacketRef) -> u64 {
        self.created[self.check(pkt)]
    }

    /// Builds an in-network flit of packet `pkt` with zero hops.
    #[inline]
    pub fn flit(&self, pkt: PacketRef, kind: FlitKind) -> ArenaFlit {
        let _ = self.check(pkt);
        ArenaFlit { pkt, kind, hops: 0 }
    }

    /// Reconstructs the flat [`Flit`] view of an in-network flit, for
    /// the observability seams (probes, audit, deliveries).
    #[inline]
    pub fn materialize(&self, flit: ArenaFlit) -> Flit {
        let i = self.check(flit.pkt);
        Flit {
            packet: self.id[i],
            kind: flit.kind,
            src: self.src[i],
            dst: self.dst[i],
            created: self.created[i],
            hops: u64::from(flit.hops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_id_round_trip() {
        assert_eq!(PacketId::new(7).raw(), 7);
        assert_eq!(PacketId::new(7).to_string(), "p7");
        assert!(PacketId::new(1) < PacketId::new(2));
    }

    #[test]
    fn flit_kinds_classify() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
    }

    #[test]
    fn six_flit_packet_structure() {
        let flits = Flit::packet(PacketId::new(3), NodeId::new(0), NodeId::new(5), 6, 42);
        assert_eq!(flits.len(), 6);
        assert!(flits.iter().all(|f| f.packet == PacketId::new(3)));
        assert!(flits.iter().all(|f| f.created == 42));
        assert_eq!(flits.iter().filter(|f| f.kind.is_head()).count(), 1);
        assert_eq!(flits.iter().filter(|f| f.kind.is_tail()).count(), 1);
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let flits = Flit::packet(PacketId::new(0), NodeId::new(0), NodeId::new(1), 1, 0);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
    }

    #[test]
    fn two_flit_packet_is_head_then_tail() {
        let flits = Flit::packet(PacketId::new(0), NodeId::new(0), NodeId::new(1), 2, 0);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_panics() {
        let _ = Flit::packet(PacketId::new(0), NodeId::new(0), NodeId::new(1), 0, 0);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn self_addressed_packet_panics() {
        let _ = Flit::packet(PacketId::new(0), NodeId::new(1), NodeId::new(1), 3, 0);
    }

    #[test]
    fn display_is_compact() {
        let flits = Flit::packet(PacketId::new(9), NodeId::new(1), NodeId::new(4), 2, 0);
        assert_eq!(flits[0].to_string(), "p9H[n1->n4]");
        assert_eq!(flits[1].to_string(), "p9T[n1->n4]");
    }

    #[test]
    fn arena_round_trips_packet_fields() {
        let mut arena = PacketArena::new();
        let pkt = arena.alloc(PacketId::new(7), NodeId::new(2), NodeId::new(5), 42);
        assert_eq!(arena.packet_id(pkt), PacketId::new(7));
        assert_eq!(arena.src(pkt), NodeId::new(2));
        assert_eq!(arena.dst(pkt), NodeId::new(5));
        assert_eq!(arena.created(pkt), 42);
        let mut flit = arena.flit(pkt, FlitKind::Tail);
        flit.hops = 3;
        let full = arena.materialize(flit);
        assert_eq!(
            full,
            Flit {
                packet: PacketId::new(7),
                kind: FlitKind::Tail,
                src: NodeId::new(2),
                dst: NodeId::new(5),
                created: 42,
                hops: 3,
            }
        );
    }

    #[test]
    fn arena_recycles_slots_with_new_generation() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(PacketId::new(0), NodeId::new(0), NodeId::new(1), 0);
        arena.free(a);
        let b = arena.alloc(PacketId::new(1), NodeId::new(3), NodeId::new(4), 9);
        assert_ne!(a, b, "recycled slot must carry a fresh generation");
        assert_eq!(arena.live(), 1);
        assert_eq!(arena.packet_id(b), PacketId::new(1));
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn arena_rejects_stale_handles() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(PacketId::new(0), NodeId::new(0), NodeId::new(1), 0);
        arena.free(a);
        let _ = arena.dst(a);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn arena_rejects_self_addressed_packets() {
        let mut arena = PacketArena::new();
        let _ = arena.alloc(PacketId::new(0), NodeId::new(1), NodeId::new(1), 0);
    }
}
