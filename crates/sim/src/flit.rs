//! Flits and packets: the paper's data units.
//!
//! "In packet-based NoC communication each packet is split into data
//! units called flits. The buffer queues for channels are defined as
//! multiples of the flit data unit." Packets are constant-size (6 flits
//! in the paper's simulations); the head flit is actively routed and
//! the rest follow its wormhole path.

use core::fmt;
use noc_topology::NodeId;

/// Unique identifier of a packet within one simulation run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet identifier from a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// The raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FlitKind {
    /// First flit: carries routing information, opens the wormhole path.
    Head,
    /// Middle flit: passively switched along the established path.
    Body,
    /// Last flit: closes the path, releases allocations.
    Tail,
    /// A complete single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Returns `true` for flits that open a path (head or head-tail).
    pub const fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Returns `true` for flits that close a path (tail or head-tail).
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control digit travelling through the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Source node of the packet.
    pub src: NodeId,
    /// Destination node of the packet.
    pub dst: NodeId,
    /// Cycle at which the packet was created at its source.
    pub created: u64,
    /// Link crossings this flit has made so far. Under wormhole
    /// switching every flit of a packet traverses the same links, so
    /// the tail's counter at consumption equals the head's hop count —
    /// which is why the simulator needs no per-packet hop table.
    pub hops: u64,
}

impl Flit {
    /// Builds the flit sequence of one packet: `Head`, `len - 2` times
    /// `Body`, `Tail` (or a single `HeadTail` for `len == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `src == dst`.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_sim::{Flit, FlitKind, PacketId};
    /// use noc_topology::NodeId;
    ///
    /// let flits = Flit::packet(PacketId::new(0), NodeId::new(1), NodeId::new(2), 6, 100);
    /// assert_eq!(flits.len(), 6);
    /// assert_eq!(flits[0].kind, FlitKind::Head);
    /// assert!(flits[1..5].iter().all(|f| f.kind == FlitKind::Body));
    /// assert_eq!(flits[5].kind, FlitKind::Tail);
    /// ```
    pub fn packet(
        packet: PacketId,
        src: NodeId,
        dst: NodeId,
        len: usize,
        created: u64,
    ) -> Vec<Flit> {
        assert!(len > 0, "packets must contain at least one flit");
        assert_ne!(src, dst, "packet source must differ from destination");
        let template = Flit {
            packet,
            kind: FlitKind::Body,
            src,
            dst,
            created,
            hops: 0,
        };
        (0..len)
            .map(|i| {
                let kind = match (i, len) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (i, l) if i + 1 == l => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                Flit { kind, ..template }
            })
            .collect()
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            FlitKind::Head => "H",
            FlitKind::Body => "B",
            FlitKind::Tail => "T",
            FlitKind::HeadTail => "HT",
        };
        write!(f, "{}{}[{}->{}]", self.packet, k, self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_id_round_trip() {
        assert_eq!(PacketId::new(7).raw(), 7);
        assert_eq!(PacketId::new(7).to_string(), "p7");
        assert!(PacketId::new(1) < PacketId::new(2));
    }

    #[test]
    fn flit_kinds_classify() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
    }

    #[test]
    fn six_flit_packet_structure() {
        let flits = Flit::packet(PacketId::new(3), NodeId::new(0), NodeId::new(5), 6, 42);
        assert_eq!(flits.len(), 6);
        assert!(flits.iter().all(|f| f.packet == PacketId::new(3)));
        assert!(flits.iter().all(|f| f.created == 42));
        assert_eq!(flits.iter().filter(|f| f.kind.is_head()).count(), 1);
        assert_eq!(flits.iter().filter(|f| f.kind.is_tail()).count(), 1);
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let flits = Flit::packet(PacketId::new(0), NodeId::new(0), NodeId::new(1), 1, 0);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
    }

    #[test]
    fn two_flit_packet_is_head_then_tail() {
        let flits = Flit::packet(PacketId::new(0), NodeId::new(0), NodeId::new(1), 2, 0);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_panics() {
        let _ = Flit::packet(PacketId::new(0), NodeId::new(0), NodeId::new(1), 0, 0);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn self_addressed_packet_panics() {
        let _ = Flit::packet(PacketId::new(0), NodeId::new(1), NodeId::new(1), 3, 0);
    }

    #[test]
    fn display_is_compact() {
        let flits = Flit::packet(PacketId::new(9), NodeId::new(1), NodeId::new(4), 2, 0);
        assert_eq!(flits[0].to_string(), "p9H[n1->n4]");
        assert_eq!(flits[1].to_string(), "p9T[n1->n4]");
    }
}
