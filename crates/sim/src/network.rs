//! The wormhole network simulation: the paper's node model (Figure 4)
//! replicated at every node of a topology and advanced cycle by cycle.
//!
//! # Node model
//!
//! Every router has, per link direction:
//!
//! * an **input buffer** per virtual channel (one flit deep by
//!   default);
//! * a set of **output VC queues** (three flits deep by default) — a
//!   pair on Ring/Spidergon links (dateline deadlock avoidance), a
//!   single one on mesh links;
//!
//! plus a local **source queue** (the NI injection side, fed by a
//! Poisson process) and a local **ejection queue** drained by the IP
//! sink at a configurable rate (one flit per cycle by default — the
//! "destination node saturation" bottleneck of the hot-spot figures).
//!
//! # Cycle phases
//!
//! 1. **generate** — drain this cycle's packet-arrival events from the
//!    DES queue into source queues;
//! 2. **consume** — sinks pop up to `sink_rate` flits from ejection
//!    queues (packet latency recorded at tail consumption);
//! 3. **link transfer** — per unidirectional link, one flit moves from
//!    the sender's output VC queue to the receiver's input buffer if
//!    the buffer has space (signal-based flow control), VCs arbitrated
//!    round-robin;
//! 4. **switch allocation** — per router, input buffers and the source
//!    queue compete for output queues: head flits are routed
//!    ([`noc_routing::RoutingAlgorithm`]) and claim a (port, VC), body
//!    and tail flits follow the wormhole allocation; one write per
//!    output port per cycle, inputs served round-robin.

use crate::audit::{AuditReport, Auditor};
use crate::buffer::{InputBuffer, OutputQueue, SlotRoute};
use crate::des::{EventQueue, SimTime};
use crate::probe::{NetworkShape, NullProbe, Probe};
use crate::stats::LinkLoad;
use crate::{Flit, PacketId, SimConfig, SimError, SimStats};
use noc_routing::RoutingAlgorithm;
use noc_topology::{Direction, NodeId, Topology};
use noc_traffic::{Trace, TrafficPattern};
use rand::{rngs::SmallRng, SeedableRng};
use std::collections::VecDeque;

/// Per-node router and network-interface state.
///
/// Crate-visible so the [`Auditor`] can read (never write) buffer
/// contents when re-deriving occupancy and wormhole structure.
#[derive(Debug)]
pub(crate) struct NodeState {
    /// Link directions at this node (canonical order).
    pub(crate) dirs: Vec<Direction>,
    /// Per link direction: (peer node index, peer's input-port index).
    pub(crate) peer: Vec<(usize, usize)>,
    /// Output VC queues, indexed `[dir][vc]`.
    pub(crate) out: Vec<Vec<OutputQueue>>,
    /// Local ejection queues towards the IP sink (one per ejection
    /// channel; the IP consumes up to `sink_rate` flits per cycle).
    pub(crate) eject: Vec<OutputQueue>,
    /// Round-robin pointer over ejection queues for the sink.
    eject_rr: usize,
    /// Input buffers, indexed `[dir][vc]`.
    pub(crate) input: Vec<Vec<InputBuffer>>,
    /// Per link direction: VC round-robin pointer for link arbitration.
    link_rr: Vec<usize>,
    /// Flits awaiting injection, whole packets back to back.
    pub(crate) source_queue: VecDeque<Flit>,
    /// Wormhole allocation of the packet currently being injected.
    source_route: Option<SlotRoute>,
    /// Rotating priority pointer for switch allocation.
    rr_offset: usize,
    /// Whether the traffic pattern generates packets here.
    is_source: bool,
}

/// A complete wormhole NoC simulation: topology + routing + traffic +
/// configuration, advanced in synchronous cycles.
///
/// The type parameter `P` is the attached observation probe
/// ([`crate::probe`]). It defaults to [`NullProbe`], whose empty
/// inlined hooks monomorphize away — the plain simulator pays nothing
/// for the instrumentation points. Attach a recording probe with
/// [`with_probe`](Simulation::with_probe).
///
/// # Examples
///
/// ```
/// use noc_routing::SpidergonAcrossFirst;
/// use noc_sim::{SimConfig, Simulation};
/// use noc_topology::Spidergon;
/// use noc_traffic::UniformRandom;
///
/// let topo = Spidergon::new(8)?;
/// let routing = SpidergonAcrossFirst::new(&topo);
/// let pattern = UniformRandom::new(8)?;
/// let config = SimConfig::builder()
///     .injection_rate(0.1)
///     .warmup_cycles(200)
///     .measure_cycles(2_000)
///     .build()?;
/// let mut sim = Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), config)?;
/// let stats = sim.run()?;
/// assert!(stats.packets_delivered > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulation<P: Probe = NullProbe> {
    topo: Box<dyn Topology>,
    pub(crate) routing: Box<dyn RoutingAlgorithm>,
    /// `None` in trace-replay mode.
    pattern: Option<Box<dyn TrafficPattern>>,
    config: SimConfig,
    pub(crate) vcs: usize,
    num_sources: usize,
    rng: SmallRng,
    pub(crate) nodes: Vec<NodeState>,
    arrivals: EventQueue<Arrival>,
    cycle: u64,
    next_packet: u64,
    /// Flits currently inside routers (not in source queues).
    in_network: u64,
    /// Flits currently waiting in source queues, maintained
    /// incrementally (generation adds, injection subtracts) so
    /// [`source_backlog`](Self::source_backlog) is O(1) and consistent
    /// with [`in_network`](Self::flits_in_network) at every phase
    /// boundary of [`step`](Self::step).
    source_flits: u64,
    /// Lifetime totals (warmup included), for conservation checks.
    total_flits_generated: u64,
    total_flits_consumed: u64,
    idle_cycles: u64,
    measuring: bool,
    stats: SimStats,
    deliveries: Vec<Delivery>,
    /// Flits per (node, output dir) during the window.
    link_counters: Vec<Vec<u64>>,
    /// Delivered flits inside the current sampling window.
    window_flits: u64,
    /// Reusable buffer for routing candidate directions (hot path:
    /// filled and drained every head-flit allocation attempt).
    dir_scratch: Vec<Direction>,
    /// Reusable buffer for candidate (port, VC) allocations.
    route_scratch: Vec<SlotRoute>,
    /// Runtime invariant auditor, attached when
    /// [`SimConfig::audit`] is set. Boxed: the common unaudited path
    /// pays one pointer; hooks take/restore it around calls so the
    /// auditor can read the rest of the simulation.
    auditor: Option<Box<Auditor>>,
    /// Observation probe: hooks fire on every lifecycle transition.
    /// [`NullProbe`] (the default) compiles them all away.
    probe: P,
}

/// Sentinel output-port index for the local ejection queue.
pub(crate) const EJECT: usize = usize::MAX;

/// Upper bound on ports per router: every non-local [`Direction`] plus
/// the ejection port — lets switch allocation keep its per-port write
/// budget in a stack array instead of a per-cycle heap allocation.
const MAX_PORTS: usize = Direction::ALL.len() + 1;

/// A scheduled packet creation: from a stochastic pattern (destination
/// drawn at creation time) or from a trace entry (destination fixed).
#[derive(Clone, Copy, Debug)]
struct Arrival {
    node: usize,
    dst: Option<NodeId>,
}

/// Snapshot of flit occupancy across the network's buffer classes.
///
/// Produced by [`Simulation::occupancy`]; the sum of the router-side
/// fields equals [`Simulation::flits_in_network`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Occupancy {
    /// Flits waiting in source (injection) queues.
    pub source_flits: u64,
    /// Flits held in input buffers.
    pub input_flits: u64,
    /// Flits held in output VC queues.
    pub output_flits: u64,
    /// Flits held in ejection queues.
    pub eject_flits: u64,
}

impl Occupancy {
    /// Flits inside routers (everything except source queues).
    pub fn in_network(&self) -> u64 {
        self.input_flits + self.output_flits + self.eject_flits
    }
}

/// One delivered packet, recorded when
/// [`SimConfig::record_deliveries`] is enabled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Delivery {
    /// Cycle at which the tail flit was consumed by the sink.
    pub cycle: u64,
    /// The delivered packet.
    pub packet: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Latency in cycles (creation to tail consumption).
    pub latency: u64,
    /// Hops travelled by the head flit.
    pub hops: u64,
}

impl Simulation {
    /// Builds a simulation over `topology` with `routing`, `pattern`
    /// and `config`.
    ///
    /// The number of virtual channels per link is taken from
    /// [`RoutingAlgorithm::num_vcs_required`] (a pair on ring-like
    /// topologies, one on meshes), matching the paper's node model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeCountMismatch`] if the traffic pattern
    /// covers a different node count than the topology.
    pub fn new(
        topology: Box<dyn Topology>,
        routing: Box<dyn RoutingAlgorithm>,
        pattern: Box<dyn TrafficPattern>,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        if pattern.num_nodes() != topology.num_nodes() {
            return Err(SimError::NodeCountMismatch {
                topology: topology.num_nodes(),
                pattern: pattern.num_nodes(),
            });
        }
        Simulation::with_probe(topology, routing, pattern, config, NullProbe)
    }

    /// Builds a **trace-replay** simulation: packets are injected
    /// exactly as listed in `trace` (paper future work: application
    /// traffic), with no stochastic sources.
    ///
    /// The injection-rate and injection-process configuration fields
    /// are ignored in this mode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] if the trace addresses nodes
    /// outside the topology.
    pub fn with_trace(
        topology: Box<dyn Topology>,
        routing: Box<dyn RoutingAlgorithm>,
        trace: &Trace,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        if trace.num_nodes() != topology.num_nodes() {
            return Err(SimError::InvalidTrace {
                reason: format!(
                    "trace covers {} nodes but topology has {}",
                    trace.num_nodes(),
                    topology.num_nodes()
                ),
            });
        }
        let sources = trace.sources();
        let is_source = |v: NodeId| sources.binary_search(&v).is_ok();
        let mut sim = Self::assemble(topology, routing, None, config, &is_source, NullProbe)?;
        sim.num_sources = sources.len();
        for entry in trace.entries() {
            sim.arrivals.schedule(
                SimTime::new(entry.cycle as f64),
                Arrival {
                    node: entry.src.index(),
                    dst: Some(entry.dst),
                },
            );
        }
        Ok(sim)
    }
}

impl<P: Probe> Simulation<P> {
    /// Builds a simulation like [`Simulation::new`] with an observation
    /// probe attached ([`crate::probe`]).
    ///
    /// The probe receives the network description once
    /// ([`Probe::on_attach`]) and every lifecycle hook afterwards; read
    /// it back with [`probe`](Self::probe) or
    /// [`into_probe`](Self::into_probe) after running. Probes only
    /// observe — a probed run yields bit-identical
    /// [`SimStats`](crate::SimStats) to an unprobed run with the same
    /// seed.
    ///
    /// # Errors
    ///
    /// See [`Simulation::new`].
    pub fn with_probe(
        topology: Box<dyn Topology>,
        routing: Box<dyn RoutingAlgorithm>,
        pattern: Box<dyn TrafficPattern>,
        config: SimConfig,
        probe: P,
    ) -> Result<Simulation<P>, SimError> {
        if pattern.num_nodes() != topology.num_nodes() {
            return Err(SimError::NodeCountMismatch {
                topology: topology.num_nodes(),
                pattern: pattern.num_nodes(),
            });
        }
        let sources: Vec<NodeId> = pattern.sources();
        let is_source = |v: NodeId| sources.binary_search(&v).is_ok();
        let mut sim = Self::assemble(topology, routing, Some(pattern), config, &is_source, probe)?;
        sim.num_sources = sources.len();
        sim.schedule_initial_arrivals();
        Ok(sim)
    }

    fn assemble(
        topology: Box<dyn Topology>,
        routing: Box<dyn RoutingAlgorithm>,
        pattern: Option<Box<dyn TrafficPattern>>,
        config: SimConfig,
        is_source: &dyn Fn(NodeId) -> bool,
        mut probe: P,
    ) -> Result<Simulation<P>, SimError> {
        let vcs = routing.num_vcs_required().max(1);
        let n = topology.num_nodes();
        let mut nodes = Vec::with_capacity(n);
        for v in topology.node_ids() {
            let dirs = topology.directions(v);
            assert!(
                dirs.len() < MAX_PORTS,
                "router at {v} has {} link ports, more than any known topology",
                dirs.len()
            );
            let peer = dirs
                .iter()
                .map(|&d| {
                    let u = topology.neighbor(v, d).expect("listed direction");
                    let back = d.opposite().expect("link direction");
                    let u_dirs = topology.directions(u);
                    let idx = u_dirs
                        .iter()
                        .position(|&ud| ud == back)
                        .expect("symmetric link");
                    (u.index(), idx)
                })
                .collect();
            let out = dirs
                .iter()
                .map(|_| {
                    (0..vcs)
                        .map(|_| OutputQueue::new(config.output_buffer_capacity))
                        .collect()
                })
                .collect();
            let input = dirs
                .iter()
                .map(|_| {
                    (0..vcs)
                        .map(|_| InputBuffer::new(config.input_buffer_capacity))
                        .collect()
                })
                .collect();
            nodes.push(NodeState {
                link_rr: vec![0; dirs.len()],
                peer,
                out,
                eject: (0..config.sink_rate)
                    .map(|_| OutputQueue::new(config.output_buffer_capacity))
                    .collect(),
                eject_rr: 0,
                input,
                source_queue: VecDeque::new(),
                source_route: None,
                rr_offset: 0,
                is_source: is_source(v),
                dirs,
            });
        }

        let auditor = if config.audit {
            Some(Box::new(Auditor::attach(
                topology.as_ref(),
                routing.as_ref(),
                &nodes,
                vcs,
                &config,
            )))
        } else {
            None
        };

        probe.on_attach(NetworkShape {
            num_nodes: n,
            vcs,
            packet_len: config.packet_len,
            router_delay: config.router_delay,
            warmup_cycles: config.warmup_cycles,
            sink_channels: config.sink_rate,
            dirs: nodes.iter().map(|node| node.dirs.clone()).collect(),
            peer: nodes.iter().map(|node| node.peer.clone()).collect(),
        });

        Ok(Simulation {
            topo: topology,
            routing,
            pattern,
            vcs,
            num_sources: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            nodes,
            arrivals: EventQueue::new(),
            cycle: 0,
            next_packet: 0,
            in_network: 0,
            source_flits: 0,
            total_flits_generated: 0,
            total_flits_consumed: 0,
            idle_cycles: 0,
            measuring: false,
            stats: SimStats::default(),
            deliveries: Vec::new(),
            link_counters: Vec::new(),
            window_flits: 0,
            dir_scratch: Vec::new(),
            route_scratch: Vec::new(),
            auditor,
            probe,
            config,
        })
    }

    fn schedule_initial_arrivals(&mut self) {
        let rate = self.config.packets_per_cycle();
        for v in 0..self.nodes.len() {
            if !self.nodes[v].is_source {
                continue;
            }
            let dt = self
                .config
                .injection_process
                .interarrival(&mut self.rng, rate);
            if dt.is_finite() {
                self.arrivals
                    .schedule(SimTime::new(dt), Arrival { node: v, dst: None });
            }
        }
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The configuration this simulation runs with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of flits currently inside routers (excluding source
    /// queues).
    pub fn flits_in_network(&self) -> u64 {
        self.in_network
    }

    /// A summary of where flits currently sit inside the network.
    pub fn occupancy(&self) -> Occupancy {
        let mut occ = Occupancy::default();
        for node in &self.nodes {
            occ.source_flits += node.source_queue.len() as u64;
            occ.eject_flits += node.eject.iter().map(|q| q.len() as u64).sum::<u64>();
            for port in &node.input {
                occ.input_flits += port.iter().map(|b| b.len() as u64).sum::<u64>();
            }
            for port in &node.out {
                occ.output_flits += port.iter().map(|q| q.len() as u64).sum::<u64>();
            }
        }
        occ
    }

    /// Per-packet delivery log (empty unless
    /// [`SimConfig::record_deliveries`] is enabled).
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Lifetime total of flits generated by sources (warmup included).
    pub fn total_flits_generated(&self) -> u64 {
        self.total_flits_generated
    }

    /// Lifetime total of flits consumed by sinks (warmup included).
    pub fn total_flits_consumed(&self) -> u64 {
        self.total_flits_consumed
    }

    /// Total flits waiting in source queues.
    ///
    /// Maintained incrementally alongside
    /// [`flits_in_network`](Self::flits_in_network): generation adds,
    /// injection subtracts, in the same phase as the queue mutation —
    /// so the conservation identity `generated = consumed + backlog +
    /// in-network` holds exactly at every cycle boundary (checked by
    /// the audit layer each audited cycle).
    pub fn source_backlog(&self) -> u64 {
        self.source_flits
    }

    /// The audit findings so far, if auditing is enabled
    /// ([`SimConfig::audit`]).
    pub fn audit_report(&self) -> Option<&AuditReport> {
        self.auditor.as_ref().map(|a| a.report())
    }

    /// Detaches the auditor and returns its final report, if auditing
    /// was enabled. Subsequent cycles run unaudited.
    pub fn take_audit_report(&mut self) -> Option<AuditReport> {
        self.auditor.take().map(|a| a.into_report())
    }

    /// The attached observation probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the simulation and returns its probe (typically a
    /// [`crate::Recorder`] holding the captured trace).
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Runs warmup plus measurement and returns the collected
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if the deadlock watchdog fires.
    pub fn run(&mut self) -> Result<SimStats, SimError> {
        let total = self.config.total_cycles();
        while self.cycle < total {
            if self.cycle == self.config.warmup_cycles {
                self.begin_measurement();
            }
            self.step()?;
        }
        let mut stats = self.stats.clone();
        stats.measured_cycles = self.config.measure_cycles;
        stats.num_nodes = self.topo.num_nodes();
        stats.num_sources = self.num_sources;
        stats.backlog_flits = self.source_backlog();
        stats.per_link = self
            .link_counters
            .iter()
            .enumerate()
            .flat_map(|(v, dirs)| {
                let node_dirs = &self.nodes[v].dirs;
                dirs.iter().enumerate().map(move |(d, &flits)| LinkLoad {
                    from: NodeId::new(v),
                    direction: node_dirs[d],
                    flits,
                })
            })
            .collect();
        Ok(stats)
    }

    fn begin_measurement(&mut self) {
        self.stats = SimStats::default();
        let n = self.nodes.len();
        self.stats.per_node_delivered = vec![0; n];
        self.stats.per_node_generated = vec![0; n];
        self.link_counters = self
            .nodes
            .iter()
            .map(|node| vec![0; node.dirs.len()])
            .collect();
        self.window_flits = 0;
        self.measuring = true;
    }

    /// Advances the simulation by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if no flit has moved for the
    /// configured threshold while flits are in flight.
    pub fn step(&mut self) -> Result<(), SimError> {
        let mut moved = false;
        self.generate();
        moved |= self.consume();
        moved |= self.transfer_links();
        moved |= self.allocate_switches();
        self.end_of_cycle_bookkeeping();
        self.probe.on_cycle_end(self.cycle);
        if let Some(mut auditor) = self.auditor.take() {
            auditor.on_cycle_end(&*self);
            self.auditor = Some(auditor);
        }

        if !moved && self.in_network > 0 {
            self.idle_cycles += 1;
            if self.idle_cycles >= self.config.stall_threshold {
                // Before reporting the stall, let the auditor inspect
                // the wait-for graph to tell deadlock from starvation.
                if let Some(mut auditor) = self.auditor.take() {
                    auditor.on_stall(&*self);
                    self.auditor = Some(auditor);
                }
                return Err(SimError::Stalled {
                    cycle: self.cycle,
                    flits_in_flight: self.in_network,
                });
            }
        } else {
            self.idle_cycles = 0;
        }
        self.cycle += 1;
        Ok(())
    }

    /// Phase 1: drain this cycle's arrival events into source queues
    /// and reschedule each source's next arrival.
    fn generate(&mut self) {
        let deadline = SimTime::new((self.cycle + 1) as f64);
        let rate = self.config.packets_per_cycle();
        while let Some((t, arrival)) = self.arrivals.pop_before(deadline) {
            let v = arrival.node;
            let src = NodeId::new(v);
            let dst = match (arrival.dst, &self.pattern) {
                (Some(dst), _) => dst,
                (None, Some(pattern)) => pattern.pick_destination(src, &mut self.rng),
                (None, None) => unreachable!("pattern-less arrival without destination"),
            };
            let pid = PacketId::new(self.next_packet);
            self.next_packet += 1;
            let flits = Flit::packet(pid, src, dst, self.config.packet_len, self.cycle);
            self.probe
                .on_generate(self.cycle, pid, src, dst, flits.len());
            self.total_flits_generated += flits.len() as u64;
            self.source_flits += flits.len() as u64;
            if self.measuring {
                self.stats.packets_generated += 1;
                self.stats.flits_generated += flits.len() as u64;
                self.stats.per_node_generated[v] += 1;
            }
            self.nodes[v].source_queue.extend(flits);
            // Stochastic sources reschedule themselves; trace arrivals
            // were all scheduled up front.
            if arrival.dst.is_none() {
                let dt = self
                    .config
                    .injection_process
                    .interarrival(&mut self.rng, rate);
                if dt.is_finite() {
                    self.arrivals
                        .schedule(t.advanced(dt), Arrival { node: v, dst: None });
                }
            }
        }
    }

    /// Phase 2: sinks drain ejection queues round-robin, up to
    /// `sink_rate` flits per node per cycle.
    fn consume(&mut self) -> bool {
        let mut moved = false;
        let channels = self.config.sink_rate;
        for v in 0..self.nodes.len() {
            let start = self.nodes[v].eject_rr;
            self.nodes[v].eject_rr = (start + 1) % channels;
            let mut budget = self.config.sink_rate;
            'outer: for k in 0..channels {
                let q = (start + k) % channels;
                while budget > 0 {
                    let Some(flit) = self.nodes[v].eject[q].pop() else {
                        break;
                    };
                    budget -= 1;
                    moved = true;
                    self.in_network -= 1;
                    self.total_flits_consumed += 1;
                    if let Some(mut auditor) = self.auditor.take() {
                        auditor.on_consume(self.cycle, v, &flit);
                        self.auditor = Some(auditor);
                    }
                    self.probe.on_consume(self.cycle, v, q, &flit);
                    if self.measuring {
                        self.stats.flits_delivered += 1;
                        self.stats.per_node_delivered[v] += 1;
                    }
                    if flit.kind.is_tail() {
                        // The tail crossed exactly the links the head
                        // did (wormhole), so its own counter is the
                        // packet's hop count.
                        let hops = flit.hops;
                        if self.measuring {
                            self.stats.packets_delivered += 1;
                            self.stats.total_hops += hops;
                            self.stats.latency.record(self.cycle - flit.created);
                        }
                        if self.config.record_deliveries {
                            self.deliveries.push(Delivery {
                                cycle: self.cycle,
                                packet: flit.packet,
                                src: flit.src,
                                dst: flit.dst,
                                latency: self.cycle - flit.created,
                                hops,
                            });
                        }
                    }
                }
                if budget == 0 {
                    break 'outer;
                }
            }
        }
        moved
    }

    /// Phase 3: one flit per unidirectional link crosses into the
    /// downstream input buffer, VCs arbitrated round-robin.
    ///
    /// Runs in a single pass with no intermediate move list: per-link
    /// decisions are independent within the phase, because a link
    /// `(v, d)` is the only writer of its downstream input buffer and
    /// the only reader of its upstream output queues — no transfer on
    /// another link can change this link's decision, and links have no
    /// self-loops (`v != peer`).
    fn transfer_links(&mut self) -> bool {
        let mut moved = false;
        let eligible = self.cycle + self.config.router_delay;
        for v in 0..self.nodes.len() {
            for d in 0..self.nodes[v].dirs.len() {
                let (peer, peer_port) = self.nodes[v].peer[d];
                let start = self.nodes[v].link_rr[d];
                for k in 0..self.vcs {
                    let vc = (start + k) % self.vcs;
                    if self.nodes[v].out[d][vc].front().is_some()
                        && self.nodes[peer].input[peer_port][vc].has_space()
                    {
                        let mut flit = self.nodes[v].out[d][vc].pop().expect("checked above");
                        self.nodes[v].link_rr[d] = (vc + 1) % self.vcs;
                        flit.hops += 1;
                        if let Some(mut auditor) = self.auditor.take() {
                            auditor.on_link_transfer(&*self, v, d, vc, &flit);
                            self.auditor = Some(auditor);
                        }
                        self.probe.on_link_traverse(self.cycle, v, d, vc, &flit);
                        self.nodes[peer].input[peer_port][vc].receive(flit, eligible);
                        if self.measuring {
                            self.stats.link_traversals += 1;
                            self.link_counters[v][d] += 1;
                        }
                        moved = true;
                        break;
                    }
                }
            }
        }
        moved
    }

    /// Phase 4: switch allocation at every router.
    fn allocate_switches(&mut self) -> bool {
        let mut moved = false;
        for v in 0..self.nodes.len() {
            moved |= self.allocate_node(v);
        }
        moved
    }

    /// Runs switch allocation for one router: rotating priority over
    /// the source queue and every (input port, VC), one write per
    /// output port per cycle.
    fn allocate_node(&mut self, v: usize) -> bool {
        let num_dirs = self.nodes[v].dirs.len();
        let nslots = 1 + num_dirs * self.vcs;
        let start = self.nodes[v].rr_offset;
        self.nodes[v].rr_offset = (start + 1) % nslots;
        // Writes left per output port this cycle: one per link port
        // (crossbar), `sink_rate` for the ejection port (the IP
        // interface is as wide as its consumption rate). A stack array
        // (ports bounded by MAX_PORTS, asserted at assembly) so the
        // per-node-per-cycle bookkeeping never touches the heap.
        let mut used = [1usize; MAX_PORTS];
        used[num_dirs] = self.config.sink_rate;
        let mut moved = false;
        for k in 0..nslots {
            let slot = (start + k) % nslots;
            if slot == 0 {
                moved |= self.try_inject(v, &mut used);
            } else {
                let idx = slot - 1;
                moved |= self.try_forward(v, idx / self.vcs, idx % self.vcs, &mut used);
            }
        }
        moved
    }

    /// Computes the candidate (output port, VC) allocations for a head
    /// flit at node `v` arriving on virtual channel `in_vc`, in the
    /// routing algorithm's preference order, appending them to `out`.
    /// Deterministic algorithms yield exactly one candidate; adaptive
    /// ones several, and the switch takes the first whose queue can
    /// accept the flit.
    fn head_routes_into(&mut self, v: usize, flit: &Flit, in_vc: usize, out: &mut Vec<SlotRoute>) {
        let here = NodeId::new(v);
        // Reuse the direction scratch buffer (taken so the routing call
        // can borrow `self`); blocked head flits retry every cycle, so
        // this runs far too often to allocate each time.
        let mut dirs = std::mem::take(&mut self.dir_scratch);
        dirs.clear();
        self.routing.candidates_into(here, flit.dst, &mut dirs);
        for &dir in &dirs {
            if dir == Direction::Local {
                // Pick the first ejection channel that can accept the
                // head (wormhole ownership: one packet per channel).
                let vc = self.nodes[v]
                    .eject
                    .iter()
                    .position(|q| q.can_accept(flit))
                    .unwrap_or(0);
                out.push(SlotRoute {
                    out_port: EJECT,
                    out_vc: vc,
                    packet: flit.packet,
                });
                continue;
            }
            let port = self.nodes[v]
                .dirs
                .iter()
                .position(|&d| d == dir)
                .unwrap_or_else(|| panic!("routing chose absent direction {dir} at {here}"));
            let vc = self.routing.vc_for_hop(here, flit.dst, dir, in_vc);
            assert!(vc < self.vcs, "routing chose VC {vc} of {}", self.vcs);
            out.push(SlotRoute {
                out_port: port,
                out_vc: vc,
                packet: flit.packet,
            });
        }
        self.dir_scratch = dirs;
    }

    /// Tries each candidate allocation in order; returns the one that
    /// was placed, if any.
    fn try_place(
        &mut self,
        v: usize,
        flit: &Flit,
        routes: &[SlotRoute],
        used: &mut [usize],
    ) -> Option<SlotRoute> {
        routes
            .iter()
            .copied()
            .find(|&route| self.enqueue_output(v, flit, route, used))
    }

    /// Tries to move the head-of-line flit of input `(d, vc)` at node
    /// `v` into its output queue.
    fn try_forward(&mut self, v: usize, d: usize, vc: usize, used: &mut [usize]) -> bool {
        let now = self.cycle;
        let Some(&flit) = self.nodes[v].input[d][vc].front_ready(now) else {
            return false;
        };
        let mut routes = std::mem::take(&mut self.route_scratch);
        routes.clear();
        if flit.kind.is_head() {
            self.head_routes_into(v, &flit, vc, &mut routes);
        } else {
            let r = self.nodes[v].input[d][vc]
                .route
                .expect("body/tail flit with no wormhole allocation");
            assert_eq!(r.packet, flit.packet, "stale wormhole allocation");
            routes.push(r);
        }
        let placed = self.try_place(v, &flit, &routes, used);
        self.route_scratch = routes;
        let Some(route) = placed else {
            return false;
        };
        let out_port = (route.out_port != EJECT).then_some(route.out_port);
        self.probe
            .on_buffer_exit(self.cycle, v, d, vc, out_port, route.out_vc, &flit);
        let node = &mut self.nodes[v];
        node.input[d][vc].take_ready(now);
        node.input[d][vc].route = if flit.kind.is_tail() {
            None
        } else {
            Some(route)
        };
        true
    }

    /// Tries to inject the head-of-line flit of the source queue.
    fn try_inject(&mut self, v: usize, used: &mut [usize]) -> bool {
        let Some(&flit) = self.nodes[v].source_queue.front() else {
            return false;
        };
        let mut routes = std::mem::take(&mut self.route_scratch);
        routes.clear();
        if flit.kind.is_head() {
            self.head_routes_into(v, &flit, 0, &mut routes);
            assert!(
                routes.iter().all(|r| r.out_port != EJECT),
                "packet addressed to its own source"
            );
        } else {
            let r = self.nodes[v]
                .source_route
                .expect("injecting body/tail with no allocation");
            assert_eq!(r.packet, flit.packet, "stale injection allocation");
            routes.push(r);
        }
        let placed = self.try_place(v, &flit, &routes, used);
        self.route_scratch = routes;
        let Some(route) = placed else {
            return false;
        };
        self.probe
            .on_inject(self.cycle, v, route.out_port, route.out_vc, &flit);
        let node = &mut self.nodes[v];
        node.source_queue.pop_front();
        node.source_route = if flit.kind.is_tail() {
            None
        } else {
            Some(route)
        };
        self.in_network += 1;
        self.source_flits -= 1;
        if self.measuring {
            self.stats.flits_injected += 1;
        }
        true
    }

    /// Shared tail of [`try_forward`](Self::try_forward) /
    /// [`try_inject`](Self::try_inject): checks the crossbar and buffer
    /// constraints and performs the enqueue.
    fn enqueue_output(
        &mut self,
        v: usize,
        flit: &Flit,
        route: SlotRoute,
        used: &mut [usize],
    ) -> bool {
        let num_dirs = self.nodes[v].dirs.len();
        let used_idx = if route.out_port == EJECT {
            num_dirs
        } else {
            route.out_port
        };
        if used[used_idx] == 0 {
            return false;
        }
        let queue = if route.out_port == EJECT {
            &mut self.nodes[v].eject[route.out_vc]
        } else {
            &mut self.nodes[v].out[route.out_port][route.out_vc]
        };
        if !queue.can_accept(flit) {
            return false;
        }
        queue.push(*flit);
        used[used_idx] -= 1;
        true
    }

    /// Phase 5: per-cycle statistics updates.
    fn end_of_cycle_bookkeeping(&mut self) {
        if self.measuring && self.config.sample_interval > 0 {
            let elapsed = self.cycle + 1 - self.config.warmup_cycles;
            if elapsed.is_multiple_of(self.config.sample_interval) {
                let delivered_now = self.stats.flits_delivered;
                let in_window = delivered_now - self.window_flits;
                self.stats
                    .throughput_samples
                    .push(in_window as f64 / self.config.sample_interval as f64);
                self.window_flits = delivered_now;
            }
        }
        if self.measuring {
            let max_backlog = self
                .nodes
                .iter()
                .map(|n| n.source_queue.len() as u64)
                .max()
                .unwrap_or(0);
            self.stats.max_source_backlog = self.stats.max_source_backlog.max(max_backlog);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::{MeshXY, RingShortestPath, SpidergonAcrossFirst};
    use noc_topology::{RectMesh, Ring, Spidergon};
    use noc_traffic::{SingleHotspot, UniformRandom};

    fn quick_config(lambda: f64) -> SimConfig {
        SimConfig::builder()
            .injection_rate(lambda)
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .seed(12345)
            .build()
            .unwrap()
    }

    fn spidergon_sim(n: usize, lambda: f64) -> Simulation {
        let topo = Spidergon::new(n).unwrap();
        let routing = SpidergonAcrossFirst::new(&topo);
        let pattern = UniformRandom::new(n).unwrap();
        Simulation::new(
            Box::new(topo),
            Box::new(routing),
            Box::new(pattern),
            quick_config(lambda),
        )
        .unwrap()
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let topo = Ring::new(8).unwrap();
        let routing = RingShortestPath::new(&topo);
        let pattern = UniformRandom::new(9).unwrap();
        let err = Simulation::new(
            Box::new(topo),
            Box::new(routing),
            Box::new(pattern),
            quick_config(0.1),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::NodeCountMismatch { .. }));
    }

    #[test]
    fn low_load_uniform_delivers_packets() {
        let mut sim = spidergon_sim(8, 0.05);
        let stats = sim.run().unwrap();
        assert!(stats.packets_delivered > 10, "{stats}");
        assert_eq!(stats.num_nodes, 8);
        assert_eq!(stats.num_sources, 8);
        // At low load everything generated is eventually delivered.
        assert!(stats.acceptance_ratio() > 0.99);
    }

    #[test]
    fn zero_rate_network_stays_silent() {
        let mut sim = spidergon_sim(8, 0.0);
        let stats = sim.run().unwrap();
        assert_eq!(stats.packets_generated, 0);
        assert_eq!(stats.packets_delivered, 0);
        assert_eq!(sim.flits_in_network(), 0);
    }

    #[test]
    fn identical_seeds_give_identical_results() {
        let a = spidergon_sim(10, 0.2).run().unwrap();
        let b = spidergon_sim(10, 0.2).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut sim_a = spidergon_sim(10, 0.2);
        let stats_a = sim_a.run().unwrap();
        let topo = Spidergon::new(10).unwrap();
        let routing = SpidergonAcrossFirst::new(&topo);
        let pattern = UniformRandom::new(10).unwrap();
        let mut cfg = SimConfig::builder();
        let cfg = cfg
            .injection_rate(0.2)
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .seed(999)
            .build()
            .unwrap();
        let mut sim_b =
            Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), cfg).unwrap();
        let stats_b = sim_b.run().unwrap();
        assert_ne!(stats_a.packets_generated, 0);
        assert_ne!(stats_a, stats_b);
    }

    #[test]
    fn flit_conservation_every_cycle() {
        let mut sim = spidergon_sim(8, 0.3);
        let mut delivered = 0u64;
        let mut generated = 0u64;
        for _ in 0..1_000 {
            let before_backlog = sim.source_backlog();
            let before_net = sim.flits_in_network();
            let packets_before = sim.next_packet;
            sim.step().unwrap();
            let new_packets = sim.next_packet - packets_before;
            generated += new_packets * 6;
            // delivered = generated - backlog - in_network (conservation)
            delivered = generated
                .checked_sub(sim.source_backlog() + sim.flits_in_network())
                .expect("conservation violated");
            let _ = (before_backlog, before_net);
        }
        assert!(delivered > 0);
    }

    #[test]
    fn hotspot_throughput_capped_by_sink_rate() {
        // Paper Figure 6: with one hot-spot the aggregate throughput
        // saturates at the destination's consumption rate (~1
        // flit/cycle) regardless of topology.
        for (label, mut sim) in [
            ("ring", {
                let topo = Ring::new(8).unwrap();
                let routing = RingShortestPath::new(&topo);
                let pattern = SingleHotspot::new(8, NodeId::new(0)).unwrap();
                Simulation::new(
                    Box::new(topo),
                    Box::new(routing),
                    Box::new(pattern),
                    quick_config(0.6),
                )
                .unwrap()
            }),
            ("mesh", {
                let topo = RectMesh::new(2, 4).unwrap();
                let routing = MeshXY::new(&topo);
                let pattern = SingleHotspot::new(8, NodeId::new(0)).unwrap();
                Simulation::new(
                    Box::new(topo),
                    Box::new(routing),
                    Box::new(pattern),
                    quick_config(0.6),
                )
                .unwrap()
            }),
        ] {
            let stats = sim.run().unwrap();
            let tp = stats.throughput_flits_per_cycle();
            assert!(tp <= 1.02, "{label}: throughput {tp} above sink rate");
            assert!(tp > 0.85, "{label}: throughput {tp} far below sink rate");
        }
    }

    #[test]
    fn saturated_network_reports_backlog() {
        let mut sim = spidergon_sim(8, 1.0);
        let stats = sim.run().unwrap();
        assert!(stats.acceptance_ratio() < 1.0, "{stats}");
        assert!(stats.backlog_flits > 0);
        assert!(stats.max_source_backlog > 0);
    }

    #[test]
    fn mean_hops_close_to_average_distance_at_low_load() {
        let mut sim = spidergon_sim(16, 0.02);
        let stats = sim.run().unwrap();
        let expected = noc_topology::metrics::average_distance(&Spidergon::new(16).unwrap());
        let measured = stats.mean_hops().unwrap();
        assert!(
            (measured - expected).abs() < 0.25,
            "measured {measured} vs analytical {expected}"
        );
    }

    #[test]
    fn latencies_reasonable_at_low_load() {
        let mut sim = spidergon_sim(8, 0.02);
        let stats = sim.run().unwrap();
        let mean = stats.latency.mean().unwrap();
        // Zero-load latency ~ hops + packet_len; spidergon-8 E[D] ~ 1.57.
        assert!(mean > 5.0 && mean < 20.0, "mean latency {mean}");
    }

    #[test]
    fn step_accessors_track_state() {
        let mut sim = spidergon_sim(8, 0.5);
        assert_eq!(sim.cycle(), 0);
        for _ in 0..10 {
            sim.step().unwrap();
        }
        assert_eq!(sim.cycle(), 10);
        assert_eq!(sim.config().packet_len, 6);
    }
}
