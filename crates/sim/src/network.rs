//! The wormhole network simulation: the paper's node model (Figure 4)
//! replicated at every node of a topology and advanced cycle by cycle.
//!
//! # Node model
//!
//! Every router has, per link direction:
//!
//! * an **input buffer** per virtual channel (one flit deep by
//!   default);
//! * a set of **output VC queues** (three flits deep by default) — a
//!   pair on Ring/Spidergon links (dateline deadlock avoidance), a
//!   single one on mesh links;
//!
//! plus a local **source queue** (the NI injection side, fed by a
//! Poisson process) and a local **ejection queue** drained by the IP
//! sink at a configurable rate (one flit per cycle by default — the
//! "destination node saturation" bottleneck of the hot-spot figures).
//!
//! # Cycle phases
//!
//! 1. **generate** — drain this cycle's packet-arrival events from the
//!    DES queue into source queues;
//! 2. **consume** — sinks pop up to `sink_rate` flits from ejection
//!    queues (packet latency recorded at tail consumption);
//! 3. **link transfer** — per unidirectional link, one flit moves from
//!    the sender's output VC queue to the receiver's input buffer if
//!    the buffer has space (signal-based flow control), VCs arbitrated
//!    round-robin;
//! 4. **switch allocation** — per router, input buffers and the source
//!    queue compete for output queues: head flits are routed
//!    ([`noc_routing::RoutingAlgorithm`]) and claim a (port, VC), body
//!    and tail flits follow the wormhole allocation; one write per
//!    output port per cycle, inputs served round-robin.
//!
//! # Sparse active-set core
//!
//! Phases 2–4 iterate an **active-router worklist** instead of all
//! nodes: a router is on the list exactly while it holds at least one
//! flit in any of its queues (source, input, output, ejection —
//! tracked by a per-node flit counter). A flitless router is a proven
//! no-op in every phase — its queues are empty and any lingering
//! wormhole allocation belongs to a packet whose remaining flits are
//! still upstream — so skipping it is bit-exact. The list is kept
//! sorted ascending, so phase side effects (probe events, audit
//! checks, statistics) fire in the same order as a dense `0..n` scan.
//! Round-robin pointers that previously advanced unconditionally every
//! cycle (`eject_rr`, `rr_offset`) are derived from the cycle counter
//! instead of stored, so an idle router needs no per-cycle pointer
//! maintenance either. When the network holds no flits at all,
//! [`Simulation::run`] fast-forwards the clock to the next scheduled
//! arrival. `SimConfig::sparse` disables all of this (dense scan) for
//! differential conformance; both modes produce bit-identical results.

use crate::audit::{AuditReport, Auditor};
use crate::buffer::{InputBuffer, OutputQueue, SlotRoute};
use crate::des::{EventQueue, SimTime};
use crate::flit::{ArenaFlit, FlitKind, PacketArena};
use crate::probe::{NetworkShape, NullProbe, Probe};
use crate::stats::LinkLoad;
use crate::{PacketId, SimConfig, SimError, SimStats};
use noc_routing::{CompiledRoutes, RoutingAlgorithm};
use noc_topology::{Direction, NodeId, Topology};
use noc_traffic::{Trace, TrafficPattern};
use rand::{rngs::SmallRng, SeedableRng};
use std::collections::VecDeque;

/// Sentinel in a node's direction→port map for directions the node has
/// no link in.
const NO_PORT: u8 = u8::MAX;

/// Per-node router and network-interface state.
///
/// Crate-visible so the [`Auditor`] can read (never write) buffer
/// contents when re-deriving occupancy and wormhole structure.
#[derive(Debug)]
pub(crate) struct NodeState {
    /// Link directions at this node (canonical order).
    pub(crate) dirs: Vec<Direction>,
    /// Per link direction: (peer node index, peer's input-port index).
    pub(crate) peer: Vec<(usize, usize)>,
    /// Output VC queues, indexed `[dir][vc]`.
    pub(crate) out: Vec<Vec<OutputQueue>>,
    /// Local ejection queues towards the IP sink (one per ejection
    /// channel; the IP consumes up to `sink_rate` flits per cycle).
    pub(crate) eject: Vec<OutputQueue>,
    /// Input buffers, indexed `[dir][vc]`.
    pub(crate) input: Vec<Vec<InputBuffer>>,
    /// Per link direction: VC round-robin pointer for link arbitration.
    /// Stored (not cycle-derived) because it only advances on actual
    /// transfers.
    link_rr: Vec<usize>,
    /// Flits awaiting injection, whole packets back to back.
    pub(crate) source_queue: VecDeque<ArenaFlit>,
    /// Wormhole allocation of the packet currently being injected.
    source_route: Option<SlotRoute>,
    /// Whether the traffic pattern generates packets here.
    is_source: bool,
    /// Port index per [`Direction::index`], [`NO_PORT`] where absent —
    /// lets the compiled-route fast path turn a direction into a port
    /// without scanning `dirs`.
    port_of: [u8; Direction::ALL.len()],
    /// Forward-slot index → `(port, vc)`, precomputed so the switch
    /// allocation loop never divides by the VC count (a real `div`
    /// instruction, since `vcs` is a runtime value).
    slot_map: Vec<(u8, u8)>,
}

/// A complete wormhole NoC simulation: topology + routing + traffic +
/// configuration, advanced in synchronous cycles.
///
/// The type parameter `P` is the attached observation probe
/// ([`crate::probe`]). It defaults to [`NullProbe`], whose empty
/// inlined hooks monomorphize away — the plain simulator pays nothing
/// for the instrumentation points. Attach a recording probe with
/// [`with_probe`](Simulation::with_probe).
///
/// # Examples
///
/// ```
/// use noc_routing::SpidergonAcrossFirst;
/// use noc_sim::{SimConfig, Simulation};
/// use noc_topology::Spidergon;
/// use noc_traffic::UniformRandom;
///
/// let topo = Spidergon::new(8)?;
/// let routing = SpidergonAcrossFirst::new(&topo);
/// let pattern = UniformRandom::new(8)?;
/// let config = SimConfig::builder()
///     .injection_rate(0.1)
///     .warmup_cycles(200)
///     .measure_cycles(2_000)
///     .build()?;
/// let mut sim = Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), config)?;
/// let stats = sim.run()?;
/// assert!(stats.packets_delivered > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulation<P: Probe = NullProbe> {
    topo: Box<dyn Topology>,
    pub(crate) routing: Box<dyn RoutingAlgorithm>,
    /// Precompiled next-hop table, present when the algorithm is
    /// deterministic and [`SimConfig::compiled_routes`] is enabled.
    /// `None` falls back to the dynamic algorithm (adaptive routing).
    compiled: Option<CompiledRoutes>,
    /// `None` in trace-replay mode.
    pattern: Option<Box<dyn TrafficPattern>>,
    config: SimConfig,
    pub(crate) vcs: usize,
    num_sources: usize,
    rng: SmallRng,
    pub(crate) nodes: Vec<NodeState>,
    /// Per-packet descriptor storage; buffers hold 12-byte
    /// [`ArenaFlit`] handles into it.
    pub(crate) arena: PacketArena,
    arrivals: EventQueue<Arrival>,
    cycle: u64,
    next_packet: u64,
    /// Flits currently inside routers (not in source queues).
    in_network: u64,
    /// Flits currently waiting in source queues, maintained
    /// incrementally (generation adds, injection subtracts) so
    /// [`source_backlog`](Self::source_backlog) is O(1) and consistent
    /// with [`in_network`](Self::flits_in_network) at every phase
    /// boundary of [`step`](Self::step).
    source_flits: u64,
    /// Lifetime totals (warmup included), for conservation checks.
    total_flits_generated: u64,
    total_flits_consumed: u64,
    idle_cycles: u64,
    measuring: bool,
    stats: SimStats,
    deliveries: Vec<Delivery>,
    /// Flits per (node, output dir) during the window.
    link_counters: Vec<Vec<u64>>,
    /// Delivered flits inside the current sampling window.
    window_flits: u64,
    /// Reusable buffer for routing candidate directions (hot path:
    /// filled and drained every head-flit allocation attempt).
    dir_scratch: Vec<Direction>,
    /// Reusable buffer for candidate (port, VC) allocations.
    route_scratch: Vec<SlotRoute>,
    /// `active_mask[v]` ⟺ `v` is in the worklist (on `active_nodes` or
    /// `pending_active`). Invariant at every cycle boundary:
    /// `active_mask[v] ⟺ node_flits[v].total() > 0`. Dense mode pins
    /// every entry `true`.
    active_mask: Vec<bool>,
    /// The active-router worklist, sorted ascending so sparse phase
    /// iteration replays the dense `0..n` event order.
    active_nodes: Vec<usize>,
    /// Routers activated mid-phase (generation, link arrival), merged
    /// into `active_nodes` before the next phase that must see them.
    pending_active: Vec<usize>,
    /// Flits resident at each node, split by buffer class and
    /// maintained incrementally at every flit movement. The total
    /// gates worklist retirement; the per-class fields let each phase
    /// skip a node with one counter load instead of scanning its
    /// queues (an active router rarely participates in all three
    /// phases the same cycle).
    node_flits: Vec<NodeFlits>,
    /// Σ over stepped cycles of the active-set size; with the cycle
    /// count this yields [`active_router_ratio`](Self::active_router_ratio).
    active_node_cycles: u64,
    /// Bit `d * vcs + vc` set ⟺ the output queue of `(v, d, vc)` is
    /// non-empty. Maintained in every mode; only the sparse phase
    /// loops consult it (skipping an empty queue is dense-identical).
    out_slots: Vec<u32>,
    /// Bit `d * vcs + vc` set ⟺ the input buffer of `(v, d, vc)` is
    /// non-empty (ready or not) — same bit layout as the forward slots
    /// of [`NodeState::slot_map`], so switch allocation tests a slot
    /// with one shift. Same maintenance contract as `out_dirs`.
    in_slots: Vec<u32>,
    /// Runtime invariant auditor, attached when
    /// [`SimConfig::audit`] is set. Boxed: the common unaudited path
    /// pays one pointer; hooks take/restore it around calls so the
    /// auditor can read the rest of the simulation.
    auditor: Option<Box<Auditor>>,
    /// Observation probe: hooks fire on every lifecycle transition.
    /// [`NullProbe`] (the default) compiles them all away.
    probe: P,
}

/// Per-node flit occupancy by buffer class. Kept in one 16-byte struct
/// so a phase's skip check and the retirement total stay on a single
/// cache line per node.
#[derive(Clone, Copy, Default, Debug)]
struct NodeFlits {
    /// Flits waiting in the source (injection) queue.
    source: u32,
    /// Flits held in input buffers.
    input: u32,
    /// Flits held in output VC queues.
    output: u32,
    /// Flits held in ejection queues.
    eject: u32,
}

impl NodeFlits {
    /// Flits at the node across all classes; zero ⟺ skippable.
    fn total(self) -> u32 {
        self.source + self.input + self.output + self.eject
    }
}

/// Sentinel output-port index for the local ejection queue.
pub(crate) const EJECT: usize = usize::MAX;

/// Upper bound on ports per router: every non-local [`Direction`] plus
/// the ejection port — lets switch allocation keep its per-port write
/// budget in a stack array instead of a per-cycle heap allocation.
const MAX_PORTS: usize = Direction::ALL.len() + 1;

/// A scheduled packet creation: from a stochastic pattern (destination
/// drawn at creation time) or from a trace entry (destination fixed).
#[derive(Clone, Copy, Debug)]
struct Arrival {
    node: usize,
    dst: Option<NodeId>,
}

/// Snapshot of flit occupancy across the network's buffer classes.
///
/// Produced by [`Simulation::occupancy`]; the sum of the router-side
/// fields equals [`Simulation::flits_in_network`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Occupancy {
    /// Flits waiting in source (injection) queues.
    pub source_flits: u64,
    /// Flits held in input buffers.
    pub input_flits: u64,
    /// Flits held in output VC queues.
    pub output_flits: u64,
    /// Flits held in ejection queues.
    pub eject_flits: u64,
}

impl Occupancy {
    /// Flits inside routers (everything except source queues).
    pub fn in_network(&self) -> u64 {
        self.input_flits + self.output_flits + self.eject_flits
    }
}

/// One delivered packet, recorded when
/// [`SimConfig::record_deliveries`] is enabled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Delivery {
    /// Cycle at which the tail flit was consumed by the sink.
    pub cycle: u64,
    /// The delivered packet.
    pub packet: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Latency in cycles (creation to tail consumption).
    pub latency: u64,
    /// Hops travelled by the head flit.
    pub hops: u64,
}

impl Simulation {
    /// Builds a simulation over `topology` with `routing`, `pattern`
    /// and `config`.
    ///
    /// The number of virtual channels per link is taken from
    /// [`RoutingAlgorithm::num_vcs_required`] (a pair on ring-like
    /// topologies, one on meshes), matching the paper's node model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeCountMismatch`] if the traffic pattern
    /// covers a different node count than the topology.
    pub fn new(
        topology: Box<dyn Topology>,
        routing: Box<dyn RoutingAlgorithm>,
        pattern: Box<dyn TrafficPattern>,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        if pattern.num_nodes() != topology.num_nodes() {
            return Err(SimError::NodeCountMismatch {
                topology: topology.num_nodes(),
                pattern: pattern.num_nodes(),
            });
        }
        Simulation::with_probe(topology, routing, pattern, config, NullProbe)
    }

    /// Builds a **trace-replay** simulation: packets are injected
    /// exactly as listed in `trace` (paper future work: application
    /// traffic), with no stochastic sources.
    ///
    /// The injection-rate and injection-process configuration fields
    /// are ignored in this mode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] if the trace addresses nodes
    /// outside the topology.
    pub fn with_trace(
        topology: Box<dyn Topology>,
        routing: Box<dyn RoutingAlgorithm>,
        trace: &Trace,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        if trace.num_nodes() != topology.num_nodes() {
            return Err(SimError::InvalidTrace {
                reason: format!(
                    "trace covers {} nodes but topology has {}",
                    trace.num_nodes(),
                    topology.num_nodes()
                ),
            });
        }
        let sources = trace.sources();
        let is_source = |v: NodeId| sources.binary_search(&v).is_ok();
        let mut sim = Self::assemble(topology, routing, None, config, &is_source, NullProbe)?;
        sim.num_sources = sources.len();
        for entry in trace.entries() {
            sim.arrivals.schedule(
                SimTime::new(entry.cycle as f64),
                Arrival {
                    node: entry.src.index(),
                    dst: Some(entry.dst),
                },
            );
        }
        Ok(sim)
    }
}

impl<P: Probe> Simulation<P> {
    /// Builds a simulation like [`Simulation::new`] with an observation
    /// probe attached ([`crate::probe`]).
    ///
    /// The probe receives the network description once
    /// ([`Probe::on_attach`]) and every lifecycle hook afterwards; read
    /// it back with [`probe`](Self::probe) or
    /// [`into_probe`](Self::into_probe) after running. Probes only
    /// observe — a probed run yields bit-identical
    /// [`SimStats`](crate::SimStats) to an unprobed run with the same
    /// seed.
    ///
    /// # Errors
    ///
    /// See [`Simulation::new`].
    pub fn with_probe(
        topology: Box<dyn Topology>,
        routing: Box<dyn RoutingAlgorithm>,
        pattern: Box<dyn TrafficPattern>,
        config: SimConfig,
        probe: P,
    ) -> Result<Simulation<P>, SimError> {
        if pattern.num_nodes() != topology.num_nodes() {
            return Err(SimError::NodeCountMismatch {
                topology: topology.num_nodes(),
                pattern: pattern.num_nodes(),
            });
        }
        let sources: Vec<NodeId> = pattern.sources();
        let is_source = |v: NodeId| sources.binary_search(&v).is_ok();
        let mut sim = Self::assemble(topology, routing, Some(pattern), config, &is_source, probe)?;
        sim.num_sources = sources.len();
        sim.schedule_initial_arrivals();
        Ok(sim)
    }

    fn assemble(
        topology: Box<dyn Topology>,
        routing: Box<dyn RoutingAlgorithm>,
        pattern: Option<Box<dyn TrafficPattern>>,
        config: SimConfig,
        is_source: &dyn Fn(NodeId) -> bool,
        mut probe: P,
    ) -> Result<Simulation<P>, SimError> {
        let vcs = routing.num_vcs_required().max(1);
        let n = topology.num_nodes();
        let mut nodes = Vec::with_capacity(n);
        for v in topology.node_ids() {
            let dirs = topology.directions(v);
            assert!(
                dirs.len() < MAX_PORTS,
                "router at {v} has {} link ports, more than any known topology",
                dirs.len()
            );
            // The per-router input-occupancy word keeps one bit per
            // forward slot (port, VC).
            assert!(
                dirs.len() * vcs <= u32::BITS as usize,
                "router at {v} has {} forward slots, more than the occupancy word holds",
                dirs.len() * vcs
            );
            let peer = dirs
                .iter()
                .map(|&d| {
                    let u = topology.neighbor(v, d).expect("listed direction");
                    let back = d.opposite().expect("link direction");
                    let u_dirs = topology.directions(u);
                    let idx = u_dirs
                        .iter()
                        .position(|&ud| ud == back)
                        .expect("symmetric link");
                    (u.index(), idx)
                })
                .collect();
            let out = dirs
                .iter()
                .map(|_| {
                    (0..vcs)
                        .map(|_| OutputQueue::new(config.output_buffer_capacity))
                        .collect()
                })
                .collect();
            let input = dirs
                .iter()
                .map(|_| {
                    (0..vcs)
                        .map(|_| InputBuffer::new(config.input_buffer_capacity))
                        .collect()
                })
                .collect();
            let mut port_of = [NO_PORT; Direction::ALL.len()];
            for (p, &d) in dirs.iter().enumerate() {
                port_of[d.index()] = p as u8;
            }
            let slot_map = (0..dirs.len() * vcs)
                .map(|idx| ((idx / vcs) as u8, (idx % vcs) as u8))
                .collect();
            nodes.push(NodeState {
                slot_map,
                link_rr: vec![0; dirs.len()],
                peer,
                out,
                eject: (0..config.sink_rate)
                    .map(|_| OutputQueue::new(config.output_buffer_capacity))
                    .collect(),
                input,
                source_queue: VecDeque::new(),
                source_route: None,
                is_source: is_source(v),
                port_of,
                dirs,
            });
        }

        let auditor = if config.audit {
            Some(Box::new(Auditor::attach(
                topology.as_ref(),
                routing.as_ref(),
                &nodes,
                vcs,
                &config,
            )))
        } else {
            None
        };

        probe.on_attach(NetworkShape {
            num_nodes: n,
            vcs,
            packet_len: config.packet_len,
            router_delay: config.router_delay,
            warmup_cycles: config.warmup_cycles,
            sink_channels: config.sink_rate,
            dirs: nodes.iter().map(|node| node.dirs.clone()).collect(),
            peer: nodes.iter().map(|node| node.peer.clone()).collect(),
        });

        let compiled = if config.compiled_routes {
            CompiledRoutes::compile(routing.as_ref(), topology.as_ref())
        } else {
            None
        };
        // Dense mode keeps every router permanently on the worklist;
        // sparse mode starts empty (no flits anywhere yet).
        let (active_mask, active_nodes) = if config.sparse {
            (vec![false; n], Vec::new())
        } else {
            (vec![true; n], (0..n).collect())
        };

        Ok(Simulation {
            topo: topology,
            routing,
            compiled,
            pattern,
            vcs,
            num_sources: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            nodes,
            arena: PacketArena::new(),
            arrivals: EventQueue::new(),
            cycle: 0,
            next_packet: 0,
            in_network: 0,
            source_flits: 0,
            total_flits_generated: 0,
            total_flits_consumed: 0,
            idle_cycles: 0,
            measuring: false,
            stats: SimStats::default(),
            deliveries: Vec::new(),
            link_counters: Vec::new(),
            window_flits: 0,
            dir_scratch: Vec::new(),
            route_scratch: Vec::new(),
            active_mask,
            active_nodes,
            pending_active: Vec::new(),
            node_flits: vec![NodeFlits::default(); n],
            active_node_cycles: 0,
            out_slots: vec![0; n],
            in_slots: vec![0; n],
            auditor,
            probe,
            config,
        })
    }

    fn schedule_initial_arrivals(&mut self) {
        let rate = self.config.packets_per_cycle();
        for v in 0..self.nodes.len() {
            if !self.nodes[v].is_source {
                continue;
            }
            let dt = self
                .config
                .injection_process
                .interarrival(&mut self.rng, rate);
            if dt.is_finite() {
                self.arrivals
                    .schedule(SimTime::new(dt), Arrival { node: v, dst: None });
            }
        }
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The configuration this simulation runs with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of flits currently inside routers (excluding source
    /// queues).
    pub fn flits_in_network(&self) -> u64 {
        self.in_network
    }

    /// A summary of where flits currently sit inside the network.
    pub fn occupancy(&self) -> Occupancy {
        let mut occ = Occupancy::default();
        for node in &self.nodes {
            occ.source_flits += node.source_queue.len() as u64;
            occ.eject_flits += node.eject.iter().map(|q| q.len() as u64).sum::<u64>();
            for port in &node.input {
                occ.input_flits += port.iter().map(|b| b.len() as u64).sum::<u64>();
            }
            for port in &node.out {
                occ.output_flits += port.iter().map(|q| q.len() as u64).sum::<u64>();
            }
        }
        occ
    }

    /// Per-packet delivery log (empty unless
    /// [`SimConfig::record_deliveries`] is enabled).
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Lifetime total of flits generated by sources (warmup included).
    pub fn total_flits_generated(&self) -> u64 {
        self.total_flits_generated
    }

    /// Lifetime total of flits consumed by sinks (warmup included).
    pub fn total_flits_consumed(&self) -> u64 {
        self.total_flits_consumed
    }

    /// Total flits waiting in source queues.
    ///
    /// Maintained incrementally alongside
    /// [`flits_in_network`](Self::flits_in_network): generation adds,
    /// injection subtracts, in the same phase as the queue mutation —
    /// so the conservation identity `generated = consumed + backlog +
    /// in-network` holds exactly at every cycle boundary (checked by
    /// the audit layer each audited cycle).
    pub fn source_backlog(&self) -> u64 {
        self.source_flits
    }

    /// Number of routers currently on the active worklist (all of them
    /// in dense mode).
    pub fn active_routers(&self) -> usize {
        self.active_nodes.len()
    }

    /// Mean fraction of routers touched per cycle since the start of
    /// the run: `Σ active-set size / (cycles × routers)`.
    ///
    /// Fast-forwarded cycles count as zero active routers; a dense run
    /// reports exactly `1.0`. Returns `0.0` before the first cycle.
    pub fn active_router_ratio(&self) -> f64 {
        let denom = self.cycle.saturating_mul(self.nodes.len() as u64);
        if denom == 0 {
            0.0
        } else {
            self.active_node_cycles as f64 / denom as f64
        }
    }

    /// Whether head flits are routed through a precompiled next-hop
    /// table (deterministic algorithms with
    /// [`SimConfig::compiled_routes`] enabled) rather than by invoking
    /// the routing algorithm per flit.
    pub fn uses_compiled_routes(&self) -> bool {
        self.compiled.is_some()
    }

    /// The audit findings so far, if auditing is enabled
    /// ([`SimConfig::audit`]).
    pub fn audit_report(&self) -> Option<&AuditReport> {
        self.auditor.as_ref().map(|a| a.report())
    }

    /// Detaches the auditor and returns its final report, if auditing
    /// was enabled. Subsequent cycles run unaudited.
    pub fn take_audit_report(&mut self) -> Option<AuditReport> {
        self.auditor.take().map(|a| a.into_report())
    }

    /// The attached observation probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the simulation and returns its probe (typically a
    /// [`crate::Recorder`] holding the captured trace).
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Runs warmup plus measurement and returns the collected
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if the deadlock watchdog fires.
    pub fn run(&mut self) -> Result<SimStats, SimError> {
        let total = self.config.total_cycles();
        while self.cycle < total {
            if self.cycle == self.config.warmup_cycles {
                self.begin_measurement();
            }
            if self.try_fast_forward(total) {
                continue;
            }
            self.step()?;
        }
        let mut stats = self.stats.clone();
        stats.measured_cycles = self.config.measure_cycles;
        stats.num_nodes = self.topo.num_nodes();
        stats.num_sources = self.num_sources;
        stats.backlog_flits = self.source_backlog();
        stats.per_link = self
            .link_counters
            .iter()
            .enumerate()
            .flat_map(|(v, dirs)| {
                let node_dirs = &self.nodes[v].dirs;
                dirs.iter().enumerate().map(move |(d, &flits)| LinkLoad {
                    from: NodeId::new(v),
                    direction: node_dirs[d],
                    flits,
                })
            })
            .collect();
        Ok(stats)
    }

    /// Jumps the clock over a provably empty stretch: no flit anywhere
    /// (network or source queues) means every cycle until the next
    /// scheduled arrival is a no-op, including its statistics — the
    /// only dense side effect, zero-valued throughput samples, is
    /// replayed here. Never crosses the warmup boundary (so
    /// measurement starts on time) and never fires under an auditor or
    /// an active probe, both of which observe every cycle.
    ///
    /// Returns `true` if the clock advanced.
    fn try_fast_forward(&mut self, total: u64) -> bool {
        if !self.config.sparse || P::ACTIVE || self.auditor.is_some() {
            return false;
        }
        if self.in_network != 0 || self.source_flits != 0 {
            return false;
        }
        let mut target = match self.arrivals.peek_time() {
            Some(t) => t.cycle().min(total),
            None => total,
        };
        if self.cycle < self.config.warmup_cycles {
            target = target.min(self.config.warmup_cycles);
        }
        if target <= self.cycle {
            return false;
        }
        if self.measuring && self.config.sample_interval > 0 {
            let w = self.config.warmup_cycles;
            let i = self.config.sample_interval;
            // A skipped cycle c emits a sample when (c + 1 - w) is a
            // multiple of i. Nothing is delivered while skipping, but
            // the first boundary may close a window that saw deliveries
            // before the network drained — same formula as the dense
            // path; every later window in the stretch samples zero.
            for _ in ((self.cycle - w) / i)..((target - w) / i) {
                let delivered_now = self.stats.flits_delivered;
                let in_window = delivered_now - self.window_flits;
                self.stats
                    .throughput_samples
                    .push(in_window as f64 / i as f64);
                self.window_flits = delivered_now;
            }
        }
        self.cycle = target;
        true
    }

    fn begin_measurement(&mut self) {
        self.stats = SimStats::default();
        let n = self.nodes.len();
        self.stats.per_node_delivered = vec![0; n];
        self.stats.per_node_generated = vec![0; n];
        self.link_counters = self
            .nodes
            .iter()
            .map(|node| vec![0; node.dirs.len()])
            .collect();
        self.window_flits = 0;
        self.measuring = true;
    }

    /// Puts router `v` on the active worklist if it is not already
    /// there. Activations land on `pending_active` and are merged (in
    /// node order) before the next phase that must see them.
    #[inline]
    fn activate(&mut self, v: usize) {
        if !self.active_mask[v] {
            self.active_mask[v] = true;
            self.pending_active.push(v);
        }
    }

    /// Folds `pending_active` into the sorted worklist.
    fn merge_pending(&mut self) {
        if self.pending_active.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending_active);
        pending.sort_unstable();
        for v in pending.drain(..) {
            if let Err(pos) = self.active_nodes.binary_search(&v) {
                self.active_nodes.insert(pos, v);
            }
        }
        self.pending_active = pending;
    }

    /// Drops routers whose flit count hit zero from the worklist
    /// (sparse mode only; dense mode keeps everyone).
    fn retire_idle(&mut self) {
        if !self.config.sparse {
            return;
        }
        let Simulation {
            active_nodes,
            active_mask,
            node_flits,
            ..
        } = self;
        active_nodes.retain(|&v| {
            if node_flits[v].total() > 0 {
                true
            } else {
                active_mask[v] = false;
                false
            }
        });
    }

    /// Advances the simulation by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if no flit has moved for the
    /// configured threshold while flits are in flight.
    pub fn step(&mut self) -> Result<(), SimError> {
        let mut moved = false;
        self.generate();
        self.merge_pending();
        moved |= self.consume();
        moved |= self.transfer_links();
        // Link arrivals can enable same-cycle switch allocation at the
        // receiver (zero router delay), so merge before allocating.
        self.merge_pending();
        moved |= self.allocate_switches();
        self.active_node_cycles += self.active_nodes.len() as u64;
        self.end_of_cycle_bookkeeping();
        self.probe.on_cycle_end(self.cycle);
        if let Some(mut auditor) = self.auditor.take() {
            auditor.on_cycle_end(&*self);
            self.auditor = Some(auditor);
        }
        self.retire_idle();

        if !moved && self.in_network > 0 {
            self.idle_cycles += 1;
            if self.idle_cycles >= self.config.stall_threshold {
                // Before reporting the stall, let the auditor inspect
                // the wait-for graph to tell deadlock from starvation.
                if let Some(mut auditor) = self.auditor.take() {
                    auditor.on_stall(&*self);
                    self.auditor = Some(auditor);
                }
                return Err(SimError::Stalled {
                    cycle: self.cycle,
                    flits_in_flight: self.in_network,
                });
            }
        } else {
            self.idle_cycles = 0;
        }
        self.cycle += 1;
        Ok(())
    }

    /// Phase 1: drain this cycle's arrival events into source queues
    /// and reschedule each source's next arrival.
    fn generate(&mut self) {
        let deadline = SimTime::new((self.cycle + 1) as f64);
        let rate = self.config.packets_per_cycle();
        while let Some((t, arrival)) = self.arrivals.pop_before(deadline) {
            let v = arrival.node;
            let src = NodeId::new(v);
            let dst = match (arrival.dst, &self.pattern) {
                (Some(dst), _) => dst,
                (None, Some(pattern)) => pattern.pick_destination(src, &mut self.rng),
                (None, None) => unreachable!("pattern-less arrival without destination"),
            };
            let pid = PacketId::new(self.next_packet);
            self.next_packet += 1;
            let len = self.config.packet_len;
            let pkt = self.arena.alloc(pid, src, dst, self.cycle);
            self.probe.on_generate(self.cycle, pid, src, dst, len);
            self.total_flits_generated += len as u64;
            self.source_flits += len as u64;
            if self.measuring {
                self.stats.packets_generated += 1;
                self.stats.flits_generated += len as u64;
                self.stats.per_node_generated[v] += 1;
            }
            let queue = &mut self.nodes[v].source_queue;
            for i in 0..len {
                let kind = match (i, len) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (i, l) if i + 1 == l => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                queue.push_back(ArenaFlit { pkt, kind, hops: 0 });
            }
            self.node_flits[v].source += len as u32;
            self.activate(v);
            // Stochastic sources reschedule themselves; trace arrivals
            // were all scheduled up front.
            if arrival.dst.is_none() {
                let dt = self
                    .config
                    .injection_process
                    .interarrival(&mut self.rng, rate);
                if dt.is_finite() {
                    self.arrivals
                        .schedule(t.advanced(dt), Arrival { node: v, dst: None });
                }
            }
        }
    }

    /// Phase 2: sinks drain ejection queues round-robin, up to
    /// `sink_rate` flits per node per cycle.
    fn consume(&mut self) -> bool {
        let mut moved = false;
        let channels = self.config.sink_rate;
        // The sink round-robin pointer used to advance once per node
        // per cycle unconditionally, so it is a pure function of the
        // cycle counter — derived here instead of stored, which keeps
        // idle routers entirely untouched.
        let start = (self.cycle % channels as u64) as usize;
        let sparse = self.config.sparse;
        let active = std::mem::take(&mut self.active_nodes);
        for &v in &active {
            // Dense-identical skip: a node with no ejected flits pops
            // nothing from any channel.
            if sparse && self.node_flits[v].eject == 0 {
                continue;
            }
            let mut budget = self.config.sink_rate;
            'outer: for k in 0..channels {
                let mut q = start + k;
                if q >= channels {
                    q -= channels;
                }
                while budget > 0 {
                    let Some(flit) = self.nodes[v].eject[q].pop() else {
                        break;
                    };
                    budget -= 1;
                    moved = true;
                    self.in_network -= 1;
                    self.node_flits[v].eject -= 1;
                    self.total_flits_consumed += 1;
                    if self.auditor.is_some() || P::ACTIVE {
                        let full = self.arena.materialize(flit);
                        if let Some(mut auditor) = self.auditor.take() {
                            auditor.on_consume(self.cycle, v, &full);
                            self.auditor = Some(auditor);
                        }
                        self.probe.on_consume(self.cycle, v, q, &full);
                    }
                    if self.measuring {
                        self.stats.flits_delivered += 1;
                        self.stats.per_node_delivered[v] += 1;
                    }
                    if flit.kind.is_tail() {
                        // The tail crossed exactly the links the head
                        // did (wormhole), so its own counter is the
                        // packet's hop count; and it is the last flit
                        // of its packet to leave the network, so its
                        // arena slot can be recycled here.
                        let hops = u64::from(flit.hops);
                        let created = self.arena.created(flit.pkt);
                        if self.measuring {
                            self.stats.packets_delivered += 1;
                            self.stats.total_hops += hops;
                            self.stats.latency.record(self.cycle - created);
                        }
                        if self.config.record_deliveries {
                            self.deliveries.push(Delivery {
                                cycle: self.cycle,
                                packet: self.arena.packet_id(flit.pkt),
                                src: self.arena.src(flit.pkt),
                                dst: self.arena.dst(flit.pkt),
                                latency: self.cycle - created,
                                hops,
                            });
                        }
                        self.arena.free(flit.pkt);
                    }
                }
                if budget == 0 {
                    break 'outer;
                }
            }
        }
        self.active_nodes = active;
        moved
    }

    /// Phase 3: one flit per unidirectional link crosses into the
    /// downstream input buffer, VCs arbitrated round-robin.
    ///
    /// Runs in a single pass with no intermediate move list: per-link
    /// decisions are independent within the phase, because a link
    /// `(v, d)` is the only writer of its downstream input buffer and
    /// the only reader of its upstream output queues — no transfer on
    /// another link can change this link's decision, and links have no
    /// self-loops (`v != peer`). The same independence makes the
    /// active-set scan equivalent to the dense scan: links out of a
    /// skipped router have empty output queues and transfer nothing.
    fn transfer_links(&mut self) -> bool {
        let mut moved = false;
        let eligible = self.cycle + self.config.router_delay;
        let sparse = self.config.sparse;
        let active = std::mem::take(&mut self.active_nodes);
        for &v in &active {
            // Dense-identical skip: every output queue of this node is
            // empty, so none of its links transfers anything.
            if sparse && self.node_flits[v].output == 0 {
                continue;
            }
            // Snapshot: bits only clear during this node's turn (pushes
            // happen in the allocation phase), so a stale set bit just
            // re-checks an emptied queue.
            let slot_mask = self.out_slots[v];
            let vc_mask = ((1u64 << self.vcs) - 1) as u32;
            for d in 0..self.nodes[v].dirs.len() {
                if sparse && slot_mask & (vc_mask << (d * self.vcs)) == 0 {
                    continue;
                }
                let (peer, peer_port) = self.nodes[v].peer[d];
                let start = self.nodes[v].link_rr[d];
                for k in 0..self.vcs {
                    let mut vc = start + k;
                    if vc >= self.vcs {
                        vc -= self.vcs;
                    }
                    if sparse && slot_mask & (1 << (d * self.vcs + vc)) == 0 {
                        continue;
                    }
                    if self.nodes[v].out[d][vc].front().is_some()
                        && self.nodes[peer].input[peer_port][vc].has_space()
                    {
                        let mut flit = self.nodes[v].out[d][vc].pop().expect("checked above");
                        self.nodes[v].link_rr[d] = if vc + 1 == self.vcs { 0 } else { vc + 1 };
                        flit.hops += 1;
                        if self.auditor.is_some() || P::ACTIVE {
                            let full = self.arena.materialize(flit);
                            if let Some(mut auditor) = self.auditor.take() {
                                auditor.on_link_transfer(&*self, v, d, vc, &full);
                                self.auditor = Some(auditor);
                            }
                            self.probe.on_link_traverse(self.cycle, v, d, vc, &full);
                        }
                        self.nodes[peer].input[peer_port][vc].receive(flit, eligible);
                        self.in_slots[peer] |= 1 << (peer_port * self.vcs + vc);
                        if self.nodes[v].out[d][vc].is_empty() {
                            self.out_slots[v] &= !(1 << (d * self.vcs + vc));
                        }
                        self.node_flits[v].output -= 1;
                        self.node_flits[peer].input += 1;
                        self.activate(peer);
                        if self.measuring {
                            self.stats.link_traversals += 1;
                            self.link_counters[v][d] += 1;
                        }
                        moved = true;
                        break;
                    }
                }
            }
        }
        self.active_nodes = active;
        moved
    }

    /// Phase 4: switch allocation at every active router.
    fn allocate_switches(&mut self) -> bool {
        let mut moved = false;
        let sparse = self.config.sparse;
        let active = std::mem::take(&mut self.active_nodes);
        for &v in &active {
            // Dense-identical skip: with nothing in the source queue
            // and nothing in any input buffer, every slot's inject /
            // forward attempt returns without touching state.
            let flits = self.node_flits[v];
            if sparse && flits.source == 0 && flits.input == 0 {
                continue;
            }
            moved |= self.allocate_node(v);
        }
        self.active_nodes = active;
        moved
    }

    /// Runs switch allocation for one router: rotating priority over
    /// the source queue and every (input port, VC), one write per
    /// output port per cycle.
    fn allocate_node(&mut self, v: usize) -> bool {
        let num_dirs = self.nodes[v].dirs.len();
        let nslots = 1 + num_dirs * self.vcs;
        // Like the sink pointer, the rotating priority used to advance
        // once per node per cycle unconditionally — cycle-derived, so
        // idle routers carry no allocation state at all.
        let start = (self.cycle % nslots as u64) as usize;
        // Writes left per output port this cycle: one per link port
        // (crossbar), `sink_rate` for the ejection port (the IP
        // interface is as wide as its consumption rate). A stack array
        // (ports bounded by MAX_PORTS, asserted at assembly) so the
        // per-node-per-cycle bookkeeping never touches the heap.
        let mut used = [1usize; MAX_PORTS];
        used[num_dirs] = self.config.sink_rate;
        let mut moved = false;
        // Dense-identical slot skips: an empty source queue makes the
        // inject slot a no-op, an empty input buffer makes its forward
        // slot a no-op. Snapshots are safe — bits only clear during
        // this node's allocation, and a stale set bit just re-runs the
        // cheap empty check.
        let sparse = self.config.sparse;
        let has_source = self.node_flits[v].source > 0;
        let slot_mask = self.in_slots[v];
        for k in 0..nslots {
            let mut slot = start + k;
            if slot >= nslots {
                slot -= nslots;
            }
            if slot == 0 {
                if !sparse || has_source {
                    moved |= self.try_inject(v, &mut used);
                }
            } else {
                if sparse && slot_mask & (1 << (slot - 1)) == 0 {
                    continue;
                }
                let (d, vc) = self.nodes[v].slot_map[slot - 1];
                moved |= self.try_forward(v, usize::from(d), usize::from(vc), &mut used);
            }
        }
        moved
    }

    /// Computes the candidate (output port, VC) allocations for a head
    /// flit at node `v` arriving on virtual channel `in_vc`, in the
    /// routing algorithm's preference order, appending them to `out`.
    /// Deterministic algorithms yield exactly one candidate — served
    /// from the precompiled table when available; adaptive ones
    /// several, and the switch takes the first whose queue can accept
    /// the flit.
    fn head_routes_into(
        &mut self,
        v: usize,
        flit: &ArenaFlit,
        in_vc: usize,
        out: &mut Vec<SlotRoute>,
    ) {
        let here = NodeId::new(v);
        let dst = self.arena.dst(flit.pkt);
        if let Some(table) = &self.compiled {
            let hop = table.hop(here, dst);
            if hop.dir == Direction::Local {
                // Pick the first ejection channel that can accept the
                // head (wormhole ownership: one packet per channel).
                let vc = self.nodes[v]
                    .eject
                    .iter()
                    .position(|q| q.can_accept(flit))
                    .unwrap_or(0);
                out.push(SlotRoute {
                    out_port: EJECT,
                    out_vc: vc,
                    packet: flit.pkt,
                });
            } else {
                let port = usize::from(self.nodes[v].port_of[hop.dir.index()]);
                debug_assert!(port < self.nodes[v].dirs.len(), "compiled absent port");
                out.push(SlotRoute {
                    out_port: port,
                    out_vc: usize::from(hop.out_vc[in_vc]),
                    packet: flit.pkt,
                });
            }
            return;
        }
        // Reuse the direction scratch buffer (taken so the routing call
        // can borrow `self`); blocked head flits retry every cycle, so
        // this runs far too often to allocate each time.
        let mut dirs = std::mem::take(&mut self.dir_scratch);
        dirs.clear();
        self.routing.candidates_into(here, dst, &mut dirs);
        for &dir in &dirs {
            if dir == Direction::Local {
                let vc = self.nodes[v]
                    .eject
                    .iter()
                    .position(|q| q.can_accept(flit))
                    .unwrap_or(0);
                out.push(SlotRoute {
                    out_port: EJECT,
                    out_vc: vc,
                    packet: flit.pkt,
                });
                continue;
            }
            let port = self.nodes[v]
                .dirs
                .iter()
                .position(|&d| d == dir)
                .unwrap_or_else(|| panic!("routing chose absent direction {dir} at {here}"));
            let vc = self.routing.vc_for_hop(here, dst, dir, in_vc);
            assert!(vc < self.vcs, "routing chose VC {vc} of {}", self.vcs);
            out.push(SlotRoute {
                out_port: port,
                out_vc: vc,
                packet: flit.pkt,
            });
        }
        self.dir_scratch = dirs;
    }

    /// Tries each candidate allocation in order; returns the one that
    /// was placed, if any.
    fn try_place(
        &mut self,
        v: usize,
        flit: &ArenaFlit,
        routes: &[SlotRoute],
        used: &mut [usize],
    ) -> Option<SlotRoute> {
        routes
            .iter()
            .copied()
            .find(|&route| self.enqueue_output(v, flit, route, used))
    }

    /// Tries to move the head-of-line flit of input `(d, vc)` at node
    /// `v` into its output queue.
    fn try_forward(&mut self, v: usize, d: usize, vc: usize, used: &mut [usize]) -> bool {
        let now = self.cycle;
        let Some(&flit) = self.nodes[v].input[d][vc].front_ready(now) else {
            return false;
        };
        let route = if flit.kind.is_head() {
            let mut routes = std::mem::take(&mut self.route_scratch);
            routes.clear();
            self.head_routes_into(v, &flit, vc, &mut routes);
            let placed = self.try_place(v, &flit, &routes, used);
            self.route_scratch = routes;
            let Some(route) = placed else {
                return false;
            };
            route
        } else {
            // Body and tail flits reuse the packet's wormhole
            // allocation: the candidate list is one known route, so
            // enqueue it directly instead of round-tripping the
            // scratch vector (5/6 of all forwards at the paper's
            // 6-flit packets).
            let r = self.nodes[v].input[d][vc]
                .route
                .expect("body/tail flit with no wormhole allocation");
            assert_eq!(r.packet, flit.pkt, "stale wormhole allocation");
            if !self.enqueue_output(v, &flit, r, used) {
                return false;
            }
            r
        };
        if P::ACTIVE {
            let out_port = (route.out_port != EJECT).then_some(route.out_port);
            let full = self.arena.materialize(flit);
            self.probe
                .on_buffer_exit(self.cycle, v, d, vc, out_port, route.out_vc, &full);
        }
        let node = &mut self.nodes[v];
        node.input[d][vc].take_ready(now);
        node.input[d][vc].route = if flit.kind.is_tail() {
            None
        } else {
            Some(route)
        };
        if node.input[d][vc].is_empty() {
            self.in_slots[v] &= !(1 << (d * self.vcs + vc));
        }
        self.node_flits[v].input -= 1;
        true
    }

    /// Tries to inject the head-of-line flit of the source queue.
    fn try_inject(&mut self, v: usize, used: &mut [usize]) -> bool {
        let Some(&flit) = self.nodes[v].source_queue.front() else {
            return false;
        };
        let route = if flit.kind.is_head() {
            let mut routes = std::mem::take(&mut self.route_scratch);
            routes.clear();
            self.head_routes_into(v, &flit, 0, &mut routes);
            assert!(
                routes.iter().all(|r| r.out_port != EJECT),
                "packet addressed to its own source"
            );
            let placed = self.try_place(v, &flit, &routes, used);
            self.route_scratch = routes;
            let Some(route) = placed else {
                return false;
            };
            route
        } else {
            // Single known route (the packet's injection allocation) —
            // same direct-enqueue shortcut as the forward path.
            let r = self.nodes[v]
                .source_route
                .expect("injecting body/tail with no allocation");
            assert_eq!(r.packet, flit.pkt, "stale injection allocation");
            if !self.enqueue_output(v, &flit, r, used) {
                return false;
            }
            r
        };
        if P::ACTIVE {
            let full = self.arena.materialize(flit);
            self.probe
                .on_inject(self.cycle, v, route.out_port, route.out_vc, &full);
        }
        let node = &mut self.nodes[v];
        node.source_queue.pop_front();
        node.source_route = if flit.kind.is_tail() {
            None
        } else {
            Some(route)
        };
        self.node_flits[v].source -= 1;
        self.in_network += 1;
        self.source_flits -= 1;
        if self.measuring {
            self.stats.flits_injected += 1;
        }
        true
    }

    /// Shared tail of [`try_forward`](Self::try_forward) /
    /// [`try_inject`](Self::try_inject): checks the crossbar and buffer
    /// constraints and performs the enqueue.
    fn enqueue_output(
        &mut self,
        v: usize,
        flit: &ArenaFlit,
        route: SlotRoute,
        used: &mut [usize],
    ) -> bool {
        let num_dirs = self.nodes[v].dirs.len();
        let used_idx = if route.out_port == EJECT {
            num_dirs
        } else {
            route.out_port
        };
        if used[used_idx] == 0 {
            return false;
        }
        let queue = if route.out_port == EJECT {
            &mut self.nodes[v].eject[route.out_vc]
        } else {
            &mut self.nodes[v].out[route.out_port][route.out_vc]
        };
        if !queue.can_accept(flit) {
            return false;
        }
        queue.push(*flit);
        if route.out_port == EJECT {
            self.node_flits[v].eject += 1;
        } else {
            self.node_flits[v].output += 1;
            self.out_slots[v] |= 1 << (route.out_port * self.vcs + route.out_vc);
        }
        used[used_idx] -= 1;
        true
    }

    /// Phase 5: per-cycle statistics updates.
    fn end_of_cycle_bookkeeping(&mut self) {
        if self.measuring && self.config.sample_interval > 0 {
            let elapsed = self.cycle + 1 - self.config.warmup_cycles;
            if elapsed.is_multiple_of(self.config.sample_interval) {
                let delivered_now = self.stats.flits_delivered;
                let in_window = delivered_now - self.window_flits;
                self.stats
                    .throughput_samples
                    .push(in_window as f64 / self.config.sample_interval as f64);
                self.window_flits = delivered_now;
            }
        }
        if self.measuring {
            // Only active routers can hold source backlog (backlogged
            // flits keep their router on the worklist).
            let max_backlog = self
                .active_nodes
                .iter()
                .map(|&v| u64::from(self.node_flits[v].source))
                .max()
                .unwrap_or(0);
            self.stats.max_source_backlog = self.stats.max_source_backlog.max(max_backlog);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::{MeshXY, RingShortestPath, SpidergonAcrossFirst};
    use noc_topology::{RectMesh, Ring, Spidergon};
    use noc_traffic::{SingleHotspot, UniformRandom};

    fn quick_config(lambda: f64) -> SimConfig {
        SimConfig::builder()
            .injection_rate(lambda)
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .seed(12345)
            .build()
            .unwrap()
    }

    fn spidergon_sim(n: usize, lambda: f64) -> Simulation {
        let topo = Spidergon::new(n).unwrap();
        let routing = SpidergonAcrossFirst::new(&topo);
        let pattern = UniformRandom::new(n).unwrap();
        Simulation::new(
            Box::new(topo),
            Box::new(routing),
            Box::new(pattern),
            quick_config(lambda),
        )
        .unwrap()
    }

    fn spidergon_sim_with(n: usize, config: SimConfig) -> Simulation {
        let topo = Spidergon::new(n).unwrap();
        let routing = SpidergonAcrossFirst::new(&topo);
        let pattern = UniformRandom::new(n).unwrap();
        Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), config).unwrap()
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let topo = Ring::new(8).unwrap();
        let routing = RingShortestPath::new(&topo);
        let pattern = UniformRandom::new(9).unwrap();
        let err = Simulation::new(
            Box::new(topo),
            Box::new(routing),
            Box::new(pattern),
            quick_config(0.1),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::NodeCountMismatch { .. }));
    }

    #[test]
    fn low_load_uniform_delivers_packets() {
        let mut sim = spidergon_sim(8, 0.05);
        let stats = sim.run().unwrap();
        assert!(stats.packets_delivered > 10, "{stats}");
        assert_eq!(stats.num_nodes, 8);
        assert_eq!(stats.num_sources, 8);
        // At low load everything generated is eventually delivered.
        assert!(stats.acceptance_ratio() > 0.99);
    }

    #[test]
    fn zero_rate_network_stays_silent() {
        let mut sim = spidergon_sim(8, 0.0);
        let stats = sim.run().unwrap();
        assert_eq!(stats.packets_generated, 0);
        assert_eq!(stats.packets_delivered, 0);
        assert_eq!(sim.flits_in_network(), 0);
    }

    #[test]
    fn identical_seeds_give_identical_results() {
        let a = spidergon_sim(10, 0.2).run().unwrap();
        let b = spidergon_sim(10, 0.2).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut sim_a = spidergon_sim(10, 0.2);
        let stats_a = sim_a.run().unwrap();
        let topo = Spidergon::new(10).unwrap();
        let routing = SpidergonAcrossFirst::new(&topo);
        let pattern = UniformRandom::new(10).unwrap();
        let mut cfg = SimConfig::builder();
        let cfg = cfg
            .injection_rate(0.2)
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .seed(999)
            .build()
            .unwrap();
        let mut sim_b =
            Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), cfg).unwrap();
        let stats_b = sim_b.run().unwrap();
        assert_ne!(stats_a.packets_generated, 0);
        assert_ne!(stats_a, stats_b);
    }

    #[test]
    fn flit_conservation_every_cycle() {
        let mut sim = spidergon_sim(8, 0.3);
        let mut delivered = 0u64;
        let mut generated = 0u64;
        for _ in 0..1_000 {
            let before_backlog = sim.source_backlog();
            let before_net = sim.flits_in_network();
            let packets_before = sim.next_packet;
            sim.step().unwrap();
            let new_packets = sim.next_packet - packets_before;
            generated += new_packets * 6;
            // delivered = generated - backlog - in_network (conservation)
            delivered = generated
                .checked_sub(sim.source_backlog() + sim.flits_in_network())
                .expect("conservation violated");
            let _ = (before_backlog, before_net);
        }
        assert!(delivered > 0);
    }

    #[test]
    fn hotspot_throughput_capped_by_sink_rate() {
        // Paper Figure 6: with one hot-spot the aggregate throughput
        // saturates at the destination's consumption rate (~1
        // flit/cycle) regardless of topology.
        for (label, mut sim) in [
            ("ring", {
                let topo = Ring::new(8).unwrap();
                let routing = RingShortestPath::new(&topo);
                let pattern = SingleHotspot::new(8, NodeId::new(0)).unwrap();
                Simulation::new(
                    Box::new(topo),
                    Box::new(routing),
                    Box::new(pattern),
                    quick_config(0.6),
                )
                .unwrap()
            }),
            ("mesh", {
                let topo = RectMesh::new(2, 4).unwrap();
                let routing = MeshXY::new(&topo);
                let pattern = SingleHotspot::new(8, NodeId::new(0)).unwrap();
                Simulation::new(
                    Box::new(topo),
                    Box::new(routing),
                    Box::new(pattern),
                    quick_config(0.6),
                )
                .unwrap()
            }),
        ] {
            let stats = sim.run().unwrap();
            let tp = stats.throughput_flits_per_cycle();
            assert!(tp <= 1.02, "{label}: throughput {tp} above sink rate");
            assert!(tp > 0.85, "{label}: throughput {tp} far below sink rate");
        }
    }

    #[test]
    fn saturated_network_reports_backlog() {
        let mut sim = spidergon_sim(8, 1.0);
        let stats = sim.run().unwrap();
        assert!(stats.acceptance_ratio() < 1.0, "{stats}");
        assert!(stats.backlog_flits > 0);
        assert!(stats.max_source_backlog > 0);
    }

    #[test]
    fn mean_hops_close_to_average_distance_at_low_load() {
        let mut sim = spidergon_sim(16, 0.02);
        let stats = sim.run().unwrap();
        let expected = noc_topology::metrics::average_distance(&Spidergon::new(16).unwrap());
        let measured = stats.mean_hops().unwrap();
        assert!(
            (measured - expected).abs() < 0.25,
            "measured {measured} vs analytical {expected}"
        );
    }

    #[test]
    fn latencies_reasonable_at_low_load() {
        let mut sim = spidergon_sim(8, 0.02);
        let stats = sim.run().unwrap();
        let mean = stats.latency.mean().unwrap();
        // Zero-load latency ~ hops + packet_len; spidergon-8 E[D] ~ 1.57.
        assert!(mean > 5.0 && mean < 20.0, "mean latency {mean}");
    }

    #[test]
    fn step_accessors_track_state() {
        let mut sim = spidergon_sim(8, 0.5);
        assert_eq!(sim.cycle(), 0);
        for _ in 0..10 {
            sim.step().unwrap();
        }
        assert_eq!(sim.cycle(), 10);
        assert_eq!(sim.config().packet_len, 6);
    }

    fn variant_config(lambda: f64, sparse: bool, compiled: bool) -> SimConfig {
        SimConfig::builder()
            .injection_rate(lambda)
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .seed(777)
            .record_deliveries(true)
            .sparse(sparse)
            .compiled_routes(compiled)
            .build()
            .unwrap()
    }

    #[test]
    fn sparse_matches_dense_bit_for_bit() {
        for lambda in [0.02, 0.3] {
            let mut sparse = spidergon_sim_with(12, variant_config(lambda, true, true));
            let mut dense = spidergon_sim_with(12, variant_config(lambda, false, true));
            let a = sparse.run().unwrap();
            let b = dense.run().unwrap();
            assert_eq!(a, b, "stats diverged at lambda {lambda}");
            assert_eq!(
                sparse.deliveries(),
                dense.deliveries(),
                "deliveries diverged at lambda {lambda}"
            );
            assert!(sparse.uses_compiled_routes());
        }
    }

    #[test]
    fn compiled_routes_match_dynamic_routing() {
        let mut compiled = spidergon_sim_with(12, variant_config(0.2, true, true));
        let mut dynamic = spidergon_sim_with(12, variant_config(0.2, true, false));
        assert!(compiled.uses_compiled_routes());
        assert!(!dynamic.uses_compiled_routes());
        let a = compiled.run().unwrap();
        let b = dynamic.run().unwrap();
        assert_eq!(a, b);
        assert_eq!(compiled.deliveries(), dynamic.deliveries());
    }

    #[test]
    fn active_ratio_small_at_low_load_and_one_when_dense() {
        let mut sparse = spidergon_sim_with(16, variant_config(0.01, true, true));
        sparse.run().unwrap();
        let ratio = sparse.active_router_ratio();
        assert!(ratio > 0.0 && ratio < 0.5, "active ratio {ratio}");

        let mut dense = spidergon_sim_with(16, variant_config(0.01, false, true));
        dense.run().unwrap();
        let dense_ratio = dense.active_router_ratio();
        assert!(
            (dense_ratio - 1.0).abs() < 1e-12,
            "dense ratio {dense_ratio}"
        );
    }

    #[test]
    fn fast_forward_replays_zero_throughput_samples() {
        // Zero injection: sparse mode fast-forwards the whole run,
        // dense mode steps every cycle; the sampled throughput series
        // must come out identical anyway.
        let sparse_stats = spidergon_sim_with(8, variant_config(0.0, true, true))
            .run()
            .unwrap();
        let dense_stats = spidergon_sim_with(8, variant_config(0.0, false, true))
            .run()
            .unwrap();
        assert_eq!(sparse_stats, dense_stats);
    }
}
