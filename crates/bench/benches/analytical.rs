//! Criterion benches for the analytical figures (2, 3 and the link
//! table): pure graph computation, no simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_core::figures;
use noc_topology::{metrics, Spidergon, Topology};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_diameter_vs_n_up_to_64", |b| {
        b.iter(|| black_box(figures::fig2(black_box(64))))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_avg_distance_vs_n_up_to_64", |b| {
        b.iter(|| black_box(figures::fig3(black_box(64))))
    });
}

fn bench_table_links(c: &mut Criterion) {
    c.bench_function("table_links", |b| {
        b.iter(|| black_box(figures::table_links(black_box(&[8, 16, 24, 32, 48, 64]))))
    });
}

fn bench_all_pairs_bfs(c: &mut Criterion) {
    let sg = Spidergon::new(64).unwrap();
    let graph = sg.graph();
    c.bench_function("all_pairs_bfs_spidergon_64", |b| {
        b.iter(|| black_box(graph.all_pairs_distances()))
    });
    c.bench_function("topology_metrics_spidergon_64", |b| {
        b.iter(|| black_box(metrics::TopologyMetrics::compute(&sg)))
    });
}

criterion_group!(
    name = analytical;
    config = Criterion::default().sample_size(20);
    targets = bench_fig2, bench_fig3, bench_table_links, bench_all_pairs_bfs
);
criterion_main!(analytical);
