//! Criterion benches for the simulation figures: one representative
//! kernel per paper figure, sized to finish in seconds while exercising
//! exactly the code path the full regeneration uses.
//!
//! * `fig5_*` — validation runs (uniform, light load);
//! * `fig6_7_*` — single hot-spot sweeps;
//! * `fig8_9_*` — double hot-spot (placement A);
//! * `fig10_11_*` — homogeneous uniform sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_core::{Experiment, TopologySpec, TrafficSpec};
use noc_sim::SimConfig;
use noc_traffic::PlacementScenario;
use std::hint::black_box;

fn config(lambda: f64) -> SimConfig {
    SimConfig::builder()
        .injection_rate(lambda)
        .warmup_cycles(300)
        .measure_cycles(3_000)
        .seed(17)
        .build()
        .unwrap()
}

fn run(topology: TopologySpec, traffic: TrafficSpec, lambda: f64) -> f64 {
    Experiment {
        topology,
        traffic,
        config: config(lambda),
    }
    .run()
    .unwrap()
    .throughput()
}

fn bench_fig5_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_validation");
    for (name, spec) in [
        ("ring_16", TopologySpec::Ring { nodes: 16 }),
        ("spidergon_16", TopologySpec::Spidergon { nodes: 16 }),
        ("mesh_16", TopologySpec::MeshBalanced { nodes: 16 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run(spec, TrafficSpec::Uniform, 0.1)))
        });
    }
    g.finish();
}

fn bench_fig6_7_hotspot(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_7_single_hotspot");
    for (name, spec) in [
        ("ring_16", TopologySpec::Ring { nodes: 16 }),
        ("spidergon_16", TopologySpec::Spidergon { nodes: 16 }),
        ("mesh_16", TopologySpec::MeshBalanced { nodes: 16 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run(spec, TrafficSpec::SingleHotspot { target: 0 }, 0.2)))
        });
    }
    g.finish();
}

fn bench_fig8_9_double_hotspot(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_9_double_hotspot");
    for (name, spec) in [
        ("ring_24", TopologySpec::Ring { nodes: 24 }),
        ("spidergon_24", TopologySpec::Spidergon { nodes: 24 }),
        ("mesh_24", TopologySpec::MeshBalanced { nodes: 24 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run(
                    spec,
                    TrafficSpec::DoubleHotspotPlaced {
                        scenario: PlacementScenario::Opposed,
                    },
                    0.2,
                ))
            })
        });
    }
    g.finish();
}

fn bench_fig10_11_uniform(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_11_uniform");
    for (name, spec) in [
        ("ring_24", TopologySpec::Ring { nodes: 24 }),
        ("spidergon_24", TopologySpec::Spidergon { nodes: 24 }),
        ("mesh_24", TopologySpec::MeshBalanced { nodes: 24 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run(spec, TrafficSpec::Uniform, 0.3)))
        });
    }
    g.finish();
}

criterion_group!(
    name = figures_sim;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5_validation,
        bench_fig6_7_hotspot,
        bench_fig8_9_double_hotspot,
        bench_fig10_11_uniform
);
criterion_main!(figures_sim);
