//! Micro-benches of the simulator's hot kernels: raw cycle throughput,
//! routing decisions, route table construction and the DES event queue.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_routing::{RoutingAlgorithm, SpidergonAcrossFirst, TableRouting};
use noc_sim::des::{EventQueue, SimTime};
use noc_sim::{SimConfig, Simulation};
use noc_topology::{NodeId, Spidergon};
use noc_traffic::UniformRandom;
use std::hint::black_box;

fn bench_cycle_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_cycles");
    for n in [16usize, 32, 64] {
        g.bench_function(format!("spidergon_{n}_1000_cycles"), |b| {
            b.iter(|| {
                let topo = Spidergon::new(n).unwrap();
                let routing = SpidergonAcrossFirst::new(&topo);
                let pattern = UniformRandom::new(n).unwrap();
                let config = SimConfig::builder()
                    .injection_rate(0.3)
                    .warmup_cycles(0)
                    .measure_cycles(1_000)
                    .build()
                    .unwrap();
                let mut sim =
                    Simulation::new(Box::new(topo), Box::new(routing), Box::new(pattern), config)
                        .unwrap();
                black_box(sim.run().unwrap().flits_delivered)
            })
        });
    }
    g.finish();
}

fn bench_routing_decision(c: &mut Criterion) {
    let sg = Spidergon::new(64).unwrap();
    let algo = SpidergonAcrossFirst::new(&sg);
    c.bench_function("routing_next_hop_spidergon_64_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for src in 0..64 {
                for dst in 0..64 {
                    if src != dst {
                        acc += algo.next_hop(NodeId::new(src), NodeId::new(dst)).index();
                    }
                }
            }
            black_box(acc)
        })
    });
}

fn bench_table_construction(c: &mut Criterion) {
    let sg = Spidergon::new(64).unwrap();
    c.bench_function("table_routing_build_spidergon_64", |b| {
        b.iter(|| black_box(TableRouting::from_topology(&sg)))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_10k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Deterministic pseudo-times spread over [0, 1000).
                let t = (i.wrapping_mul(2654435761) % 1_000_000) as f64 / 1_000.0;
                q.schedule(SimTime::new(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    name = kernel;
    config = Criterion::default().sample_size(10);
    targets = bench_cycle_throughput,
        bench_routing_decision,
        bench_table_construction,
        bench_event_queue
);
criterion_main!(kernel);
