//! Benches for the parallel experiment engine and the simulator
//! hot path it fans out: the same small sweep timed sequentially and
//! at fixed worker counts (wall-clock speedup), plus the raw cycle
//! kernel in flits delivered per iteration (hot-path regression).
//!
//! `cargo bench --bench parallel` prints wall-clock per iteration;
//! `cargo run --release --bin bench_sweep` records the same workload
//! into `BENCH_sweep.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use noc_core::{sweep_rates_with, Parallelism, SweepResult, TopologySpec, TrafficSpec};
use noc_sim::SimConfig;

/// The benchmarked workload: a rate sweep sized so that one job is a
/// few milliseconds — large enough to dwarf thread-pool overhead,
/// small enough to keep `cargo bench` quick.
fn bench_sweep(parallelism: Parallelism) -> SweepResult {
    let config = SimConfig::builder()
        .warmup_cycles(200)
        .measure_cycles(2_000)
        .seed(2006)
        .build()
        .unwrap();
    let rates = [0.1, 0.2, 0.3, 0.4];
    sweep_rates_with(
        TopologySpec::Spidergon { nodes: 16 },
        TrafficSpec::Uniform,
        &config,
        &rates,
        2,
        parallelism,
    )
    .unwrap()
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_sweep");
    g.sample_size(10);
    for (name, parallelism) in [
        ("sequential", Parallelism::Sequential),
        ("fixed_2", Parallelism::Fixed(2)),
        ("fixed_4", Parallelism::Fixed(4)),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(bench_sweep(parallelism))));
    }
    g.finish();
}

fn bench_hot_path_flits(c: &mut Criterion) {
    use noc_core::Experiment;
    let experiment = Experiment {
        topology: TopologySpec::Spidergon { nodes: 32 },
        traffic: TrafficSpec::Uniform,
        config: SimConfig::builder()
            .injection_rate(0.3)
            .warmup_cycles(0)
            .measure_cycles(5_000)
            .seed(2006)
            .build()
            .unwrap(),
    };
    let mut g = c.benchmark_group("hot_path");
    g.sample_size(10);
    g.bench_function("spidergon_32_5k_cycles_flits", |b| {
        b.iter(|| black_box(experiment.run().unwrap().stats.flits_delivered))
    });
    g.finish();
}

/// Probe overhead on the hot-path kernel: the default `NullProbe`
/// (monomorphized to nothing — must sit within noise of the pre-probe
/// baseline) against a full `Recorder` (every lifecycle event logged).
fn bench_probe_overhead(c: &mut Criterion) {
    use noc_core::Experiment;
    let experiment = Experiment {
        topology: TopologySpec::Spidergon { nodes: 32 },
        traffic: TrafficSpec::Uniform,
        config: SimConfig::builder()
            .injection_rate(0.3)
            .warmup_cycles(0)
            .measure_cycles(5_000)
            .seed(2006)
            .build()
            .unwrap(),
    };
    let mut g = c.benchmark_group("probe");
    g.sample_size(10);
    g.bench_function("null_probe", |b| {
        b.iter(|| {
            black_box(
                experiment
                    .run_with_seed(experiment.config.seed)
                    .unwrap()
                    .stats
                    .flits_delivered,
            )
        })
    });
    g.bench_function("recorder", |b| {
        b.iter(|| {
            let (run, rec) = experiment
                .run_traced_with_seed(experiment.config.seed)
                .unwrap();
            black_box((run.stats.flits_delivered, rec.digest()))
        })
    });
    g.finish();
}

criterion_group!(
    name = parallel;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_sweep, bench_hot_path_flits, bench_probe_overhead
);
criterion_main!(parallel);
