//! Ablation benches for the design choices called out in DESIGN.md:
//! buffer depths (the paper's "buffer tuning has marginal impact"
//! claim), sink rate (the hot-spot bottleneck), packet length, and
//! table-driven vs algebraic routing.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_core::{Experiment, TopologySpec, TrafficSpec};
use noc_sim::{SimConfig, Simulation};
use noc_traffic::UniformRandom;
use std::hint::black_box;

fn base(lambda: f64) -> noc_sim::SimConfigBuilder {
    let mut b = SimConfig::builder();
    b.injection_rate(lambda)
        .warmup_cycles(300)
        .measure_cycles(2_500)
        .seed(23);
    b
}

fn bench_output_buffer_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_output_buffer_depth");
    for depth in [2usize, 3, 6, 12] {
        g.bench_function(format!("spidergon16_depth_{depth}"), |b| {
            b.iter(|| {
                let config = base(0.3).output_buffer_capacity(depth).build().unwrap();
                let stats = Experiment {
                    topology: TopologySpec::Spidergon { nodes: 16 },
                    traffic: TrafficSpec::Uniform,
                    config,
                }
                .run()
                .unwrap();
                black_box(stats.throughput())
            })
        });
    }
    g.finish();
}

fn bench_input_buffer_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_input_buffer_depth");
    for depth in [1usize, 2, 4] {
        g.bench_function(format!("spidergon16_depth_{depth}"), |b| {
            b.iter(|| {
                let config = base(0.3).input_buffer_capacity(depth).build().unwrap();
                let stats = Experiment {
                    topology: TopologySpec::Spidergon { nodes: 16 },
                    traffic: TrafficSpec::Uniform,
                    config,
                }
                .run()
                .unwrap();
                black_box(stats.throughput())
            })
        });
    }
    g.finish();
}

fn bench_sink_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sink_rate");
    for rate in [1usize, 2, 4] {
        g.bench_function(format!("hotspot16_sink_{rate}"), |b| {
            b.iter(|| {
                let config = base(0.3).sink_rate(rate).build().unwrap();
                let stats = Experiment {
                    topology: TopologySpec::Spidergon { nodes: 16 },
                    traffic: TrafficSpec::SingleHotspot { target: 0 },
                    config,
                }
                .run()
                .unwrap();
                black_box(stats.throughput())
            })
        });
    }
    g.finish();
}

fn bench_packet_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_packet_length");
    for len in [2usize, 6, 12] {
        g.bench_function(format!("spidergon16_len_{len}"), |b| {
            b.iter(|| {
                let config = base(0.3).packet_len(len).build().unwrap();
                let stats = Experiment {
                    topology: TopologySpec::Spidergon { nodes: 16 },
                    traffic: TrafficSpec::Uniform,
                    config,
                }
                .run()
                .unwrap();
                black_box(stats.throughput())
            })
        });
    }
    g.finish();
}

fn bench_table_vs_algebraic_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_routing_impl");
    let spec = TopologySpec::MeshBalanced { nodes: 16 };
    g.bench_function("mesh16_xy", |b| {
        b.iter(|| {
            let stats = Experiment {
                topology: spec,
                traffic: TrafficSpec::Uniform,
                config: base(0.3).build().unwrap(),
            }
            .run()
            .unwrap();
            black_box(stats.throughput())
        })
    });
    g.bench_function("mesh16_table", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                spec.build().unwrap(),
                spec.build_table_routing().unwrap(),
                Box::new(UniformRandom::new(16).unwrap()),
                base(0.3).build().unwrap(),
            )
            .unwrap();
            black_box(sim.run().unwrap().throughput_flits_per_cycle())
        })
    });
    g.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_output_buffer_depth,
        bench_input_buffer_depth,
        bench_sink_rate,
        bench_packet_length,
        bench_table_vs_algebraic_routing
);
criterion_main!(ablations);
