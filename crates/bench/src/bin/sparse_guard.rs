//! Sparse-core guard: fails (exit 1) when the sparse active-set core
//! loses its payoff or its bit-exactness.
//!
//! Three checks:
//!
//! 1. **Static** — `BENCH_sweep.json` (written by `bench_sweep`) must
//!    carry `low_rate` rows whose recorded `sparse_gain` meets the
//!    bar for its load point: at least [`MIN_RECORDED_GAIN`] on the
//!    lowest recorded rate (the regime the sparse core is built for)
//!    and at least [`MIN_RECORDED_GAIN_BUSY`] everywhere else — at
//!    higher load the active-router ratio itself bounds what skipping
//!    can earn (a 0.79 ratio caps pure idle-skipping at 1.27×), so
//!    only "never slower than dense" is demanded there.
//! 2. **Live differential** — the sparse core (active set +
//!    fast-forward + compiled routes) must return bit-identical
//!    `SimStats` to the dense reference on the recorded low-rate
//!    workloads: skipping idle routers never changes the simulation.
//! 3. **Live gain** — the sparse/dense wall-clock ratio re-measured on
//!    this host, at the lowest recorded rate, must stay above
//!    [`MIN_LIVE_GAIN`]. A ratio taken within one process is robust
//!    to absolute host speed, but CI noise still gets slack: the gate
//!    is looser than the recorded baseline it backs.
//!
//! Usage: `cargo run --release --bin sparse_guard [BENCH_sweep.json]`

use noc_bench::guard::{bench_report_path, load_report, median_secs, require, GuardError};
use noc_core::{Experiment, TopologySpec, TrafficSpec};
use noc_sim::SimConfig;
use serde::Deserialize;

/// The committed benchmark must show at least this sparse-vs-dense
/// gain on the lowest recorded rate (the acceptance bar).
const MIN_RECORDED_GAIN: f64 = 2.0;

/// Higher-rate rows only have to prove the sparse core is never
/// slower than the dense reference.
const MIN_RECORDED_GAIN_BUSY: f64 = 1.0;

/// The live re-measurement may sag below the recorded baseline on a
/// busy CI host, but not below this.
const MIN_LIVE_GAIN: f64 = 1.5;

/// The slice of `BENCH_sweep.json` the guard cares about; every other
/// field is ignored.
#[derive(Default, Deserialize)]
#[serde(default)]
struct SparseReport {
    low_rate: Vec<LowRateRow>,
}

#[derive(Deserialize)]
struct LowRateRow {
    injection_rate: f64,
    sparse_flits_per_sec: f64,
    dense_flits_per_sec: f64,
    sparse_gain: f64,
    active_router_ratio: f64,
}

/// The same low-rate kernel `bench_sweep` records: spidergon-64 under
/// uniform load, 20k measured cycles, seed 2006.
fn low_rate_experiment(lambda: f64, sparse: bool) -> Experiment {
    Experiment {
        topology: TopologySpec::Spidergon { nodes: 64 },
        traffic: TrafficSpec::Uniform,
        config: SimConfig::builder()
            .injection_rate(lambda)
            .warmup_cycles(0)
            .measure_cycles(20_000)
            .seed(2006)
            .sparse(sparse)
            .compiled_routes(sparse)
            .build()
            .unwrap(),
    }
}

/// Median wall-clock seconds of the experiment over three runs.
fn experiment_median_secs(experiment: &Experiment) -> Result<f64, GuardError> {
    median_secs(3, || {
        std::hint::black_box(experiment.run()?);
        Ok(())
    })
}

fn main() -> Result<(), GuardError> {
    let path = bench_report_path();

    // Static check: the committed benchmark report.
    let report: SparseReport = load_report(&path)?;
    require(
        !report.low_rate.is_empty(),
        format!(
            "{path} has no low_rate rows — regenerate it with \
             `cargo run --release --bin bench_sweep`"
        ),
    )?;
    let lowest = report
        .low_rate
        .iter()
        .map(|row| row.injection_rate)
        .fold(f64::INFINITY, f64::min);
    for row in &report.low_rate {
        println!(
            "{path}: lambda {:.2}: sparse {:.0} vs dense {:.0} flits/sec -> gain {:.2} \
             (active ratio {:.3})",
            row.injection_rate,
            row.sparse_flits_per_sec,
            row.dense_flits_per_sec,
            row.sparse_gain,
            row.active_router_ratio,
        );
        let bar = if row.injection_rate == lowest {
            MIN_RECORDED_GAIN
        } else {
            MIN_RECORDED_GAIN_BUSY
        };
        require(
            row.sparse_gain >= bar,
            format!(
                "recorded low-rate gain at lambda {} regressed: {:.2} < {bar}",
                row.injection_rate, row.sparse_gain
            ),
        )?;
    }

    // Live checks: bit-exactness at every recorded rate, wall-clock
    // ratio at the lowest (the only rate with a recorded 2x bar).
    for row in &report.low_rate {
        let lambda = row.injection_rate;
        let sparse_exp = low_rate_experiment(lambda, true);
        let dense_exp = low_rate_experiment(lambda, false);
        let sparse = sparse_exp.run()?;
        let dense = dense_exp.run()?;
        require(
            sparse == dense,
            format!("sparse core diverged from dense reference at lambda {lambda}"),
        )?;
        if lambda != lowest {
            continue;
        }
        let sparse_secs = experiment_median_secs(&sparse_exp)?;
        let dense_secs = experiment_median_secs(&dense_exp)?;
        let live_gain = dense_secs / sparse_secs;
        println!(
            "live at lambda {lambda}: sparse {sparse_secs:.4}s vs dense {dense_secs:.4}s \
             -> gain {live_gain:.2}"
        );
        require(
            live_gain >= MIN_LIVE_GAIN,
            format!(
                "live low-rate gain at lambda {lambda} dropped to {live_gain:.2} \
                 (< {MIN_LIVE_GAIN})"
            ),
        )?;
    }
    println!(
        "sparse guard passed (recorded gain >= {MIN_RECORDED_GAIN}, live gain >= {MIN_LIVE_GAIN}, \
         stats bit-identical)"
    );
    Ok(())
}
