//! Regenerates Figure 5: analytical vs simulated average distance.
//! Set NOC_FIGURE_MODE=quick for a fast smoke run.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = noc_bench::figure_options_from_env();
    noc_bench::emit(&noc_core::figures::fig5(&opts)?)?;
    Ok(())
}
