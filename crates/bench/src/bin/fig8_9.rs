//! Regenerates Figures 8 and 9: throughput and latency under two
//! hot-spot destinations (placements A and B).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = noc_bench::figure_options_from_env();
    let (fig8, fig9) = noc_core::figures::fig8_9(&opts)?;
    noc_bench::emit(&fig8)?;
    noc_bench::emit(&fig9)?;
    Ok(())
}
