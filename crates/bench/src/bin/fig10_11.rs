//! Regenerates Figures 10 and 11: throughput and latency under
//! homogeneous uniform traffic.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = noc_bench::figure_options_from_env();
    let (fig10, fig11) = noc_core::figures::fig10_11(&opts)?;
    noc_bench::emit(&fig10)?;
    noc_bench::emit(&fig11)?;
    Ok(())
}
