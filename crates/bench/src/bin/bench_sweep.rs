//! Records the parallel-engine baseline into `BENCH_sweep.json`:
//! sequential vs parallel wall-clock for the reference sweep (same
//! workload as `cargo bench --bench parallel`), the resulting speedup,
//! and the hot-path cycle kernel's flits/sec. Host core count is
//! captured so numbers from different machines are comparable — on a
//! single-core host the parallel timings show thread-pool overhead,
//! not speedup, and the file says so.
//!
//! Usage: `cargo run --release --bin bench_sweep [out.json]
//! [--baseline <flits/sec>]` — `--baseline` embeds a pre-optimization
//! measurement of the same kernel for before/after comparison.

use noc_core::report::RunMetadata;
use noc_core::{sweep_rates_with, Experiment, Parallelism, TopologySpec, TrafficSpec};
use noc_sim::SimConfig;
use serde::Serialize;
use std::time::Instant;

const REPEATS: usize = 5;

/// The seed every benchmark workload in this file is pinned to.
const BENCH_SEED: u64 = 2006;

#[derive(Serialize)]
struct Workload {
    sweep: String,
    hot_path: String,
    repeats: usize,
    statistic: String,
}

#[derive(Serialize)]
struct SweepSeconds {
    sequential: f64,
    fixed_2: f64,
    fixed_4: f64,
}

#[derive(Serialize)]
struct Speedup {
    fixed_2: f64,
    fixed_4: f64,
}

#[derive(Serialize)]
struct BenchReport {
    workload: Workload,
    /// How this report was produced: resolved worker threads, policy
    /// and host cores — so numbers can be tied back to the machine.
    run_metadata: RunMetadata,
    /// The RNG seed all workloads are pinned to.
    seed: u64,
    /// `git describe --always --dirty` of the tree that was measured
    /// (`null` when git is unavailable).
    git_describe: Option<String>,
    host_cores: usize,
    sweep_seconds: SweepSeconds,
    speedup_vs_sequential: Speedup,
    hot_path_flits_per_sec: f64,
    /// The same kernel measured on the pre-optimization simulator
    /// (passed with `--baseline`; `null` when not measured).
    hot_path_flits_per_sec_baseline: Option<f64>,
    hot_path_gain: Option<f64>,
    note: String,
}

fn sweep_config() -> SimConfig {
    SimConfig::builder()
        .warmup_cycles(200)
        .measure_cycles(2_000)
        .seed(BENCH_SEED)
        .build()
        .unwrap()
}

/// `git describe --always --dirty` of the working tree, or `None` when
/// git is missing or the directory is not a repository.
fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let desc = String::from_utf8(out.stdout).ok()?;
    let desc = desc.trim();
    (!desc.is_empty()).then(|| desc.to_owned())
}

/// Median wall-clock seconds of the reference sweep over [`REPEATS`]
/// runs under the given policy.
fn time_sweep(parallelism: Parallelism) -> f64 {
    let rates = [0.1, 0.2, 0.3, 0.4];
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            let sweep = sweep_rates_with(
                TopologySpec::Spidergon { nodes: 16 },
                TrafficSpec::Uniform,
                &sweep_config(),
                &rates,
                2,
                parallelism,
            )
            .unwrap();
            std::hint::black_box(sweep);
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[REPEATS / 2]
}

/// Median flits/sec of the hot-path cycle kernel (Spidergon-32 under
/// uniform load, 5k measured cycles).
fn flits_per_sec() -> f64 {
    let experiment = Experiment {
        topology: TopologySpec::Spidergon { nodes: 32 },
        traffic: TrafficSpec::Uniform,
        config: SimConfig::builder()
            .injection_rate(0.3)
            .warmup_cycles(0)
            .measure_cycles(5_000)
            .seed(BENCH_SEED)
            .build()
            .unwrap(),
    };
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            let flits = experiment.run().unwrap().stats.flits_delivered;
            flits as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[REPEATS / 2]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out = "BENCH_sweep.json".to_owned();
    let mut baseline: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                let value = args.next().ok_or("--baseline needs a flits/sec value")?;
                baseline = Some(value.parse()?);
            }
            path => out = path.to_owned(),
        }
    }
    let host_cores = noc_core::parallel::available_cores();
    eprintln!("timing reference sweep ({host_cores} host cores, {REPEATS} repeats each)...");
    let sequential = time_sweep(Parallelism::Sequential);
    let fixed_2 = time_sweep(Parallelism::Fixed(2));
    let fixed_4 = time_sweep(Parallelism::Fixed(4));
    let flits = flits_per_sec();

    let report = BenchReport {
        workload: Workload {
            sweep:
                "spidergon-16 uniform, rates [0.1, 0.2, 0.3, 0.4], 2 replications, 2200 cycles each"
                    .to_owned(),
            hot_path: "spidergon-32 uniform, lambda 0.3, 5000 measured cycles".to_owned(),
            repeats: REPEATS,
            statistic: "median".to_owned(),
        },
        run_metadata: RunMetadata::for_parallelism(Parallelism::default()),
        seed: BENCH_SEED,
        git_describe: git_describe(),
        host_cores,
        sweep_seconds: SweepSeconds {
            sequential,
            fixed_2,
            fixed_4,
        },
        speedup_vs_sequential: Speedup {
            fixed_2: sequential / fixed_2,
            fixed_4: sequential / fixed_4,
        },
        hot_path_flits_per_sec: flits,
        hot_path_flits_per_sec_baseline: baseline,
        hot_path_gain: baseline.map(|b| flits / b),
        note: if host_cores < 2 {
            "single-core host: parallel timings measure scheduling overhead, not speedup"
        } else {
            "speedup is bounded by host cores and per-job runtime"
        }
        .to_owned(),
    };
    let pretty = serde_json::to_string_pretty(&report)?;
    std::fs::write(&out, format!("{pretty}\n"))?;
    println!("{pretty}");
    eprintln!("wrote {out}");
    Ok(())
}
