//! Records the parallel-engine baseline into `BENCH_sweep.json`:
//! sequential vs parallel wall-clock for the reference sweep (same
//! workload as `cargo bench --bench parallel`), the resulting speedup,
//! and the hot-path cycle kernel's flits/sec. Host core count is
//! captured so numbers from different machines are comparable — on a
//! single-core host the parallel timings show thread-pool overhead,
//! not speedup, and the file says so.
//!
//! Also records the `figures_cache` section `cache_guard` gates on:
//! the full figure set timed cold (fresh content-addressed store)
//! versus warm (every point answered from the store), with a
//! byte-identical output check. The ambient `NOC_CACHE` is forced off
//! for every other workload so a populated store can't flatter the
//! sweep and hot-path timings.
//!
//! Usage: `cargo run --release --bin bench_sweep [out.json]
//! [--baseline <flits/sec>]` — `--baseline` embeds a pre-optimization
//! measurement of the same kernel for before/after comparison.

use noc_core::cache::{self, unique_temp_dir};
use noc_core::report::{git_provenance, RunMetadata};
use noc_core::{sweep_rates_with, Experiment, Parallelism, TopologySpec, TrafficSpec};
use noc_sim::SimConfig;
use serde::Serialize;
use std::time::Instant;

const REPEATS: usize = 5;

/// The seed every benchmark workload in this file is pinned to.
const BENCH_SEED: u64 = 2006;

#[derive(Serialize)]
struct Workload {
    sweep: String,
    hot_path: String,
    low_rate: String,
    repeats: usize,
    statistic: String,
}

#[derive(Serialize)]
struct SweepSeconds {
    sequential: f64,
    fixed_2: f64,
    fixed_4: f64,
}

#[derive(Serialize)]
struct Speedup {
    fixed_2: f64,
    fixed_4: f64,
}

/// One low-rate row: the sparse active-set core against the dense
/// reference on the same workload, plus how busy the network actually
/// was (fraction of router-cycles with at least one flit present).
#[derive(Serialize)]
struct LowRateRow {
    injection_rate: f64,
    sparse_flits_per_sec: f64,
    dense_flits_per_sec: f64,
    /// `sparse_flits_per_sec / dense_flits_per_sec` — the payoff of
    /// idle-router skipping at this load point.
    sparse_gain: f64,
    /// Active router-cycles / total router-cycles in the sparse run.
    active_router_ratio: f64,
}

/// The full figure set timed cold (fresh content-addressed store,
/// every point simulated) versus warm (every point answered from the
/// store). `cache_guard` gates on `speedup`, `warm_misses == 0` and
/// `byte_identical`.
#[derive(Serialize)]
struct FiguresCache {
    workload: String,
    cold_seconds: f64,
    /// Median of [`REPEATS`] fully-cached passes.
    warm_seconds: f64,
    speedup: f64,
    warm_hits: u64,
    warm_misses: u64,
    /// Whether the warm figures rendered byte-for-byte identical JSON
    /// and CSV to the cold figures.
    byte_identical: bool,
}

struct BenchReport {
    workload: Workload,
    /// How this report was produced: resolved worker threads, policy
    /// and host cores — so numbers can be tied back to the machine.
    run_metadata: RunMetadata,
    /// The RNG seed all workloads are pinned to.
    seed: u64,
    /// `git describe --always --dirty` of the tree that was measured
    /// (`null` when git is unavailable).
    git_describe: Option<String>,
    host_cores: usize,
    sweep_seconds: SweepSeconds,
    /// Omitted on a single-core host, where "speedup" would only
    /// measure thread-pool overhead; the raw timings above remain.
    speedup_vs_sequential: Option<Speedup>,
    hot_path_flits_per_sec: f64,
    /// The same kernel measured on the pre-optimization simulator
    /// (passed with `--baseline`; `null` when not measured).
    hot_path_flits_per_sec_baseline: Option<f64>,
    hot_path_gain: Option<f64>,
    /// Sparse-vs-dense core comparison at the low injection rates
    /// where idle-router skipping pays off (`sparse_guard` gates on
    /// these rows).
    low_rate: Vec<LowRateRow>,
    /// Warm-vs-cold figure regeneration through the experiment cache
    /// (`cache_guard` gates on this section).
    figures_cache: FiguresCache,
    note: String,
}

/// Hand-written so `speedup_vs_sequential` can be *omitted* (not
/// `null`) on single-core hosts — the vendored derive has no
/// `skip_serializing_if`.
impl Serialize for BenchReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("workload".to_owned(), self.workload.to_value()),
            ("run_metadata".to_owned(), self.run_metadata.to_value()),
            ("seed".to_owned(), self.seed.to_value()),
            ("git_describe".to_owned(), self.git_describe.to_value()),
            ("host_cores".to_owned(), self.host_cores.to_value()),
            ("sweep_seconds".to_owned(), self.sweep_seconds.to_value()),
        ];
        if let Some(speedup) = &self.speedup_vs_sequential {
            fields.push(("speedup_vs_sequential".to_owned(), speedup.to_value()));
        }
        fields.extend([
            (
                "hot_path_flits_per_sec".to_owned(),
                self.hot_path_flits_per_sec.to_value(),
            ),
            (
                "hot_path_flits_per_sec_baseline".to_owned(),
                self.hot_path_flits_per_sec_baseline.to_value(),
            ),
            ("hot_path_gain".to_owned(), self.hot_path_gain.to_value()),
            ("low_rate".to_owned(), self.low_rate.to_value()),
            ("figures_cache".to_owned(), self.figures_cache.to_value()),
            ("note".to_owned(), self.note.to_value()),
        ]);
        serde::Value::Object(fields)
    }
}

fn sweep_config() -> SimConfig {
    SimConfig::builder()
        .warmup_cycles(200)
        .measure_cycles(2_000)
        .seed(BENCH_SEED)
        .build()
        .unwrap()
}

/// Renders the exact bytes `all_figures` would publish per figure.
fn rendered(figures: &[noc_core::report::FigureData]) -> Vec<(String, String)> {
    figures.iter().map(|f| (f.to_json(), f.to_csv())).collect()
}

/// Times the full figure set (quick mode) cold against a fresh
/// content-addressed store, then warm over [`REPEATS`] fully cached
/// passes, and checks the warm output is byte-identical. Restores
/// `NOC_CACHE=0` before returning so later workloads stay uncached.
fn figures_cache_row() -> Result<(FiguresCache, cache::CacheCounters), Box<dyn std::error::Error>> {
    let dir = unique_temp_dir("noc-bench-sweep-cache");
    std::env::set_var("NOC_CACHE", &dir);
    let opts = noc_core::FigureOptions::quick();

    let start = Instant::now();
    let cold_figures = noc_bench::all_figure_set(&opts)?;
    let cold_seconds = start.elapsed().as_secs_f64();

    let before = cache::counters();
    let mut warm_figures = Vec::new();
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| -> Result<f64, Box<dyn std::error::Error>> {
            let start = Instant::now();
            warm_figures = noc_bench::all_figure_set(&opts)?;
            Ok(start.elapsed().as_secs_f64())
        })
        .collect::<Result<_, _>>()?;
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let warm_seconds = samples[REPEATS / 2];
    let warm_delta = cache::counters().since(&before);

    std::env::set_var("NOC_CACHE", "0");
    std::fs::remove_dir_all(&dir).ok();
    let row = FiguresCache {
        workload: "all paper figures (quick mode), cold store vs fully cached".to_owned(),
        cold_seconds,
        warm_seconds,
        speedup: cold_seconds / warm_seconds,
        // Per-pass counters so `warm_misses == 0` means "every pass was
        // fully cached" regardless of REPEATS.
        warm_hits: warm_delta.hits / REPEATS as u64,
        warm_misses: warm_delta.misses,
        byte_identical: rendered(&cold_figures) == rendered(&warm_figures),
    };
    Ok((row, warm_delta))
}

/// Median wall-clock seconds of the reference sweep over [`REPEATS`]
/// runs under the given policy.
fn time_sweep(parallelism: Parallelism) -> f64 {
    let rates = [0.1, 0.2, 0.3, 0.4];
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            let sweep = sweep_rates_with(
                TopologySpec::Spidergon { nodes: 16 },
                TrafficSpec::Uniform,
                &sweep_config(),
                &rates,
                2,
                parallelism,
            )
            .unwrap();
            std::hint::black_box(sweep);
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[REPEATS / 2]
}

/// Median flits/sec of the hot-path cycle kernel (Spidergon-32 under
/// uniform load, 5k measured cycles).
fn flits_per_sec() -> f64 {
    let experiment = Experiment {
        topology: TopologySpec::Spidergon { nodes: 32 },
        traffic: TrafficSpec::Uniform,
        config: SimConfig::builder()
            .injection_rate(0.3)
            .warmup_cycles(0)
            .measure_cycles(5_000)
            .seed(BENCH_SEED)
            .build()
            .unwrap(),
    };
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            let flits = experiment.run().unwrap().stats.flits_delivered;
            flits as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[REPEATS / 2]
}

/// Low-rate kernel: spidergon-64 under uniform load at `lambda`, 20k
/// measured cycles — the regime the sparse active-set core is built
/// for. `sparse` toggles the full sparse path (active set + compiled
/// routes) against the dense reference core.
fn low_rate_experiment(lambda: f64, sparse: bool) -> Experiment {
    Experiment {
        topology: TopologySpec::Spidergon { nodes: 64 },
        traffic: TrafficSpec::Uniform,
        config: SimConfig::builder()
            .injection_rate(lambda)
            .warmup_cycles(0)
            .measure_cycles(20_000)
            .seed(BENCH_SEED)
            .sparse(sparse)
            .compiled_routes(sparse)
            .build()
            .unwrap(),
    }
}

/// Measures one low-rate row: median flits/sec of the sparse and dense
/// cores on the identical workload (same seed, so both deliver the
/// same flits and the ratio is a pure wall-clock comparison), plus the
/// sparse run's active-router ratio.
fn low_rate_row(lambda: f64) -> LowRateRow {
    fn median_flits_per_sec(experiment: &Experiment, ratio: &mut f64) -> f64 {
        let mut samples: Vec<f64> = (0..REPEATS)
            .map(|_| {
                let mut sim = experiment.build_simulation().unwrap();
                let start = Instant::now();
                let stats = sim.run().unwrap();
                let secs = start.elapsed().as_secs_f64();
                *ratio = sim.active_router_ratio();
                stats.flits_delivered as f64 / secs
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[REPEATS / 2]
    }
    let mut active_router_ratio = 0.0;
    let mut dense_ratio = 0.0;
    let sparse = median_flits_per_sec(&low_rate_experiment(lambda, true), &mut active_router_ratio);
    let dense = median_flits_per_sec(&low_rate_experiment(lambda, false), &mut dense_ratio);
    LowRateRow {
        injection_rate: lambda,
        sparse_flits_per_sec: sparse,
        dense_flits_per_sec: dense,
        sparse_gain: sparse / dense,
        active_router_ratio,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out = "BENCH_sweep.json".to_owned();
    let mut baseline: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                let value = args.next().ok_or("--baseline needs a flits/sec value")?;
                baseline = Some(value.parse()?);
            }
            path => out = path.to_owned(),
        }
    }
    // A populated ambient store must not flatter the timings below;
    // the figures_cache section provisions its own temporary store.
    std::env::set_var("NOC_CACHE", "0");
    let host_cores = noc_core::parallel::available_cores();
    eprintln!("timing reference sweep ({host_cores} host cores, {REPEATS} repeats each)...");
    let sequential = time_sweep(Parallelism::Sequential);
    let fixed_2 = time_sweep(Parallelism::Fixed(2));
    let fixed_4 = time_sweep(Parallelism::Fixed(4));
    let flits = flits_per_sec();
    eprintln!("timing low-rate sparse-vs-dense kernels...");
    let low_rate: Vec<LowRateRow> = [0.05, 0.1].into_iter().map(low_rate_row).collect();
    eprintln!("timing warm-vs-cold figure regeneration through the experiment cache...");
    let (figures_cache, warm_counters) = figures_cache_row()?;

    let report = BenchReport {
        workload: Workload {
            sweep:
                "spidergon-16 uniform, rates [0.1, 0.2, 0.3, 0.4], 2 replications, 2200 cycles each"
                    .to_owned(),
            hot_path: "spidergon-32 uniform, lambda 0.3, 5000 measured cycles".to_owned(),
            low_rate: "spidergon-64 uniform, lambda [0.05, 0.1], 20000 measured cycles, \
                       sparse core vs dense reference"
                .to_owned(),
            repeats: REPEATS,
            statistic: "median".to_owned(),
        },
        run_metadata: RunMetadata::for_parallelism(Parallelism::default())
            .with_git_provenance()
            .with_cache_counters(warm_counters),
        seed: BENCH_SEED,
        git_describe: git_provenance().0,
        host_cores,
        sweep_seconds: SweepSeconds {
            sequential,
            fixed_2,
            fixed_4,
        },
        speedup_vs_sequential: (host_cores > 1).then_some(Speedup {
            fixed_2: sequential / fixed_2,
            fixed_4: sequential / fixed_4,
        }),
        hot_path_flits_per_sec: flits,
        hot_path_flits_per_sec_baseline: baseline,
        hot_path_gain: baseline.map(|b| flits / b),
        low_rate,
        figures_cache,
        note: if host_cores < 2 {
            "single-core host: parallel timings measure scheduling overhead, not speedup"
        } else {
            "speedup is bounded by host cores and per-job runtime"
        }
        .to_owned(),
    };
    let pretty = serde_json::to_string_pretty(&report)?;
    std::fs::write(&out, format!("{pretty}\n"))?;
    println!("{pretty}");
    eprintln!("wrote {out}");
    Ok(())
}
