//! Regenerates every figure and table of the paper in one run.
//!
//! ```text
//! cargo run --release --bin all_figures            # paper quality
//! NOC_FIGURE_MODE=quick cargo run --bin all_figures # smoke run
//! NOC_CACHE=1 cargo run --release --bin all_figures # incremental:
//!                          # only points whose spec/seed/code version
//!                          # changed are re-simulated (bit-identical
//!                          # output either way)
//! ```
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = noc_bench::figure_options_from_env();
    let before = noc_core::cache::counters();
    for figure in noc_bench::all_figure_set(&opts)? {
        noc_bench::emit(&figure)?;
    }
    if noc_core::ExperimentCache::from_env().is_enabled() {
        let delta = noc_core::cache::counters().since(&before);
        println!("cache: {} hit(s), {} miss(es)", delta.hits, delta.misses);
    }
    Ok(())
}
