//! Regenerates every figure and table of the paper in one run.
//!
//! ```text
//! cargo run --release --bin all_figures            # paper quality
//! NOC_FIGURE_MODE=quick cargo run --bin all_figures # smoke run
//! ```
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = noc_bench::figure_options_from_env();
    noc_bench::emit(&noc_core::figures::fig2(64))?;
    noc_bench::emit(&noc_core::figures::fig3(64))?;
    noc_bench::emit(&noc_core::figures::table_links(&[
        8, 12, 16, 24, 32, 48, 64,
    ]))?;
    noc_bench::emit(&noc_core::figures::fig5(&opts)?)?;
    let (fig6, fig7) = noc_core::figures::fig6_7(&opts)?;
    noc_bench::emit(&fig6)?;
    noc_bench::emit(&fig7)?;
    let (fig8, fig9) = noc_core::figures::fig8_9(&opts)?;
    noc_bench::emit(&fig8)?;
    noc_bench::emit(&fig9)?;
    let (fig10, fig11) = noc_core::figures::fig10_11(&opts)?;
    noc_bench::emit(&fig10)?;
    noc_bench::emit(&fig11)?;
    Ok(())
}
