//! Regenerates Figure 3: average network distance vs number of nodes.
fn main() -> std::io::Result<()> {
    noc_bench::emit(&noc_core::figures::fig3(64))
}
