//! Regenerates the extension figures: torus comparison, adaptive
//! (West-First) vs deterministic (XY) mesh routing, and the per-link
//! utilization heatmap under a single hot-spot.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = noc_bench::figure_options_from_env();
    let (tp, lat) = noc_core::figures::ext_torus(&opts)?;
    noc_bench::emit(&tp)?;
    noc_bench::emit(&lat)?;
    let (tp, lat) = noc_core::figures::ext_adaptive(&opts)?;
    noc_bench::emit(&tp)?;
    noc_bench::emit(&lat)?;
    noc_bench::emit(&noc_core::figures::ext_spidergon_routing(&opts)?)?;
    noc_bench::emit(&noc_core::figures::ext_mixed_hotspot(&opts)?)?;
    noc_bench::emit(&noc_core::figures::ext_link_heatmap(&opts)?)?;
    Ok(())
}
