//! Regenerates the extension figures: torus comparison and adaptive
//! (West-First) vs deterministic (XY) mesh routing.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = noc_bench::figure_options_from_env();
    let (tp, lat) = noc_core::figures::ext_torus(&opts)?;
    noc_bench::emit(&tp)?;
    noc_bench::emit(&lat)?;
    let (tp, lat) = noc_core::figures::ext_adaptive(&opts)?;
    noc_bench::emit(&tp)?;
    noc_bench::emit(&lat)?;
    noc_bench::emit(&noc_core::figures::ext_spidergon_routing(&opts)?)?;
    noc_bench::emit(&noc_core::figures::ext_mixed_hotspot(&opts)?)?;
    Ok(())
}
