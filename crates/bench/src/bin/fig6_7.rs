//! Regenerates Figures 6 and 7: throughput and latency under a single
//! hot-spot destination. Set NOC_FIGURE_MODE=quick for a smoke run.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = noc_bench::figure_options_from_env();
    let (fig6, fig7) = noc_core::figures::fig6_7(&opts)?;
    noc_bench::emit(&fig6)?;
    noc_bench::emit(&fig7)?;
    Ok(())
}
