//! Probe-overhead guard: fails (exit 1) when observability costs more
//! than the contract allows.
//!
//! Two checks:
//!
//! 1. **Static** — `BENCH_sweep.json` (written by `bench_sweep
//!    --baseline <pre-probe flits/sec>`) must show `hot_path_gain >=
//!    0.97`: the simulator with the default `NullProbe` compiled in
//!    stays within 3% of the pre-probe hot path, i.e. the probe layer
//!    monomorphizes away.
//! 2. **Live** — a run traced with a full `Recorder` must return
//!    bit-identical `SimStats` to the untraced run: observation never
//!    perturbs the simulation.
//!
//! A live NullProbe-vs-Recorder timing comparison is printed for
//! information only (wall-clock on a busy CI host is too noisy to
//! gate on).
//!
//! Usage: `cargo run --release --bin probe_guard [BENCH_sweep.json]`

use noc_bench::guard::{bench_report_path, load_report, require, GuardError};
use noc_core::{Experiment, TopologySpec, TrafficSpec};
use noc_sim::SimConfig;
use serde::Deserialize;
use std::time::Instant;

/// The NullProbe hot path may lose at most 3% against the pre-probe
/// baseline.
const MIN_GAIN: f64 = 0.97;

/// The slice of `BENCH_sweep.json` the guard cares about; every other
/// field is ignored.
#[derive(Default, Deserialize)]
#[serde(default)]
struct GainReport {
    hot_path_flits_per_sec: f64,
    hot_path_flits_per_sec_baseline: Option<f64>,
    hot_path_gain: Option<f64>,
}

fn hot_path_experiment() -> Experiment {
    Experiment {
        topology: TopologySpec::Spidergon { nodes: 32 },
        traffic: TrafficSpec::Uniform,
        config: SimConfig::builder()
            .injection_rate(0.3)
            .warmup_cycles(0)
            .measure_cycles(5_000)
            .seed(2006)
            .build()
            .unwrap(),
    }
}

fn main() -> Result<(), GuardError> {
    let path = bench_report_path();

    // Static check: the committed benchmark report.
    let report: GainReport = load_report(&path)?;
    let (Some(gain), Some(baseline)) =
        (report.hot_path_gain, report.hot_path_flits_per_sec_baseline)
    else {
        return Err(format!(
            "{path} has no hot_path_gain/baseline — regenerate it with \
             `cargo run --release --bin bench_sweep -- --baseline <flits/sec>`"
        )
        .into());
    };
    println!(
        "{path}: hot path {:.0} flits/sec vs pre-probe baseline {:.0} -> gain {gain:.4}",
        report.hot_path_flits_per_sec, baseline
    );
    require(
        gain >= MIN_GAIN,
        format!(
            "NullProbe hot path regressed: gain {gain:.4} < {MIN_GAIN} \
             (more than 3% slower than the pre-probe baseline)"
        ),
    )?;

    // Live check: tracing must not perturb the simulation.
    let experiment = hot_path_experiment();
    let started = Instant::now();
    let plain = experiment.run_with_seed(experiment.config.seed)?;
    let plain_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let (traced, recorder) = experiment.run_traced_with_seed(experiment.config.seed)?;
    let traced_secs = started.elapsed().as_secs_f64();
    require(
        plain == traced,
        "recorder perturbed the run: traced SimStats differ from untraced",
    )?;
    println!(
        "recorder non-perturbation: OK ({} events, digest {:016x})",
        recorder.events().len(),
        recorder.digest()
    );
    println!(
        "informational: untraced {:.3}s, recorder {:.3}s ({:+.1}% wall-clock)",
        plain_secs,
        traced_secs,
        100.0 * (traced_secs - plain_secs) / plain_secs
    );
    println!("probe guard passed (gain >= {MIN_GAIN}, stats bit-identical)");
    Ok(())
}
