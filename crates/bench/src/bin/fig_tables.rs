//! Regenerates the Section 2 link-count comparison table.
fn main() -> std::io::Result<()> {
    noc_bench::emit(&noc_core::figures::table_links(&[
        8, 12, 16, 24, 32, 48, 64,
    ]))
}
