//! Experiment-cache guard: fails (exit 1) when the content-addressed
//! cache loses its payoff or its bit-exactness.
//!
//! Three checks:
//!
//! 1. **Static** — `BENCH_sweep.json` (written by `bench_sweep`) must
//!    carry a `figures_cache` section whose recorded warm-vs-cold
//!    `all_figures` speedup meets [`MIN_RECORDED_SPEEDUP`], with the
//!    warm pass answering every point from the cache
//!    (`warm_misses == 0`) and byte-identical figure output.
//! 2. **Live bit-exactness** — a cold `all_figures` workload (quick
//!    mode) into a fresh temporary store, then a warm rerun, must
//!    produce byte-identical JSON and CSV for every figure, with zero
//!    warm misses: the cache never changes a published number.
//! 3. **Live speedup** — the warm/cold wall-clock ratio re-measured on
//!    this host must stay above [`MIN_LIVE_SPEEDUP`]. The recorded
//!    baseline is the acceptance bar; the live bar is looser because
//!    CI wall-clock is noisy.
//!
//! Usage: `cargo run --release --bin cache_guard [BENCH_sweep.json]`

use noc_bench::guard::{bench_report_path, load_report, median_secs, require, GuardError};
use noc_core::cache::{self, unique_temp_dir};
use noc_core::report::FigureData;
use serde::Deserialize;
use std::time::Instant;

/// The committed benchmark must show at least this warm-vs-cold
/// speedup on the full figure set (the acceptance bar).
const MIN_RECORDED_SPEEDUP: f64 = 10.0;

/// The live re-measurement may sag below the recorded baseline on a
/// busy CI host, but not below this.
const MIN_LIVE_SPEEDUP: f64 = 3.0;

/// The slice of `BENCH_sweep.json` the guard cares about; every other
/// field is ignored.
#[derive(Default, Deserialize)]
#[serde(default)]
struct CacheReport {
    figures_cache: Option<FiguresCacheRow>,
}

#[derive(Deserialize)]
struct FiguresCacheRow {
    cold_seconds: f64,
    warm_seconds: f64,
    speedup: f64,
    warm_hits: u64,
    warm_misses: u64,
    byte_identical: bool,
}

/// The exact bytes `all_figures` would publish for each figure.
fn rendered(figures: &[FigureData]) -> Vec<(String, String)> {
    figures.iter().map(|f| (f.to_json(), f.to_csv())).collect()
}

fn main() -> Result<(), GuardError> {
    let path = bench_report_path();

    // Static check: the committed benchmark report.
    let report: CacheReport = load_report(&path)?;
    let Some(row) = &report.figures_cache else {
        return Err(format!(
            "{path} has no figures_cache section — regenerate it with \
             `cargo run --release --bin bench_sweep`"
        )
        .into());
    };
    println!(
        "{path}: all_figures cold {:.2}s vs warm {:.3}s -> speedup {:.1} \
         (warm {} hit(s) / {} miss(es), byte_identical {})",
        row.cold_seconds,
        row.warm_seconds,
        row.speedup,
        row.warm_hits,
        row.warm_misses,
        row.byte_identical,
    );
    require(
        row.byte_identical,
        "recorded warm figures were not byte-identical to cold figures",
    )?;
    require(
        row.warm_misses == 0 && row.warm_hits > 0,
        format!(
            "recorded warm pass was not fully cached: {} hit(s), {} miss(es)",
            row.warm_hits, row.warm_misses
        ),
    )?;
    require(
        row.speedup >= MIN_RECORDED_SPEEDUP,
        format!(
            "recorded warm-vs-cold speedup regressed: {:.1} < {MIN_RECORDED_SPEEDUP}",
            row.speedup
        ),
    )?;

    // Live checks: fresh store, cold once, warm re-measured.
    let dir = unique_temp_dir("noc-cache-guard");
    std::env::set_var("NOC_CACHE", &dir);
    let opts = noc_core::FigureOptions::quick();

    let before = cache::counters();
    let started = Instant::now();
    let cold_figures = noc_bench::all_figure_set(&opts)?;
    let cold_secs = started.elapsed().as_secs_f64();
    let cold_delta = cache::counters().since(&before);
    // A few points hit even against a fresh store: figures sharing an
    // identical experiment point reuse the record an earlier figure in
    // the same pass stored — that is the cache working, not staleness.
    println!(
        "live cold: {cold_secs:.2}s, {} point(s) simulated, {} deduplicated",
        cold_delta.misses, cold_delta.hits
    );
    require(
        cold_delta.misses > cold_delta.hits,
        "cold pass against a fresh store must simulate nearly every point",
    )?;

    let before = cache::counters();
    let mut warm_figures = Vec::new();
    let warm_secs = median_secs(3, || {
        warm_figures = noc_bench::all_figure_set(&opts)?;
        Ok(())
    })?;
    let warm_delta = cache::counters().since(&before);
    std::fs::remove_dir_all(&dir).ok();

    require(
        warm_delta.misses == 0,
        format!(
            "warm pass simulated {} point(s); every point must hit",
            warm_delta.misses
        ),
    )?;
    require(
        rendered(&cold_figures) == rendered(&warm_figures),
        "warm figures are not byte-identical to cold figures",
    )?;
    let live_speedup = cold_secs / warm_secs;
    println!(
        "live warm: {warm_secs:.3}s (median of 3) -> speedup {live_speedup:.1}, \
         {} hit(s) over 3 passes",
        warm_delta.hits
    );
    require(
        live_speedup >= MIN_LIVE_SPEEDUP,
        format!("live warm-vs-cold speedup dropped to {live_speedup:.1} (< {MIN_LIVE_SPEEDUP})"),
    )?;
    println!(
        "cache guard passed (recorded speedup >= {MIN_RECORDED_SPEEDUP}, live speedup >= \
         {MIN_LIVE_SPEEDUP}, figures byte-identical)"
    );
    Ok(())
}
