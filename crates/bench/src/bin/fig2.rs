//! Regenerates Figure 2: network diameter vs number of nodes.
fn main() -> std::io::Result<()> {
    noc_bench::emit(&noc_core::figures::fig2(64))
}
