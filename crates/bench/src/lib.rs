//! Shared plumbing for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Every paper figure has a binary (`cargo run --release --bin fig10`)
//! that prints the figure's data as an aligned ASCII table and writes
//! CSV + JSON dumps under `results/`, and a Criterion bench
//! (`cargo bench`) that measures the cost of regenerating it.

use noc_core::report::FigureData;
use std::path::{Path, PathBuf};

pub mod guard;

/// Directory the figure binaries write their CSV/JSON dumps into
/// (relative to the working directory).
pub const RESULTS_DIR: &str = "results";

/// Quality selection for the figure binaries via the `NOC_FIGURE_MODE`
/// environment variable: `quick` (seconds) or `full` (default,
/// minutes in release mode).
pub fn figure_options_from_env() -> noc_core::FigureOptions {
    match std::env::var("NOC_FIGURE_MODE").as_deref() {
        Ok("quick") => noc_core::FigureOptions::quick(),
        _ => noc_core::FigureOptions::full(),
    }
}

/// Computes every figure and table of the paper, in publication order:
/// Figures 2-3 and the link-count table (analytical), then the
/// simulated Figures 5-11. This is the workload `all_figures` emits
/// and `cache_guard` times warm-vs-cold.
///
/// # Errors
///
/// Returns the first figure-construction error.
pub fn all_figure_set(
    opts: &noc_core::FigureOptions,
) -> Result<Vec<FigureData>, noc_core::CoreError> {
    let mut figures = vec![
        noc_core::figures::fig2(64),
        noc_core::figures::fig3(64),
        noc_core::figures::table_links(&[8, 12, 16, 24, 32, 48, 64]),
        noc_core::figures::fig5(opts)?,
    ];
    let (fig6, fig7) = noc_core::figures::fig6_7(opts)?;
    figures.extend([fig6, fig7]);
    let (fig8, fig9) = noc_core::figures::fig8_9(opts)?;
    figures.extend([fig8, fig9]);
    let (fig10, fig11) = noc_core::figures::fig10_11(opts)?;
    figures.extend([fig10, fig11]);
    Ok(figures)
}

/// Prints a figure as an ASCII table plus a terminal line plot, and
/// writes `<id>.csv` and `<id>.json` under [`RESULTS_DIR`].
///
/// Latency figures (y axis in cycles) are plotted on a log scale so
/// the saturation knees stay visible next to the zero-load values.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the
/// files.
pub fn emit(figure: &FigureData) -> std::io::Result<()> {
    print!("{}", figure.to_ascii_table());
    println!();
    let plot_opts = if figure.y_label.contains("latency") || figure.y_label.contains("cycles") {
        noc_core::plot::PlotOptions::log()
    } else {
        noc_core::plot::PlotOptions::default()
    };
    println!("{}", noc_core::plot::render(figure, plot_opts));
    let dir = PathBuf::from(RESULTS_DIR);
    std::fs::create_dir_all(&dir)?;
    write_dumps(figure, &dir)?;
    println!(
        "wrote {}/{}.csv and {}/{}.json",
        RESULTS_DIR, figure.id, RESULTS_DIR, figure.id
    );
    Ok(())
}

/// Writes the CSV and JSON dumps of a figure into `dir`.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_dumps(figure: &FigureData, dir: &Path) -> std::io::Result<()> {
    std::fs::write(dir.join(format!("{}.csv", figure.id)), figure.to_csv())?;
    std::fs::write(dir.join(format!("{}.json", figure.id)), figure.to_json())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::report::Series;

    #[test]
    fn dumps_are_written() {
        let fig = FigureData::new("unit-test-fig", "t", "x", "y")
            .with_series(Series::from_xy("s", [(1.0, 2.0)]));
        let dir = std::env::temp_dir().join("noc-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        write_dumps(&fig, &dir).unwrap();
        let csv = std::fs::read_to_string(dir.join("unit-test-fig.csv")).unwrap();
        assert!(csv.starts_with("x,s"));
        let json = std::fs::read_to_string(dir.join("unit-test-fig.json")).unwrap();
        assert!(json.contains("unit-test-fig"));
    }

    #[test]
    fn env_mode_defaults_to_full() {
        // NOC_FIGURE_MODE unset in the test environment.
        let opts = figure_options_from_env();
        assert!(opts.measure_cycles >= noc_core::FigureOptions::quick().measure_cycles);
    }
}
