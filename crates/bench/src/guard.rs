//! Shared plumbing for the guard binaries (`probe_guard`,
//! `sparse_guard`, `cache_guard`).
//!
//! Every guard follows the same two-layer shape:
//!
//! 1. **Static** — load the committed `BENCH_sweep.json` (path from
//!    the first CLI argument, [`bench_report_path`]), deserialize just
//!    the slice it cares about ([`load_report`]) and gate recorded
//!    numbers against the acceptance bar;
//! 2. **Live** — re-measure on the current host ([`median_secs`])
//!    against a looser bar, since absolute wall-clock on a busy CI
//!    machine is noisy while recorded baselines are not.
//!
//! [`require`] turns a failed check into the guard's `Err` (exit 1)
//! without each binary hand-rolling `if !ok { return Err(...) }`.

use std::time::Instant;

/// The error type all guard binaries bubble up to `main`.
pub type GuardError = Box<dyn std::error::Error>;

/// The benchmark-report path: the first CLI argument, defaulting to
/// the committed `BENCH_sweep.json`.
pub fn bench_report_path() -> String {
    std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_owned())
}

/// Reads and deserializes a guard's slice of the benchmark report.
/// Deserialize the slice into a `#[serde(default)]` struct holding
/// only the fields the guard gates on; unknown fields are ignored.
///
/// # Errors
///
/// Returns the I/O or parse error, labelled with the path.
pub fn load_report<T: serde::Deserialize>(path: &str) -> Result<T, GuardError> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}").into())
}

/// Passes the check when `ok`, otherwise fails the guard with
/// `message`.
///
/// # Errors
///
/// Returns `message` as the guard error when `ok` is false.
pub fn require(ok: bool, message: impl Into<String>) -> Result<(), GuardError> {
    if ok {
        Ok(())
    } else {
        Err(message.into().into())
    }
}

/// Median wall-clock seconds of `work` over `repeats` runs (the
/// standard live-measurement statistic: robust to one slow outlier on
/// a shared host).
///
/// # Errors
///
/// Propagates the first error `work` returns.
///
/// # Panics
///
/// Panics if `repeats` is zero.
pub fn median_secs(
    repeats: usize,
    mut work: impl FnMut() -> Result<(), GuardError>,
) -> Result<f64, GuardError> {
    assert!(repeats > 0, "median over zero runs");
    let mut samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        work()?;
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall-clock is never NaN"));
    Ok(samples[repeats / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn require_passes_and_fails() {
        assert!(require(true, "unused").is_ok());
        let err = require(false, "the bar").unwrap_err();
        assert_eq!(err.to_string(), "the bar");
    }

    #[test]
    fn median_is_order_robust() {
        let mut calls = 0usize;
        let secs = median_secs(3, || {
            calls += 1;
            if calls == 2 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(calls, 3);
        // The one slow run is the max, not the median.
        assert!(secs < 0.03, "median {secs}s should exclude the outlier");
    }

    #[test]
    fn median_propagates_errors() {
        let err = median_secs(2, || Err("boom".into())).unwrap_err();
        assert_eq!(err.to_string(), "boom");
    }

    #[test]
    fn load_report_labels_missing_file() {
        #[derive(Debug, Default, serde::Deserialize)]
        #[serde(default)]
        struct Empty {}
        let err = load_report::<Empty>("/nonexistent/bench.json").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/bench.json"));
    }
}
