//! Serializable experiment specifications: which topology, which
//! routing algorithm, which traffic pattern.
//!
//! Specs are plain data (serde-serializable) so experiments can be
//! described in JSON, logged alongside results, and rebuilt exactly.

use crate::CoreError;
use noc_routing::{
    MeshXY, RingShortestPath, RoutingAlgorithm, SpidergonAcrossFirst, TableRouting, TorusXY,
    WestFirst,
};
use noc_topology::{
    IrregularMesh, NodeId, RectMesh, Ring, Spidergon, Topology, TopologyKind, Torus,
};
use noc_traffic::{
    placement, Complement, DoubleHotspot, MixedHotspot, NearestNeighbor, PlacementScenario,
    SingleHotspot, TrafficPattern, Transpose, UniformRandom,
};
use serde::{Deserialize, Serialize};

/// Specification of a topology instance.
///
/// # Examples
///
/// ```
/// use noc_core::TopologySpec;
///
/// let spec = TopologySpec::Spidergon { nodes: 16 };
/// assert_eq!(spec.nodes(), 16);
/// let topo = spec.build()?;
/// assert_eq!(topo.num_nodes(), 16);
/// # Ok::<(), noc_core::CoreError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Bidirectional ring.
    Ring {
        /// Number of nodes.
        nodes: usize,
    },
    /// Spidergon (even node count).
    Spidergon {
        /// Number of nodes.
        nodes: usize,
    },
    /// Full rectangular mesh (`cols x rows`).
    Mesh {
        /// Columns (the paper's `m`).
        cols: usize,
        /// Rows (the paper's `n`).
        rows: usize,
    },
    /// Most square full rectangle holding exactly `nodes` nodes.
    MeshBalanced {
        /// Number of nodes.
        nodes: usize,
    },
    /// Irregular mesh: `cols`-wide grid, prefix-filled last row.
    IrregularMesh {
        /// Grid width.
        cols: usize,
        /// Number of nodes.
        nodes: usize,
    },
    /// The paper's "real mesh": `ceil(sqrt(nodes))`-wide irregular
    /// grid.
    RealisticMesh {
        /// Number of nodes.
        nodes: usize,
    },
    /// 2D torus (`cols x rows`), a future-work topology.
    Torus {
        /// Columns.
        cols: usize,
        /// Rows.
        rows: usize,
    },
}

impl TopologySpec {
    /// Number of nodes the built topology will have.
    pub fn nodes(&self) -> usize {
        match *self {
            TopologySpec::Ring { nodes }
            | TopologySpec::Spidergon { nodes }
            | TopologySpec::MeshBalanced { nodes }
            | TopologySpec::IrregularMesh { nodes, .. }
            | TopologySpec::RealisticMesh { nodes } => nodes,
            TopologySpec::Mesh { cols, rows } | TopologySpec::Torus { cols, rows } => cols * rows,
        }
    }

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Topology`] if the dimensions are invalid.
    pub fn build(&self) -> Result<Box<dyn Topology>, CoreError> {
        Ok(match *self {
            TopologySpec::Ring { nodes } => Box::new(Ring::new(nodes)?),
            TopologySpec::Spidergon { nodes } => Box::new(Spidergon::new(nodes)?),
            TopologySpec::Mesh { cols, rows } => Box::new(RectMesh::new(cols, rows)?),
            TopologySpec::MeshBalanced { nodes } => Box::new(RectMesh::balanced(nodes)?),
            TopologySpec::IrregularMesh { cols, nodes } => {
                Box::new(IrregularMesh::new(cols, nodes)?)
            }
            TopologySpec::RealisticMesh { nodes } => Box::new(IrregularMesh::realistic(nodes)?),
            TopologySpec::Torus { cols, rows } => Box::new(Torus::new(cols, rows)?),
        })
    }

    /// Builds the paper's routing algorithm for this topology family:
    /// shortest-direction for rings, Across-First for Spidergon, XY
    /// dimension-order for (regular and irregular) meshes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Topology`] if the topology cannot be built.
    pub fn build_routing(&self) -> Result<Box<dyn RoutingAlgorithm>, CoreError> {
        Ok(match *self {
            TopologySpec::Ring { nodes } => Box::new(RingShortestPath::new(&Ring::new(nodes)?)),
            TopologySpec::Spidergon { nodes } => {
                Box::new(SpidergonAcrossFirst::new(&Spidergon::new(nodes)?))
            }
            TopologySpec::Mesh { cols, rows } => Box::new(MeshXY::new(&RectMesh::new(cols, rows)?)),
            TopologySpec::MeshBalanced { nodes } => {
                Box::new(MeshXY::new(&RectMesh::balanced(nodes)?))
            }
            TopologySpec::IrregularMesh { cols, nodes } => {
                Box::new(MeshXY::new_irregular(&IrregularMesh::new(cols, nodes)?))
            }
            TopologySpec::RealisticMesh { nodes } => {
                Box::new(MeshXY::new_irregular(&IrregularMesh::realistic(nodes)?))
            }
            TopologySpec::Torus { cols, rows } => Box::new(TorusXY::new(&Torus::new(cols, rows)?)),
        })
    }

    /// Builds the West-First partially-adaptive routing algorithm —
    /// only defined for full rectangular meshes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] for non-mesh families and
    /// [`CoreError::Topology`] if the mesh cannot be built.
    pub fn build_adaptive_routing(&self) -> Result<Box<dyn RoutingAlgorithm>, CoreError> {
        match *self {
            TopologySpec::Mesh { cols, rows } => {
                Ok(Box::new(WestFirst::new(&RectMesh::new(cols, rows)?)))
            }
            TopologySpec::MeshBalanced { nodes } => {
                Ok(Box::new(WestFirst::new(&RectMesh::balanced(nodes)?)))
            }
            _ => Err(CoreError::InvalidSpec {
                reason: "west-first adaptive routing requires a full rectangular mesh".to_owned(),
            }),
        }
    }

    /// Builds BFS table-driven routing for this topology (the oracle /
    /// fallback scheme).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Topology`] if the topology cannot be built.
    pub fn build_table_routing(&self) -> Result<Box<dyn RoutingAlgorithm>, CoreError> {
        let topo = self.build()?;
        Ok(Box::new(TableRouting::from_topology(topo.as_ref())))
    }

    /// Human-readable label of the built topology.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Topology`] if the spec is invalid.
    pub fn label(&self) -> Result<String, CoreError> {
        Ok(self.build()?.label())
    }

    /// The grid shape `(cols, rows)` if this spec is mesh-like.
    fn mesh_shape(&self) -> Option<(usize, usize)> {
        match *self {
            TopologySpec::Mesh { cols, rows } => Some((cols, rows)),
            TopologySpec::MeshBalanced { nodes } => {
                let mesh = RectMesh::balanced(nodes).ok()?;
                Some((mesh.cols(), mesh.rows()))
            }
            TopologySpec::IrregularMesh { cols, nodes } => Some((cols, nodes.div_ceil(cols))),
            TopologySpec::RealisticMesh { nodes } => {
                let mesh = IrregularMesh::realistic(nodes).ok()?;
                Some((mesh.cols(), mesh.rows()))
            }
            TopologySpec::Torus { cols, rows } => Some((cols, rows)),
            _ => None,
        }
    }
}

/// Specification of a traffic pattern.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum TrafficSpec {
    /// Homogeneous uniform sources/destinations (paper Section 3.1.3).
    Uniform,
    /// Single hot-spot with an explicit target (paper Section 3.1.1).
    SingleHotspot {
        /// Target node index.
        target: usize,
    },
    /// Double hot-spot with explicit targets.
    DoubleHotspot {
        /// The two target node indices.
        targets: [usize; 2],
    },
    /// Double hot-spot with targets placed by the paper's scenario
    /// rules for the topology family (Section 3.1.2).
    DoubleHotspotPlaced {
        /// Placement scenario (A / B / C).
        scenario: PlacementScenario,
    },
    /// Mixed hot-spot: each packet targets `target` with probability
    /// `fraction`, otherwise a uniformly random node.
    MixedHotspot {
        /// Hot node index.
        target: usize,
        /// Probability of addressing the hot node.
        fraction: f64,
    },
    /// Matrix transpose (square meshes only).
    Transpose,
    /// Bit-complement (`i -> N - 1 - i`).
    Complement,
    /// Nearest neighbor (`i -> i + 1 mod N`).
    NearestNeighbor,
}

impl TrafficSpec {
    /// Builds the traffic pattern for the given topology spec.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Traffic`] for out-of-range targets and
    /// [`CoreError::InvalidSpec`] for family mismatches (transpose on a
    /// non-square mesh, placed hot-spots on unsupported shapes).
    pub fn build(&self, topology: &TopologySpec) -> Result<Box<dyn TrafficPattern>, CoreError> {
        let n = topology.nodes();
        Ok(match *self {
            TrafficSpec::Uniform => Box::new(UniformRandom::new(n)?),
            TrafficSpec::SingleHotspot { target } => {
                Box::new(SingleHotspot::new(n, NodeId::new(target))?)
            }
            TrafficSpec::DoubleHotspot { targets } => Box::new(DoubleHotspot::new(
                n,
                [NodeId::new(targets[0]), NodeId::new(targets[1])],
            )?),
            TrafficSpec::DoubleHotspotPlaced { scenario } => {
                let kind = topology.build()?.kind();
                let targets = match kind {
                    TopologyKind::Ring | TopologyKind::Spidergon => {
                        placement::ring_placement(scenario, n)?
                    }
                    TopologyKind::Mesh | TopologyKind::IrregularMesh | TopologyKind::Torus => {
                        let (cols, rows) =
                            topology
                                .mesh_shape()
                                .ok_or_else(|| CoreError::InvalidSpec {
                                    reason: "mesh shape unavailable for placement".to_owned(),
                                })?;
                        placement::mesh_placement(scenario, cols, rows)?
                    }
                };
                if targets.iter().any(|t| t.index() >= n) {
                    return Err(CoreError::InvalidSpec {
                        reason: format!("placed target outside {n}-node topology"),
                    });
                }
                Box::new(DoubleHotspot::new(n, targets)?)
            }
            TrafficSpec::MixedHotspot { target, fraction } => {
                Box::new(MixedHotspot::new(n, NodeId::new(target), fraction)?)
            }
            TrafficSpec::Transpose => {
                let (cols, rows) = topology
                    .mesh_shape()
                    .ok_or_else(|| CoreError::InvalidSpec {
                        reason: "transpose traffic requires a mesh topology".to_owned(),
                    })?;
                if cols != rows {
                    return Err(CoreError::InvalidSpec {
                        reason: format!(
                            "transpose traffic requires a square mesh, got {cols}x{rows}"
                        ),
                    });
                }
                Box::new(Transpose::new(cols)?)
            }
            TrafficSpec::Complement => Box::new(Complement::new(n)?),
            TrafficSpec::NearestNeighbor => Box::new(NearestNeighbor::new(n)?),
        })
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            TrafficSpec::Uniform => "uniform".to_owned(),
            TrafficSpec::SingleHotspot { target } => format!("hotspot(n{target})"),
            TrafficSpec::DoubleHotspot { targets } => {
                format!("hotspot2(n{},n{})", targets[0], targets[1])
            }
            TrafficSpec::DoubleHotspotPlaced { scenario } => format!("hotspot2[{scenario}]"),
            TrafficSpec::MixedHotspot { target, fraction } => {
                format!("mixed-hotspot(n{target},{:.0}%)", fraction * 100.0)
            }
            TrafficSpec::Transpose => "transpose".to_owned(),
            TrafficSpec::Complement => "complement".to_owned(),
            TrafficSpec::NearestNeighbor => "nearest-neighbor".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_specs_build_and_count_nodes() {
        let specs = [
            TopologySpec::Ring { nodes: 8 },
            TopologySpec::Spidergon { nodes: 8 },
            TopologySpec::Mesh { cols: 2, rows: 4 },
            TopologySpec::MeshBalanced { nodes: 8 },
            TopologySpec::IrregularMesh { cols: 3, nodes: 8 },
            TopologySpec::RealisticMesh { nodes: 8 },
        ];
        for spec in specs {
            assert_eq!(spec.nodes(), 8, "{spec:?}");
            assert_eq!(spec.build().unwrap().num_nodes(), 8, "{spec:?}");
            let _ = spec.build_routing().unwrap();
            assert!(!spec.label().unwrap().is_empty());
        }
    }

    #[test]
    fn routing_matches_family() {
        assert_eq!(
            TopologySpec::Spidergon { nodes: 12 }
                .build_routing()
                .unwrap()
                .label(),
            "across-first"
        );
        assert_eq!(
            TopologySpec::Mesh { cols: 2, rows: 4 }
                .build_routing()
                .unwrap()
                .label(),
            "xy-dimension-order"
        );
        assert_eq!(
            TopologySpec::Ring { nodes: 5 }
                .build_routing()
                .unwrap()
                .label(),
            "ring-shortest"
        );
        assert_eq!(
            TopologySpec::Ring { nodes: 5 }
                .build_table_routing()
                .unwrap()
                .label(),
            "table-driven"
        );
    }

    #[test]
    fn invalid_specs_error() {
        assert!(TopologySpec::Ring { nodes: 2 }.build().is_err());
        assert!(TopologySpec::Spidergon { nodes: 7 }.build().is_err());
        assert!(TopologySpec::Mesh { cols: 0, rows: 3 }.build().is_err());
    }

    #[test]
    fn traffic_specs_build() {
        let topo = TopologySpec::Spidergon { nodes: 12 };
        for spec in [
            TrafficSpec::Uniform,
            TrafficSpec::SingleHotspot { target: 0 },
            TrafficSpec::DoubleHotspot { targets: [0, 6] },
            TrafficSpec::DoubleHotspotPlaced {
                scenario: PlacementScenario::Opposed,
            },
            TrafficSpec::MixedHotspot {
                target: 0,
                fraction: 0.3,
            },
            TrafficSpec::Complement,
            TrafficSpec::NearestNeighbor,
        ] {
            let pattern = spec.build(&topo).unwrap();
            assert_eq!(pattern.num_nodes(), 12, "{spec:?}");
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn placed_hotspots_follow_paper_positions() {
        // Mesh 2x4, scenario B: targets {0, 4}.
        let topo = TopologySpec::Mesh { cols: 2, rows: 4 };
        let spec = TrafficSpec::DoubleHotspotPlaced {
            scenario: PlacementScenario::CornerMiddle,
        };
        let pattern = spec.build(&topo).unwrap();
        assert!(!pattern.is_source(NodeId::new(0)));
        assert!(!pattern.is_source(NodeId::new(4)));
        // Spidergon 12, scenario A: {0, 6}.
        let topo = TopologySpec::Spidergon { nodes: 12 };
        let spec = TrafficSpec::DoubleHotspotPlaced {
            scenario: PlacementScenario::Opposed,
        };
        let pattern = spec.build(&topo).unwrap();
        assert!(!pattern.is_source(NodeId::new(6)));
    }

    #[test]
    fn transpose_requires_square_mesh() {
        let err = TrafficSpec::Transpose
            .build(&TopologySpec::Mesh { cols: 2, rows: 4 })
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpec { .. }));
        let err = TrafficSpec::Transpose
            .build(&TopologySpec::Ring { nodes: 16 })
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpec { .. }));
        assert!(TrafficSpec::Transpose
            .build(&TopologySpec::Mesh { cols: 4, rows: 4 })
            .is_ok());
    }

    #[test]
    fn specs_round_trip_through_json() {
        let topo = TopologySpec::IrregularMesh { cols: 4, nodes: 14 };
        let json = serde_json::to_string(&topo).unwrap();
        assert_eq!(serde_json::from_str::<TopologySpec>(&json).unwrap(), topo);
        let traffic = TrafficSpec::DoubleHotspotPlaced {
            scenario: PlacementScenario::MiddlePair,
        };
        let json = serde_json::to_string(&traffic).unwrap();
        assert_eq!(serde_json::from_str::<TrafficSpec>(&json).unwrap(), traffic);
    }
}
