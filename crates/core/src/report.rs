//! Figure data containers and renderers (ASCII tables, CSV, JSON).
//!
//! Every reproduced figure is a set of labelled series over a common
//! x-axis; the renderers print exactly the rows a plot would be drawn
//! from, so `cargo run --bin fig10` output can be compared with the
//! paper directly.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One point of a series.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate (injection rate, node count, ...).
    pub x: f64,
    /// Y coordinate (throughput, latency, hops, ...).
    pub y: f64,
    /// Optional spread (sample standard deviation over replications).
    pub std: f64,
}

/// A labelled curve of a figure.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Curve label, e.g. `"spidergon-24"`.
    pub label: String,
    /// Points in ascending x order.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates a series from `(x, y)` pairs with zero spread.
    pub fn from_xy(label: impl Into<String>, xy: impl IntoIterator<Item = (f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points: xy
                .into_iter()
                .map(|(x, y)| Point { x, y, std: 0.0 })
                .collect(),
        }
    }

    /// The y value at a given x, if present (exact match within 1e-9).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }
}

/// All data of one reproduced figure or table.
///
/// # Examples
///
/// ```
/// use noc_core::report::{FigureData, Series};
///
/// let fig = FigureData::new("fig2", "Network diameter vs N", "N", "ND")
///     .with_series(Series::from_xy("ring", [(8.0, 4.0), (16.0, 8.0)]));
/// let table = fig.to_ascii_table();
/// assert!(table.contains("ring"));
/// assert!(fig.to_csv().starts_with("x,"));
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FigureData {
    /// Identifier, e.g. `"fig6"`.
    pub id: String,
    /// Title, e.g. `"NoC throughput, one hot-spot destination node"`.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a series in place.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Finds a series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The sorted union of all x values across series.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are not NaN"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Renders an aligned ASCII table: one row per x value, one column
    /// per series (empty cells where a series has no point).
    pub fn to_ascii_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}: {}", self.id, self.title);
        let _ = writeln!(out, "# y = {}", self.y_label);
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let xs = self.x_values();
        let mut rows: Vec<Vec<String>> = vec![header];
        for &x in &xs {
            let mut row = vec![format_number(x)];
            for s in &self.series {
                row.push(s.y_at(x).map(format_number).unwrap_or_default());
            }
            rows.push(row);
        }
        let cols = rows[0].len();
        let widths: Vec<usize> = (0..cols)
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for row in &rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders CSV with columns `x, <label>, <label>_std, ...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x");
        for s in &self.series {
            let _ = write!(out, ",{},{}_std", s.label, s.label);
        }
        out.push('\n');
        for &x in &self.x_values() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.iter().find(|p| (p.x - x).abs() < 1e-9) {
                    Some(p) => {
                        let _ = write!(out, ",{},{}", p.y, p.std);
                    }
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics for the types involved (no non-string keys).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FigureData serializes")
    }
}

fn format_number(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

/// One-line latency summary of a run: mean plus the p50/p95/p99 order
/// statistics from the histogram ("-" where nothing was delivered).
///
/// # Examples
///
/// ```
/// use noc_core::report::latency_summary;
/// use noc_sim::LatencyStats;
///
/// let mut lat = LatencyStats::new();
/// for v in [8, 9, 10, 30] {
///     lat.record(v);
/// }
/// let line = latency_summary(&lat);
/// assert!(line.contains("p95 30"));
/// ```
pub fn latency_summary(latency: &noc_sim::LatencyStats) -> String {
    let pct = |p: f64| {
        latency
            .percentile(p)
            .map_or_else(|| "-".to_owned(), |v| v.to_string())
    };
    format!(
        "latency mean {:.2} cycles, p50 {} / p95 {} / p99 {} / max {}",
        latency.mean().unwrap_or(0.0),
        pct(50.0),
        pct(95.0),
        pct(99.0),
        latency
            .max()
            .map_or_else(|| "-".to_owned(), |v| v.to_string()),
    )
}

/// Aligned text table of a recorded latency decomposition
/// ([`noc_sim::LatencyBreakdown`]): one row per component plus the
/// end-to-end total, with count, mean, percentiles and the share of
/// the total mean each component accounts for.
pub fn breakdown_table(breakdown: &noc_sim::LatencyBreakdown) -> String {
    let total_mean = breakdown.total.mean().unwrap_or(0.0);
    let mut out =
        String::from("component        count     mean    p50    p95    p99    max  share\n");
    for (label, stats) in [
        ("source_queuing", &breakdown.source_queuing),
        ("router_blocking", &breakdown.router_blocking),
        ("transfer", &breakdown.transfer),
        ("total", &breakdown.total),
    ] {
        let mean = stats.mean().unwrap_or(0.0);
        let pct = |p: f64| stats.percentile(p).unwrap_or(0);
        let share = if total_mean > 0.0 {
            format!("{:5.1}%", 100.0 * mean / total_mean)
        } else {
            "     -".to_owned()
        };
        let _ = writeln!(
            out,
            "{label:<15} {count:>6} {mean:>8.2} {p50:>6} {p95:>6} {p99:>6} {max:>6}  {share}",
            count = stats.count(),
            p50 = pct(50.0),
            p95 = pct(95.0),
            p99 = pct(99.0),
            max = stats.max().unwrap_or(0),
        );
    }
    out
}

/// Execution metadata for one run or sweep invocation, recorded so a
/// result can be tied back to how it was produced. Thread count is
/// informational only — output is bit-identical for any worker count
/// (see [`crate::parallel`]).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct RunMetadata {
    /// Worker threads the parallel engine resolved to.
    pub threads: usize,
    /// The parallelism policy the count came from (`"sequential"`,
    /// `"auto"`, `"fixed"`).
    pub policy: String,
    /// Cores available on the host that produced the result.
    pub host_cores: usize,
    /// `git describe` of the producing tree, captured at run time
    /// (`None` when git is unavailable).
    pub git_describe: Option<String>,
    /// Whether the producing tree had uncommitted changes (a
    /// `-dirty` suffix in `git_describe`). Dirty results cannot be
    /// reproduced from any commit, so they are flagged explicitly.
    pub git_dirty: bool,
    /// Experiment-cache hits during the run (0 when caching was off).
    pub cache_hits: u64,
    /// Experiment-cache misses — points actually simulated.
    pub cache_misses: u64,
}

impl Default for RunMetadata {
    fn default() -> Self {
        RunMetadata {
            threads: 1,
            policy: "sequential".to_owned(),
            host_cores: 1,
            git_describe: None,
            git_dirty: false,
            cache_hits: 0,
            cache_misses: 0,
        }
    }
}

impl RunMetadata {
    /// Captures metadata for the given parallelism policy on this host.
    pub fn for_parallelism(parallelism: crate::Parallelism) -> Self {
        use crate::Parallelism;
        RunMetadata {
            threads: parallelism.worker_count(),
            policy: match parallelism {
                Parallelism::Sequential => "sequential",
                Parallelism::Auto => "auto",
                Parallelism::Fixed(_) => "fixed",
            }
            .to_owned(),
            host_cores: crate::parallel::available_cores(),
            ..RunMetadata::default()
        }
    }

    /// Fills the git fields from `git describe` run **now**, in the
    /// current working directory (see [`git_provenance`]).
    #[must_use]
    pub fn with_git_provenance(mut self) -> Self {
        let (describe, dirty) = git_provenance();
        self.git_describe = describe;
        self.git_dirty = dirty;
        self
    }

    /// Fills the cache-counter fields from a counter snapshot.
    #[must_use]
    pub fn with_cache_counters(mut self, counters: crate::cache::CacheCounters) -> Self {
        self.cache_hits = counters.hits;
        self.cache_misses = counters.misses;
        self
    }
}

/// `git describe --always --dirty` of the current working directory,
/// captured at call time, plus whether the tree was dirty. Returns
/// `(None, false)` when git is missing or the directory is not a
/// repository — provenance is best-effort, never a failure.
pub fn git_provenance() -> (Option<String>, bool) {
    let output = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output();
    match output {
        Ok(out) if out.status.success() => {
            let describe = String::from_utf8_lossy(&out.stdout).trim().to_owned();
            if describe.is_empty() {
                (None, false)
            } else {
                let dirty = describe.ends_with("-dirty");
                (Some(describe), dirty)
            }
        }
        _ => (None, false),
    }
}

impl std::fmt::Display for RunMetadata {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "threads {} ({}), host cores {}",
            self.threads, self.policy, self.host_cores
        )?;
        if let Some(describe) = &self.git_describe {
            write!(f, ", git {describe}")?;
        }
        if self.cache_hits > 0 || self.cache_misses > 0 {
            write!(
                f,
                ", cache {} hit(s) / {} miss(es)",
                self.cache_hits, self.cache_misses
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        FigureData::new("figX", "Sample", "N", "metric")
            .with_series(Series::from_xy("a", [(1.0, 0.5), (2.0, 1.5)]))
            .with_series(Series::from_xy("b", [(1.0, 2.0), (3.0, 4.0)]))
    }

    #[test]
    fn x_values_are_union() {
        assert_eq!(sample().x_values(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ascii_table_has_all_rows_and_columns() {
        let t = sample().to_ascii_table();
        assert!(t.contains("figX"));
        assert!(t.contains("N"));
        assert!(t.contains('a') && t.contains('b'));
        // 2 header comment lines + 1 header row + 3 data rows.
        assert_eq!(t.lines().count(), 6);
    }

    #[test]
    fn csv_has_std_columns_and_gaps() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "x,a,a_std,b,b_std");
        assert_eq!(lines.next().unwrap(), "1,0.5,0,2,0");
        assert_eq!(lines.next().unwrap(), "2,1.5,0,,");
        assert_eq!(lines.next().unwrap(), "3,,,4,0");
    }

    #[test]
    fn json_round_trips() {
        let fig = sample();
        let back: FigureData = serde_json::from_str(&fig.to_json()).unwrap();
        assert_eq!(back, fig);
    }

    #[test]
    fn series_lookup() {
        let fig = sample();
        assert!(fig.series_by_label("a").is_some());
        assert!(fig.series_by_label("zzz").is_none());
        assert_eq!(fig.series_by_label("b").unwrap().y_at(3.0), Some(4.0));
        assert_eq!(fig.series_by_label("b").unwrap().y_at(9.0), None);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(4.0), "4");
        assert_eq!(format_number(0.12345), "0.1235"); // {:.4} rounds
    }

    #[test]
    fn latency_summary_handles_empty_and_filled() {
        let empty = latency_summary(&noc_sim::LatencyStats::new());
        assert!(empty.contains("p50 - / p95 - / p99 -"));
        let mut lat = noc_sim::LatencyStats::new();
        for v in 1..=100 {
            lat.record(v);
        }
        let line = latency_summary(&lat);
        assert!(
            line.contains("p50 50 / p95 95 / p99 99 / max 100"),
            "{line}"
        );
    }

    #[test]
    fn breakdown_table_lists_all_components() {
        let mut b = noc_sim::LatencyBreakdown::default();
        b.source_queuing.record(2);
        b.router_blocking.record(3);
        b.transfer.record(5);
        b.total.record(10);
        let table = breakdown_table(&b);
        for label in ["source_queuing", "router_blocking", "transfer", "total"] {
            assert!(table.contains(label), "{table}");
        }
        // Shares: 20% + 30% + 50% = the total's 100%.
        assert!(table.contains("20.0%") && table.contains("30.0%") && table.contains("50.0%"));
        assert!(table.contains("100.0%"));
    }

    #[test]
    fn run_metadata_reflects_policy() {
        let m = RunMetadata::for_parallelism(crate::Parallelism::Fixed(3));
        assert_eq!(m.threads, 3);
        assert_eq!(m.policy, "fixed");
        assert!(m.host_cores >= 1);
        assert!(m.to_string().contains("fixed"));
        let back: RunMetadata = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
        let seq = RunMetadata::for_parallelism(crate::Parallelism::Sequential);
        assert_eq!((seq.threads, seq.policy.as_str()), (1, "sequential"));
    }

    #[test]
    fn run_metadata_provenance_and_cache_fields() {
        let m = RunMetadata::for_parallelism(crate::Parallelism::Sequential).with_cache_counters(
            crate::cache::CacheCounters {
                hits: 5,
                misses: 2,
                stores: 2,
            },
        );
        assert_eq!((m.cache_hits, m.cache_misses), (5, 2));
        assert!(m.to_string().contains("cache 5 hit(s) / 2 miss(es)"));
        // Old-format JSON (no git/cache fields) still deserializes.
        let legacy: RunMetadata =
            serde_json::from_str(r#"{"threads":2,"policy":"auto","host_cores":8}"#).unwrap();
        assert_eq!(legacy.threads, 2);
        assert_eq!(legacy.git_describe, None);
        assert!(!legacy.git_dirty);
        assert_eq!((legacy.cache_hits, legacy.cache_misses), (0, 0));
        // Full round trip with every field set.
        let full = RunMetadata {
            git_describe: Some("abc1234-dirty".to_owned()),
            git_dirty: true,
            ..m
        };
        assert!(full.to_string().contains("git abc1234-dirty"));
        let back: RunMetadata =
            serde_json::from_str(&serde_json::to_string(&full).unwrap()).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn git_provenance_marks_dirty_consistently() {
        // Whatever the ambient tree looks like, the dirty flag must
        // agree with the describe suffix.
        let (describe, dirty) = git_provenance();
        match describe {
            Some(d) => assert_eq!(dirty, d.ends_with("-dirty"), "{d}"),
            None => assert!(!dirty),
        }
    }
}
