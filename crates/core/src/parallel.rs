//! Deterministic parallel execution of independent simulation jobs.
//!
//! Every figure in the paper is a grid of *independent* simulations —
//! topology family × node count × traffic scenario × injection rate ×
//! replication seed. Each job owns its own RNG (seeded from
//! `config.seed + replication`), so jobs can run on any thread in any
//! order as long as their results are reassembled in job order. This
//! module provides that engine:
//!
//! 1. callers flatten their loops into an indexed job list;
//! 2. [`run_indexed`] executes the jobs on a scoped-thread worker pool
//!    ([`std::thread::scope`], no extra dependencies), workers pulling
//!    the next job index from a shared atomic counter;
//! 3. results land in per-index slots and are returned in job order.
//!
//! Because job index — not thread schedule — determines where a result
//! lands, output is **bit-identical** to a sequential run for any
//! worker count (asserted by `tests/parallel_determinism.rs`).
//!
//! Worker count comes from a [`Parallelism`] option. The default,
//! [`Parallelism::Auto`], honors the `NOC_THREADS` environment variable
//! and otherwise uses all available cores, so existing entry points
//! parallelize without signature changes.

use crate::{CoreError, Experiment, RunResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-count policy for the parallel experiment engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Parallelism {
    /// `NOC_THREADS` if set to a positive integer, otherwise all
    /// available cores.
    #[default]
    Auto,
    /// One worker on the calling thread; never spawns.
    Sequential,
    /// Exactly this many workers (explicit choice, e.g. a CLI flag;
    /// wins over `NOC_THREADS`). Zero is clamped to one.
    Fixed(usize),
}

impl Parallelism {
    /// Resolves the policy to a concrete worker count (≥ 1).
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => env_threads().unwrap_or_else(available_cores),
        }
    }
}

/// The `NOC_THREADS` override, if set to a positive integer.
fn env_threads() -> Option<usize> {
    std::env::var("NOC_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// Cores available to this process (1 if undetectable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `jobs` under the given parallelism and returns their results
/// **in job order**, regardless of which worker ran which job.
///
/// With one worker (or one job) the jobs run inline on the calling
/// thread — the sequential baseline is literally this same code path.
/// A panicking job propagates after all workers join (via
/// [`std::thread::scope`]).
pub fn run_indexed<T, F>(jobs: Vec<F>, parallelism: Parallelism) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = parallelism.worker_count().min(n);
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    // Jobs are taken (FnOnce) and results stored through per-index
    // mutexes; contention is negligible because each is touched once
    // and jobs are long compared to a lock round trip.
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let job = jobs[index]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("job taken twice");
                let result = job();
                *slots[index].lock().expect("slot mutex poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

/// One entry of a flattened experiment grid: an [`Experiment`] plus the
/// replication seed it must run with.
#[derive(Clone, PartialEq, Debug)]
pub struct ExperimentJob {
    /// The experiment to run.
    pub experiment: Experiment,
    /// Seed for this job (overrides `experiment.config.seed`).
    pub seed: u64,
}

impl ExperimentJob {
    /// Runs the job on the calling thread.
    ///
    /// # Errors
    ///
    /// See [`Experiment::run_with_seed`].
    pub fn run(&self) -> Result<RunResult, CoreError> {
        self.experiment.run_with_seed(self.seed)
    }
}

/// Runs a flattened job list through the engine, returning run results
/// in job order.
///
/// When the `NOC_CACHE` environment variable enables the experiment
/// cache (see [`crate::cache::ExperimentCache::from_env`]), cached
/// points are answered from disk and only the misses are simulated —
/// every caller (`run_replicated`, `sweep_rates`, the figure
/// functions) becomes incremental through this single funnel.
///
/// # Errors
///
/// If any job fails, returns the error of the **lowest-index** failing
/// job — the same error a sequential loop would have stopped at, so
/// error reporting is deterministic too.
pub fn run_experiment_jobs(
    jobs: Vec<ExperimentJob>,
    parallelism: Parallelism,
) -> Result<Vec<RunResult>, CoreError> {
    run_experiment_jobs_with_cache(
        jobs,
        parallelism,
        &crate::cache::ExperimentCache::from_env(),
    )
}

/// The incremental scheduler behind [`run_experiment_jobs`]: partitions
/// jobs into cache hits and misses, hands only the misses to the
/// parallel engine, splices the results back **in job order** and
/// stores fresh results for the next run.
///
/// Output is bit-identical to an uncached run: a hit is exactly the
/// [`RunResult`] a fresh simulation would return (the conformance
/// harness asserts this), and result order never depends on which
/// points hit. Cache I/O failures degrade to recomputation, never to a
/// run failure. Hit/miss/store counts accumulate in the process-wide
/// [`crate::cache::counters`].
///
/// # Errors
///
/// Same contract as [`run_experiment_jobs`]: the lowest-index failing
/// job's error. (Hits cannot fail, and misses keep their original
/// relative order, so the first miss error *is* the lowest-index one.)
pub fn run_experiment_jobs_with_cache(
    jobs: Vec<ExperimentJob>,
    parallelism: Parallelism,
    cache: &crate::cache::ExperimentCache,
) -> Result<Vec<RunResult>, CoreError> {
    use crate::cache::CacheCounters;
    if !cache.is_enabled() {
        let closures: Vec<_> = jobs.into_iter().map(|job| move || job.run()).collect();
        return run_indexed(closures, parallelism).into_iter().collect();
    }

    // Partition: fill hit slots immediately, keep misses (with their
    // original index) in ascending order.
    let mut slots: Vec<Option<RunResult>> = Vec::with_capacity(jobs.len());
    let mut misses: Vec<(usize, ExperimentJob)> = Vec::new();
    let mut hits: u64 = 0;
    for (index, job) in jobs.into_iter().enumerate() {
        match cache.lookup(&job.experiment, job.seed) {
            Some(result) => {
                hits += 1;
                slots.push(Some(result));
            }
            None => {
                slots.push(None);
                misses.push((index, job));
            }
        }
    }

    // Simulate only the misses. Closures borrow the jobs (run_indexed
    // spawns scoped threads, so non-'static borrows are fine) because
    // each job is needed again afterwards to store its result.
    let computed = run_indexed(
        misses.iter().map(|(_, job)| move || job.run()).collect(),
        parallelism,
    );
    let miss_count = misses.len() as u64;
    let mut stores: u64 = 0;
    let mut splice = Vec::with_capacity(computed.len());
    let mut first_error: Option<CoreError> = None;
    for ((index, job), outcome) in misses.iter().zip(computed) {
        match outcome {
            Ok(result) => {
                // Best-effort: successes are worth keeping even when a
                // sibling job failed the overall call.
                if cache
                    .store(&job.experiment, job.seed, &result)
                    .unwrap_or(false)
                {
                    stores += 1;
                }
                splice.push((*index, result));
            }
            Err(error) => {
                if first_error.is_none() {
                    first_error = Some(error);
                }
            }
        }
    }
    crate::cache::record_counters(CacheCounters {
        hits,
        misses: miss_count,
        stores,
    });
    cache.enforce_env_limit();
    if let Some(error) = first_error {
        return Err(error);
    }
    for (index, result) in splice {
        slots[index] = Some(result);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every job hit or was simulated"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<_> = (0..64usize)
            .map(|i| {
                move || {
                    // Vary per-job runtime so threads finish out of order.
                    let mut acc = i as u64;
                    for _ in 0..((64 - i) * 1000) {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    (i, acc & 0xFF)
                }
            })
            .collect();
        let out = run_indexed(jobs, Parallelism::Fixed(4));
        let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_fixed_agree() {
        let mk = || (0..20usize).map(|i| move || i * i).collect::<Vec<_>>();
        assert_eq!(
            run_indexed(mk(), Parallelism::Sequential),
            run_indexed(mk(), Parallelism::Fixed(7))
        );
    }

    #[test]
    fn worker_count_policies() {
        assert_eq!(Parallelism::Sequential.worker_count(), 1);
        assert_eq!(Parallelism::Fixed(3).worker_count(), 3);
        assert_eq!(Parallelism::Fixed(0).worker_count(), 1);
        assert!(Parallelism::Auto.worker_count() >= 1);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = run_indexed(Vec::<fn() -> u32>::new(), Parallelism::Auto);
        assert!(out.is_empty());
    }

    #[test]
    fn first_error_in_index_order_wins() {
        use crate::{TopologySpec, TrafficSpec};
        use noc_sim::SimConfig;
        // Index 1 has an invalid topology (too few nodes); index 3 too.
        // The engine must report index 1's error, as a sequential loop
        // would.
        let good = Experiment {
            topology: TopologySpec::Spidergon { nodes: 8 },
            traffic: TrafficSpec::Uniform,
            config: SimConfig::builder()
                .warmup_cycles(10)
                .measure_cycles(50)
                .build()
                .unwrap(),
        };
        let bad = |nodes| Experiment {
            topology: TopologySpec::Ring { nodes },
            ..good.clone()
        };
        let jobs = vec![
            ExperimentJob {
                experiment: good.clone(),
                seed: 1,
            },
            ExperimentJob {
                experiment: bad(1),
                seed: 2,
            },
            ExperimentJob {
                experiment: good.clone(),
                seed: 3,
            },
            ExperimentJob {
                experiment: bad(2),
                seed: 4,
            },
        ];
        let expected = jobs[1].run().unwrap_err().to_string();
        let err = run_experiment_jobs(jobs, Parallelism::Fixed(4)).unwrap_err();
        assert_eq!(err.to_string(), expected);
    }
}
