//! Running experiments: a (topology, traffic, configuration) triple,
//! single runs and seed-replicated aggregates.

use crate::parallel::{run_experiment_jobs, ExperimentJob, Parallelism};
use crate::{CoreError, TopologySpec, TrafficSpec};
use noc_sim::{AuditReport, LatencyStats, Recorder, SimConfig, SimStats, Simulation};
use serde::{Deserialize, Serialize};

/// A fully-specified simulation experiment.
///
/// # Examples
///
/// ```
/// use noc_core::{Experiment, TopologySpec, TrafficSpec};
/// use noc_sim::SimConfig;
///
/// let exp = Experiment {
///     topology: TopologySpec::Spidergon { nodes: 8 },
///     traffic: TrafficSpec::Uniform,
///     config: SimConfig::builder()
///         .injection_rate(0.1)
///         .warmup_cycles(200)
///         .measure_cycles(2_000)
///         .build()?,
/// };
/// let result = exp.run()?;
/// assert!(result.stats.packets_delivered > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Experiment {
    /// Topology to simulate.
    pub topology: TopologySpec,
    /// Traffic pattern driving the sources.
    pub traffic: TrafficSpec,
    /// Simulator configuration (buffers, rates, windows, seed).
    pub config: SimConfig,
}

/// Outcome of one experiment run.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Label of the simulated topology (e.g. `"spidergon-16"`).
    pub topology_label: String,
    /// Label of the traffic pattern.
    pub traffic_label: String,
    /// Injection rate lambda used (flits/cycle per source).
    pub injection_rate: f64,
    /// Seed the run used.
    pub seed: u64,
    /// Raw simulator statistics.
    pub stats: SimStats,
}

impl RunResult {
    /// Aggregate throughput in flits/cycle.
    pub fn throughput(&self) -> f64 {
        self.stats.throughput_flits_per_cycle()
    }

    /// Mean packet latency in cycles (`NaN` if nothing was delivered).
    pub fn latency(&self) -> f64 {
        self.stats.latency.mean().unwrap_or(f64::NAN)
    }
}

impl Experiment {
    /// Builds and runs the simulation once with the configured seed.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] if the specs are invalid or the run
    /// stalls (deadlock watchdog).
    pub fn run(&self) -> Result<RunResult, CoreError> {
        self.run_with_seed(self.config.seed)
    }

    /// Builds the configured simulation without running it, for
    /// callers that need simulator accessors beyond [`SimStats`] (the
    /// benchmark binaries read `active_router_ratio`, for example).
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] if the specs are invalid.
    pub fn build_simulation(&self) -> Result<Simulation, CoreError> {
        let topo = self.topology.build()?;
        let routing = self.topology.build_routing()?;
        let pattern = self.traffic.build(&self.topology)?;
        Ok(Simulation::new(
            topo,
            routing,
            pattern,
            self.config.clone(),
        )?)
    }

    /// Runs once with an explicit seed (overriding the configured one).
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_with_seed(&self, seed: u64) -> Result<RunResult, CoreError> {
        let topo = self.topology.build()?;
        let routing = self.topology.build_routing()?;
        let pattern = self.traffic.build(&self.topology)?;
        let mut config = self.config.clone();
        config.seed = seed;
        let topology_label = topo.label();
        let mut sim = Simulation::new(topo, routing, pattern, config)?;
        let stats = sim.run()?;
        Ok(RunResult {
            topology_label,
            traffic_label: self.traffic.label(),
            injection_rate: self.config.injection_rate,
            seed,
            stats,
        })
    }

    /// Runs once with an explicit seed and the runtime invariant
    /// auditor attached ([`noc_sim::audit`]), regardless of
    /// `config.audit`. Returns the run result together with the audit
    /// findings.
    ///
    /// Auditing never perturbs the simulation: the returned
    /// [`RunResult`] is identical to [`run_with_seed`] with the same
    /// seed (the conformance harness in [`crate::conformance`] asserts
    /// this bit-for-bit).
    ///
    /// [`run_with_seed`]: Self::run_with_seed
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_audited_with_seed(&self, seed: u64) -> Result<(RunResult, AuditReport), CoreError> {
        let topo = self.topology.build()?;
        let routing = self.topology.build_routing()?;
        let pattern = self.traffic.build(&self.topology)?;
        let mut config = self.config.clone();
        config.seed = seed;
        config.audit = true;
        let topology_label = topo.label();
        let mut sim = Simulation::new(topo, routing, pattern, config)?;
        let stats = sim.run()?;
        let report = sim.take_audit_report().unwrap_or_default();
        Ok((
            RunResult {
                topology_label,
                traffic_label: self.traffic.label(),
                injection_rate: self.config.injection_rate,
                seed,
                stats,
            },
            report,
        ))
    }

    /// Runs once with an explicit seed and a recording probe attached
    /// ([`noc_sim::probe`]): the **probed run mode**. Returns the run
    /// result together with the recorder holding the flit-lifecycle
    /// trace, time-series windows and latency decomposition.
    ///
    /// Probing never perturbs the simulation: the returned
    /// [`RunResult`] is bit-identical to [`run_with_seed`] with the
    /// same seed, and because a run is seed-deterministic the
    /// recorder's exports are byte-identical for any worker-thread
    /// count of the surrounding engine (asserted in
    /// `crates/core/tests/trace.rs`).
    ///
    /// [`run_with_seed`]: Self::run_with_seed
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_traced_with_seed(&self, seed: u64) -> Result<(RunResult, Recorder), CoreError> {
        self.run_traced_with(seed, Recorder::new())
    }

    /// [`run_traced_with_seed`](Self::run_traced_with_seed) with a
    /// caller-configured recorder (e.g. a custom time-series window).
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_traced_with(
        &self,
        seed: u64,
        recorder: Recorder,
    ) -> Result<(RunResult, Recorder), CoreError> {
        let topo = self.topology.build()?;
        let routing = self.topology.build_routing()?;
        let pattern = self.traffic.build(&self.topology)?;
        let mut config = self.config.clone();
        config.seed = seed;
        let topology_label = topo.label();
        let mut sim = Simulation::with_probe(topo, routing, pattern, config, recorder)?;
        let stats = sim.run()?;
        Ok((
            RunResult {
                topology_label,
                traffic_label: self.traffic.label(),
                injection_rate: self.config.injection_rate,
                seed,
                stats,
            },
            sim.into_probe(),
        ))
    }

    /// Runs `replications` times with seeds `seed, seed+1, ...` and
    /// aggregates throughput and latency.
    ///
    /// Replications execute on the parallel experiment engine under
    /// [`Parallelism::Auto`] (see [`crate::parallel`]); results are
    /// identical to a sequential loop for any worker count.
    ///
    /// # Errors
    ///
    /// Returns the lowest-seed error encountered; requires
    /// `replications > 0` ([`CoreError::InvalidSpec`] otherwise).
    pub fn run_replicated(&self, replications: usize) -> Result<Aggregate, CoreError> {
        self.run_replicated_with(replications, Parallelism::default())
    }

    /// [`run_replicated`](Self::run_replicated) with an explicit
    /// parallelism policy.
    ///
    /// # Errors
    ///
    /// See [`run_replicated`](Self::run_replicated).
    pub fn run_replicated_with(
        &self,
        replications: usize,
        parallelism: Parallelism,
    ) -> Result<Aggregate, CoreError> {
        if replications == 0 {
            return Err(CoreError::InvalidSpec {
                reason: "replications must be positive".to_owned(),
            });
        }
        let jobs: Vec<ExperimentJob> = (0..replications)
            .map(|r| ExperimentJob {
                experiment: self.clone(),
                seed: self.config.seed.wrapping_add(r as u64),
            })
            .collect();
        let runs = run_experiment_jobs(jobs, parallelism)?;
        Ok(Aggregate::from_runs(runs))
    }
}

/// Mean and standard deviation over replicated runs.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Aggregate {
    /// The individual runs (in seed order).
    pub runs: Vec<RunResult>,
    /// Mean aggregate throughput in flits/cycle.
    pub throughput_mean: f64,
    /// Sample standard deviation of throughput.
    pub throughput_std: f64,
    /// Mean of per-run mean latencies in cycles.
    pub latency_mean: f64,
    /// Sample standard deviation of per-run mean latencies.
    pub latency_std: f64,
    /// Mean acceptance ratio (1.0 below saturation).
    pub acceptance_mean: f64,
    /// Mean hops per delivered packet, averaged over runs.
    pub mean_hops: f64,
    /// Median packet latency over the merged histogram of all runs
    /// (0 when nothing was delivered).
    #[serde(default)]
    pub latency_p50: u64,
    /// 95th-percentile packet latency over the merged histogram.
    #[serde(default)]
    pub latency_p95: u64,
    /// 99th-percentile packet latency over the merged histogram.
    #[serde(default)]
    pub latency_p99: u64,
}

impl Aggregate {
    /// Computes aggregates from a nonempty set of runs.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn from_runs(runs: Vec<RunResult>) -> Self {
        assert!(!runs.is_empty(), "aggregate needs at least one run");
        let throughputs: Vec<f64> = runs.iter().map(RunResult::throughput).collect();
        let latencies: Vec<f64> = runs
            .iter()
            .map(RunResult::latency)
            .filter(|l| l.is_finite())
            .collect();
        let acceptance: Vec<f64> = runs.iter().map(|r| r.stats.acceptance_ratio()).collect();
        let hops: Vec<f64> = runs.iter().filter_map(|r| r.stats.mean_hops()).collect();
        let (throughput_mean, throughput_std) = mean_std(&throughputs);
        let (latency_mean, latency_std) = mean_std(&latencies);
        let (acceptance_mean, _) = mean_std(&acceptance);
        let (mean_hops, _) = mean_std(&hops);
        // Percentiles come from the merged histogram — the percentile
        // of the pooled samples, not a mean of per-run percentiles.
        let mut merged = LatencyStats::new();
        for run in &runs {
            merged.merge(&run.stats.latency);
        }
        let pct = |p: f64| merged.percentile(p).unwrap_or(0);
        Aggregate {
            runs,
            throughput_mean,
            throughput_std,
            latency_mean,
            latency_std,
            acceptance_mean,
            mean_hops,
            latency_p50: pct(50.0),
            latency_p95: pct(95.0),
            latency_p99: pct(99.0),
        }
    }
}

/// Mean and sample standard deviation of a slice (`(0, 0)` if empty,
/// std 0 for singletons).
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(lambda: f64) -> Experiment {
        Experiment {
            topology: TopologySpec::Spidergon { nodes: 8 },
            traffic: TrafficSpec::Uniform,
            config: SimConfig::builder()
                .injection_rate(lambda)
                .warmup_cycles(100)
                .measure_cycles(1_000)
                .seed(1)
                .build()
                .unwrap(),
        }
    }

    #[test]
    fn single_run_produces_labels_and_stats() {
        let r = quick(0.1).run().unwrap();
        assert_eq!(r.topology_label, "spidergon-8");
        assert_eq!(r.traffic_label, "uniform");
        assert!(r.throughput() > 0.0);
        assert!(r.latency().is_finite());
    }

    #[test]
    fn replication_aggregates_have_spread() {
        let agg = quick(0.2).run_replicated(4).unwrap();
        assert_eq!(agg.runs.len(), 4);
        assert!(agg.throughput_mean > 0.0);
        assert!(agg.throughput_std >= 0.0);
        assert!(agg.latency_mean > 0.0);
        assert!(agg.acceptance_mean > 0.9);
        assert!(agg.mean_hops > 1.0);
        assert!(agg.latency_p50 > 0);
        assert!(agg.latency_p50 <= agg.latency_p95 && agg.latency_p95 <= agg.latency_p99);
        // Distinct seeds were used.
        let seeds: std::collections::HashSet<u64> = agg.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn zero_replications_rejected() {
        assert!(matches!(
            quick(0.1).run_replicated(0),
            Err(CoreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn run_with_seed_is_deterministic() {
        let exp = quick(0.15);
        let a = exp.run_with_seed(77).unwrap();
        let b = exp.run_with_seed(77).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let exp = quick(0.2);
        let plain = exp.run_with_seed(9).unwrap();
        let (traced, rec) = exp.run_traced_with_seed(9).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the run");
        assert!(!rec.events().is_empty());
        assert_eq!(
            rec.breakdown().total.count() as usize,
            rec.packet_timings().len()
        );
    }

    #[test]
    fn mean_std_basics() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn experiment_serializes() {
        let exp = quick(0.1);
        let json = serde_json::to_string(&exp).unwrap();
        let back: Experiment = serde_json::from_str(&json).unwrap();
        assert_eq!(back, exp);
    }
}
