//! Experiment harness reproducing Bononi & Concer, *"Simulation and
//! Analysis of Network on Chip Architectures: Ring, Spidergon and 2D
//! Mesh"* (DATE 2006).
//!
//! This crate ties the stack together — topologies
//! ([`noc_topology`]), routing ([`noc_routing`]), traffic
//! ([`noc_traffic`]) and the wormhole simulator ([`noc_sim`]) — behind
//! a declarative API:
//!
//! * [`TopologySpec`] / [`TrafficSpec`] — serializable experiment specs;
//! * [`Experiment`] — one (topology, traffic, config) run, with seed
//!   replication ([`Experiment::run_replicated`]);
//! * [`sweep_rates`] — injection-rate sweeps (the x-axis of the paper's
//!   Figures 6-11);
//! * [`parallel`] — deterministic scoped-thread engine that fans out
//!   replications, sweeps and figure grids across cores (worker count
//!   via [`Parallelism`] or the `NOC_THREADS` environment variable)
//!   while keeping output bit-identical to a sequential run;
//! * [`cache`] — content-addressed on-disk cache of run results
//!   (enabled via `NOC_CACHE`), so warm reruns of sweeps and figures
//!   only re-simulate points whose spec, seed or code version changed;
//! * [`figures`] — one function per paper figure, returning
//!   [`report::FigureData`] ready to print as an ASCII table or CSV;
//! * [`saturation_point`] — quantitative saturation detection;
//! * [`plot`] — ASCII line plots of any figure for the terminal.
//!
//! # Quick start
//!
//! ```
//! use noc_core::{Experiment, TopologySpec, TrafficSpec};
//! use noc_sim::SimConfig;
//!
//! // Spidergon-16 under uniform traffic at lambda = 0.2 flits/cycle.
//! let result = Experiment {
//!     topology: TopologySpec::Spidergon { nodes: 16 },
//!     traffic: TrafficSpec::Uniform,
//!     config: SimConfig::builder()
//!         .injection_rate(0.2)
//!         .warmup_cycles(500)
//!         .measure_cycles(5_000)
//!         .build()?,
//! }
//! .run()?;
//! println!("{}", result.stats);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod conformance;
mod error;
mod experiment;
pub mod figures;
pub mod parallel;
pub mod plot;
pub mod report;
mod saturation;
mod spec;
mod sweep;

pub use cache::{
    canonical_key, fingerprint, CacheCounters, CacheStats, ExperimentCache, Fingerprint,
    CACHE_SCHEMA,
};
pub use conformance::{
    matched_size_cases, run_conformance, CaseOutcome, ConformanceCase, ConformanceReport,
};
pub use error::CoreError;
pub use experiment::{mean_std, Aggregate, Experiment, RunResult};
pub use figures::FigureOptions;
pub use parallel::{
    run_experiment_jobs, run_experiment_jobs_with_cache, run_indexed, ExperimentJob, Parallelism,
};
pub use saturation::{saturation_point, SaturationPoint, DEFAULT_ACCEPTANCE_THRESHOLD};
pub use spec::{TopologySpec, TrafficSpec};
pub use sweep::{default_rate_grid, sweep_rates, sweep_rates_with, SweepPoint, SweepResult};

// Re-export the component crates so downstream users need only one
// dependency.
pub use noc_routing;
pub use noc_sim;
pub use noc_topology;
pub use noc_traffic;
