//! Differential conformance harness: replays identical seeded
//! scenarios across execution modes and asserts they agree exactly.
//!
//! Five differences are checked for every case and replication seed:
//!
//! 1. **audited vs unaudited** — attaching the runtime invariant
//!    auditor ([`noc_sim::audit`]) must not change a single bit of the
//!    collected [`SimStats`](noc_sim::SimStats);
//! 2. **sequential vs parallel** — running the audited replications
//!    through the parallel experiment engine ([`crate::parallel`])
//!    must be bit-identical to a sequential loop, stats *and* audit
//!    reports;
//! 3. **sparse vs dense** — the sparse active-set simulation core
//!    (idle-router skipping, fast-forward, compiled route tables) must
//!    be bit-identical to the dense reference core
//!    ([`SimConfig::sparse`] and [`SimConfig::compiled_routes`] both
//!    off), unaudited *and* audited;
//! 4. **cached vs fresh** — replaying the replications through the
//!    experiment cache ([`crate::cache`]) into a cold store and then
//!    a second time against the warm store must return the plain
//!    results bit-for-bit, with the warm pass simulating nothing
//!    (every point a hit);
//! 5. **zero violations** — every audited run must come back clean.
//!
//! The default case grid replays the paper's topology triple (ring,
//! Spidergon, 2D mesh) at matched sizes under homogeneous and single
//! hot-spot traffic, below and above saturation — the scenarios behind
//! the paper's figures. Any future "optimization" of the simulator hot
//! path that changes behaviour trips one of the three differences
//! immediately.
//!
//! Run it via [`run_conformance`], the `noc-cli conformance`
//! subcommand, or the `conformance` integration test of this crate
//! (CI exercises it with `NOC_THREADS=1` and `NOC_THREADS=4`).

use crate::parallel::{run_indexed, Parallelism};
use crate::{CoreError, Experiment, RunResult, TopologySpec, TrafficSpec};
use core::fmt;
use noc_sim::{AuditReport, SimConfig};

/// One scenario the harness replays across execution modes.
#[derive(Clone, PartialEq, Debug)]
pub struct ConformanceCase {
    /// Short label for reports (e.g. `"spidergon-16/hotspot@0.40"`).
    pub label: String,
    /// The experiment to replay.
    pub experiment: Experiment,
}

/// Outcome of one case after replaying all replications.
#[derive(Clone, PartialEq, Debug)]
pub struct CaseOutcome {
    /// Case label.
    pub label: String,
    /// Audited stats matched unaudited stats bit-for-bit on every seed.
    pub audited_matches_unaudited: bool,
    /// Parallel audited runs matched sequential audited runs (stats and
    /// audit reports) bit-for-bit.
    pub parallel_matches_sequential: bool,
    /// The sparse active-set core matched the dense reference core
    /// bit-for-bit — unaudited stats, audited stats and audit reports.
    pub sparse_matches_dense: bool,
    /// Cold-cache and warm-cache runs both matched the fresh results
    /// bit-for-bit, and the warm pass hit on every point.
    pub cached_matches_fresh: bool,
    /// Total audit violations over all audited runs (0 when clean).
    pub violations: usize,
    /// Total audit checks performed over all audited runs.
    pub checks: u64,
    /// Replications replayed.
    pub replications: usize,
}

impl CaseOutcome {
    /// `true` if every difference agreed and no violation was found.
    pub fn passed(&self) -> bool {
        self.audited_matches_unaudited
            && self.parallel_matches_sequential
            && self.sparse_matches_dense
            && self.cached_matches_fresh
            && self.violations == 0
    }
}

impl fmt::Display for CaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] audit=stats:{} par=seq:{} sparse=dense:{} cache=fresh:{} violations:{} \
             checks:{} reps:{}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.label,
            self.audited_matches_unaudited,
            self.parallel_matches_sequential,
            self.sparse_matches_dense,
            self.cached_matches_fresh,
            self.violations,
            self.checks,
            self.replications,
        )
    }
}

/// Aggregated outcome of a conformance run.
#[derive(Clone, PartialEq, Debug)]
pub struct ConformanceReport {
    /// Per-case outcomes, in case order.
    pub outcomes: Vec<CaseOutcome>,
    /// Details of the first few divergences/violations, for debugging.
    pub failures: Vec<String>,
}

impl ConformanceReport {
    /// `true` if every case passed.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(CaseOutcome::passed)
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for outcome in &self.outcomes {
            writeln!(f, "{outcome}")?;
        }
        for failure in &self.failures {
            writeln!(f, "  ! {failure}")?;
        }
        write!(
            f,
            "conformance: {}/{} case(s) passed",
            self.outcomes.iter().filter(|o| o.passed()).count(),
            self.outcomes.len()
        )
    }
}

/// Builds the default case grid: the paper's topology triple at a
/// matched node count, under uniform and single hot-spot traffic, at a
/// sub-saturation and a saturating injection rate.
///
/// `nodes` must suit all three topologies (Spidergon needs a multiple
/// of 4; 16 matches the paper's small configuration).
///
/// # Errors
///
/// Returns [`CoreError::InvalidSpec`] if `base.audit` is set (the
/// harness controls auditing itself) or `nodes < 4`.
pub fn matched_size_cases(
    nodes: usize,
    base: &SimConfig,
) -> Result<Vec<ConformanceCase>, CoreError> {
    if nodes < 4 {
        return Err(CoreError::InvalidSpec {
            reason: "conformance grid needs at least 4 nodes".to_owned(),
        });
    }
    if base.audit {
        return Err(CoreError::InvalidSpec {
            reason: "base config must leave `audit` off; the harness toggles it per mode"
                .to_owned(),
        });
    }
    let topologies = [
        TopologySpec::Ring { nodes },
        TopologySpec::Spidergon { nodes },
        TopologySpec::MeshBalanced { nodes },
    ];
    let traffics = [
        TrafficSpec::Uniform,
        TrafficSpec::SingleHotspot { target: 0 },
    ];
    // Below and above the hot-spot saturation point (~sink rate divided
    // by the source count), so both free-flowing and congested switch
    // allocation paths are replayed.
    let rates = [0.1, 0.4];
    let mut cases = Vec::new();
    for topology in &topologies {
        for traffic in &traffics {
            for &rate in &rates {
                let mut config = base.clone();
                config.injection_rate = rate;
                cases.push(ConformanceCase {
                    label: format!("{}/{}@{rate:.2}", topology.label()?, traffic.label()),
                    experiment: Experiment {
                        topology: *topology,
                        traffic: *traffic,
                        config,
                    },
                });
            }
        }
    }
    Ok(cases)
}

/// Replays every case `replications` times across execution modes —
/// unaudited sequential, audited sequential, audited on the parallel
/// engine, the dense reference core (plain and audited), and through
/// a cold then warm experiment cache — and reports whether they agree
/// bit-for-bit with zero violations.
///
/// `parallelism` is the worker policy for the parallel mode
/// (sequential execution of that mode still goes through the same
/// engine code path, so `Parallelism::Sequential` degenerates to a
/// self-comparison).
///
/// # Errors
///
/// Returns the first build/run error ([`CoreError`]); divergences and
/// violations are reported in the [`ConformanceReport`], not as
/// errors.
pub fn run_conformance(
    cases: &[ConformanceCase],
    replications: usize,
    parallelism: Parallelism,
) -> Result<ConformanceReport, CoreError> {
    if replications == 0 {
        return Err(CoreError::InvalidSpec {
            reason: "replications must be positive".to_owned(),
        });
    }
    let mut outcomes = Vec::with_capacity(cases.len());
    let mut failures = Vec::new();
    for case in cases {
        let seeds: Vec<u64> = (0..replications)
            .map(|r| case.experiment.config.seed.wrapping_add(r as u64))
            .collect();
        // Mode 1: unaudited, sequential.
        let plain: Vec<RunResult> = seeds
            .iter()
            .map(|&s| case.experiment.run_with_seed(s))
            .collect::<Result<_, _>>()?;
        // Mode 2: audited, sequential.
        let audited_seq: Vec<(RunResult, AuditReport)> = seeds
            .iter()
            .map(|&s| case.experiment.run_audited_with_seed(s))
            .collect::<Result<_, _>>()?;
        // Mode 3: audited, on the parallel engine.
        let jobs: Vec<_> = seeds
            .iter()
            .map(|&s| {
                let experiment = case.experiment.clone();
                move || experiment.run_audited_with_seed(s)
            })
            .collect();
        let audited_par: Vec<(RunResult, AuditReport)> = run_indexed(jobs, parallelism)
            .into_iter()
            .collect::<Result<_, _>>()?;
        // Modes 4 and 5: the dense reference core (active-set skipping,
        // fast-forward and compiled route tables all disabled),
        // unaudited and audited.
        let mut dense_experiment = case.experiment.clone();
        dense_experiment.config.sparse = false;
        dense_experiment.config.compiled_routes = false;
        let dense_plain: Vec<RunResult> = seeds
            .iter()
            .map(|&s| dense_experiment.run_with_seed(s))
            .collect::<Result<_, _>>()?;
        let dense_audited: Vec<(RunResult, AuditReport)> = seeds
            .iter()
            .map(|&s| dense_experiment.run_audited_with_seed(s))
            .collect::<Result<_, _>>()?;
        // Modes 6 and 7: through the experiment cache, cold (every
        // point simulated and stored) then warm (every point answered
        // from disk). Each case gets its own throwaway store so
        // concurrent test processes cannot interfere.
        let cache_dir = crate::cache::unique_temp_dir("noc-conformance-cache");
        let cache = crate::cache::ExperimentCache::at(&cache_dir);
        let jobs = |exp: &Experiment| -> Vec<crate::ExperimentJob> {
            seeds
                .iter()
                .map(|&s| crate::ExperimentJob {
                    experiment: exp.clone(),
                    seed: s,
                })
                .collect()
        };
        let cached_cold =
            crate::run_experiment_jobs_with_cache(jobs(&case.experiment), parallelism, &cache)?;
        let before_warm = crate::cache::counters();
        let cached_warm =
            crate::run_experiment_jobs_with_cache(jobs(&case.experiment), parallelism, &cache)?;
        let warm_delta = crate::cache::counters().since(&before_warm);
        std::fs::remove_dir_all(&cache_dir).ok();

        let audited_matches_unaudited = plain.iter().zip(&audited_seq).all(|(p, (a, _))| p == a);
        if !audited_matches_unaudited {
            failures.push(format!(
                "{}: audited stats diverge from unaudited stats",
                case.label
            ));
        }
        let parallel_matches_sequential = audited_seq == audited_par;
        if !parallel_matches_sequential {
            failures.push(format!(
                "{}: parallel audited runs diverge from sequential",
                case.label
            ));
        }
        let sparse_matches_dense = plain == dense_plain && audited_seq == dense_audited;
        if !sparse_matches_dense {
            failures.push(format!(
                "{}: sparse active-set core diverges from the dense reference",
                case.label
            ));
        }
        let cached_matches_fresh =
            cached_cold == plain && cached_warm == plain && warm_delta.misses == 0;
        if !cached_matches_fresh {
            failures.push(format!(
                "{}: cached results diverge from fresh simulation \
                 (cold=={}, warm=={}, warm misses {})",
                case.label,
                cached_cold == plain,
                cached_warm == plain,
                warm_delta.misses
            ));
        }
        let violations = audited_seq
            .iter()
            .map(|(_, rep)| rep.violations.len())
            .sum();
        if violations > 0 {
            for (run, report) in &audited_seq {
                for violation in &report.violations {
                    failures.push(format!("{} seed {}: {violation}", case.label, run.seed));
                }
            }
        }
        outcomes.push(CaseOutcome {
            label: case.label.clone(),
            audited_matches_unaudited,
            parallel_matches_sequential,
            sparse_matches_dense,
            cached_matches_fresh,
            violations,
            checks: audited_seq.iter().map(|(_, rep)| rep.checks).sum(),
            replications,
        });
    }
    failures.truncate(32);
    Ok(ConformanceReport { outcomes, failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_triple_times_traffic_times_rates() {
        let base = SimConfig::builder()
            .warmup_cycles(10)
            .measure_cycles(50)
            .build()
            .unwrap();
        let cases = matched_size_cases(16, &base).unwrap();
        assert_eq!(cases.len(), 12); // 3 topologies x 2 traffics x 2 rates
        assert!(cases.iter().any(|c| c.label.contains("ring-16")));
        assert!(cases.iter().any(|c| c.label.contains("mesh")));
        assert!(cases.iter().any(|c| c.label.contains("hotspot")));
    }

    #[test]
    fn grid_rejects_bad_inputs() {
        let base = SimConfig::default();
        assert!(matches!(
            matched_size_cases(2, &base),
            Err(CoreError::InvalidSpec { .. })
        ));
        let mut audited = base.clone();
        audited.audit = true;
        assert!(matches!(
            matched_size_cases(16, &audited),
            Err(CoreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn zero_replications_rejected() {
        assert!(matches!(
            run_conformance(&[], 0, Parallelism::Sequential),
            Err(CoreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn report_formats_pass_and_fail() {
        let pass = CaseOutcome {
            label: "x".to_owned(),
            audited_matches_unaudited: true,
            parallel_matches_sequential: true,
            sparse_matches_dense: true,
            cached_matches_fresh: true,
            violations: 0,
            checks: 10,
            replications: 1,
        };
        let mut fail = pass.clone();
        fail.violations = 3;
        assert!(pass.passed() && !fail.passed());
        let report = ConformanceReport {
            outcomes: vec![pass, fail],
            failures: vec!["boom".to_owned()],
        };
        assert!(!report.passed());
        let text = report.to_string();
        assert!(text.contains("PASS") && text.contains("FAIL"), "{text}");
        assert!(text.contains("1/2"), "{text}");
    }
}
