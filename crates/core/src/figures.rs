//! Reproduction of every figure in the paper's evaluation.
//!
//! | Function | Paper figure | Content |
//! |---|---|---|
//! | [`fig2`] | Figure 2 | Network diameter `ND` vs `N` (Ring, ideal mesh, real meshes, Spidergon) |
//! | [`fig3`] | Figure 3 | Average network distance `E[D]` vs `N` |
//! | [`fig5`] | Figure 5 | Analytical vs simulated average distance |
//! | [`fig6_7`] | Figures 6, 7 | Throughput and latency vs injection rate, **single hot-spot** |
//! | [`fig8_9`] | Figures 8, 9 | Throughput and latency, **double hot-spot** (placements A/B) |
//! | [`fig10_11`] | Figures 10, 11 | Throughput and latency, **homogeneous uniform** traffic |
//! | [`table_links`] | Section 2 (text) | Link counts `2N` / `3N` / `2(m-1)n + 2(n-1)m` |
//!
//! The `_7`, `_9`, `_11` variants share the sweep with their throughput
//! siblings, so both figures of a pair cost one set of simulations.

use crate::parallel::{run_experiment_jobs, run_indexed, ExperimentJob, Parallelism};
use crate::report::{FigureData, Point, Series};
use crate::sweep::{sweep_from_runs, sweep_jobs, validate_rates};
use crate::{Aggregate, CoreError, Experiment, RunResult, SweepResult, TopologySpec, TrafficSpec};
use noc_sim::{SimConfig, Simulation};
use noc_topology::{analytical, metrics, real_mesh, IrregularMesh, RectMesh, Ring, Spidergon};
use noc_traffic::{PlacementScenario, TrafficPattern, UniformRandom};
use serde::{Deserialize, Serialize};

/// Quality knobs for the simulation-based figures.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FigureOptions {
    /// Warmup cycles per run.
    pub warmup_cycles: u64,
    /// Measured cycles per run.
    pub measure_cycles: u64,
    /// Replications (seeds) per point.
    pub replications: usize,
    /// Base seed.
    pub seed: u64,
    /// Largest injection rate of the sweep grid (flits/cycle/source).
    pub max_rate: f64,
    /// Injection rates per sweep (evenly spaced up to `max_rate`).
    pub rate_steps: usize,
    /// Node counts to simulate (even values serve all families; the
    /// paper uses 8 and 24 for the hot-spot figures and up to 32 for
    /// the homogeneous ones).
    pub node_counts: Vec<usize>,
}

impl FigureOptions {
    /// Paper-quality settings (minutes of CPU in release mode).
    pub fn full() -> Self {
        FigureOptions {
            warmup_cycles: 2_000,
            measure_cycles: 20_000,
            replications: 3,
            seed: 2006,
            max_rate: 0.6,
            rate_steps: 12,
            node_counts: vec![8, 16, 24, 32],
        }
    }

    /// Fast settings for tests and smoke runs (seconds of CPU).
    pub fn quick() -> Self {
        FigureOptions {
            warmup_cycles: 200,
            measure_cycles: 1_500,
            replications: 1,
            seed: 2006,
            max_rate: 0.5,
            rate_steps: 5,
            node_counts: vec![8, 16],
        }
    }

    /// The injection-rate grid implied by `max_rate` / `rate_steps`.
    pub fn rates(&self) -> Vec<f64> {
        (1..=self.rate_steps)
            .map(|i| self.max_rate * i as f64 / self.rate_steps as f64)
            .collect()
    }

    fn base_config(&self) -> SimConfig {
        SimConfig::builder()
            .warmup_cycles(self.warmup_cycles)
            .measure_cycles(self.measure_cycles)
            .seed(self.seed)
            .build()
            .expect("figure options produce a valid config")
    }
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions::full()
    }
}

/// Figure 2: network diameter `ND` vs number of nodes, for Ring, the
/// continuous ideal-mesh curve, the two real-mesh families and
/// Spidergon. Pure graph analysis (no simulation).
///
/// # Panics
///
/// Panics if `max_nodes < 6`.
pub fn fig2(max_nodes: usize) -> FigureData {
    assert!(max_nodes >= 6, "figure 2 needs at least 6 nodes");
    let mut fig = FigureData::new(
        "fig2",
        "Network diameter ND vs number of nodes N",
        "N",
        "ND (hops)",
    );
    fig.push_series(Series::from_xy(
        "ring",
        (3..=max_nodes).map(|n| (n as f64, analytical::ring_diameter(n) as f64)),
    ));
    fig.push_series(Series::from_xy(
        "ideal-mesh",
        (4..=max_nodes).map(|n| (n as f64, real_mesh::ideal_mesh_diameter_continuous(n))),
    ));
    fig.push_series(Series::from_xy(
        "real-mesh-rect",
        (4..=max_nodes).map(|n| {
            let mesh = RectMesh::balanced(n).expect("n >= 4");
            (n as f64, metrics::diameter(&mesh) as f64)
        }),
    ));
    fig.push_series(Series::from_xy(
        "real-mesh-irregular",
        (4..=max_nodes).map(|n| {
            let mesh = IrregularMesh::realistic(n).expect("n >= 4");
            (n as f64, metrics::diameter(&mesh) as f64)
        }),
    ));
    fig.push_series(Series::from_xy(
        "spidergon",
        (2..=max_nodes / 2).map(|half| {
            let n = half * 2;
            (n as f64, analytical::spidergon_diameter(n) as f64)
        }),
    ));
    fig
}

/// Figure 3: average network distance `E[D]` vs number of nodes (paper
/// normalization, `sum / N`). Pure graph analysis.
///
/// # Panics
///
/// Panics if `max_nodes < 6`.
pub fn fig3(max_nodes: usize) -> FigureData {
    assert!(max_nodes >= 6, "figure 3 needs at least 6 nodes");
    let mut fig = FigureData::new(
        "fig3",
        "Average network distance E[D] vs number of nodes N",
        "N",
        "E[D] (hops)",
    );
    fig.push_series(Series::from_xy(
        "ring",
        (3..=max_nodes).map(|n| (n as f64, analytical::ring_average_distance(n))),
    ));
    fig.push_series(Series::from_xy(
        "ideal-mesh",
        (4..=max_nodes).map(|n| {
            (
                n as f64,
                real_mesh::ideal_mesh_average_distance_continuous(n),
            )
        }),
    ));
    fig.push_series(Series::from_xy(
        "real-mesh-rect",
        (4..=max_nodes).map(|n| {
            let mesh = RectMesh::balanced(n).expect("n >= 4");
            (n as f64, metrics::average_distance_paper(&mesh))
        }),
    ));
    fig.push_series(Series::from_xy(
        "real-mesh-irregular",
        (4..=max_nodes).map(|n| {
            let mesh = IrregularMesh::realistic(n).expect("n >= 4");
            (n as f64, metrics::average_distance_paper(&mesh))
        }),
    ));
    fig.push_series(Series::from_xy(
        "spidergon",
        (2..=max_nodes / 2).map(|half| {
            let n = half * 2;
            (n as f64, analytical::spidergon_average_distance(n))
        }),
    ));
    fig
}

/// Section 2's in-text link-count comparison as a table: `2N` for Ring,
/// `3N` for Spidergon, `2(m-1)n + 2(n-1)m` for the balanced mesh.
pub fn table_links(node_counts: &[usize]) -> FigureData {
    let mut fig = FigureData::new(
        "table-links",
        "Unidirectional link counts per topology",
        "N",
        "links",
    );
    let even: Vec<usize> = node_counts.iter().copied().filter(|n| n % 2 == 0).collect();
    fig.push_series(Series::from_xy(
        "ring",
        node_counts
            .iter()
            .map(|&n| (n as f64, analytical::ring_link_count(n) as f64)),
    ));
    fig.push_series(Series::from_xy(
        "spidergon",
        even.iter()
            .map(|&n| (n as f64, analytical::spidergon_link_count(n) as f64)),
    ));
    fig.push_series(Series::from_xy(
        "mesh",
        node_counts.iter().map(|&n| {
            let mesh = RectMesh::balanced(n).expect("n >= 2");
            (
                n as f64,
                analytical::mesh_link_count(mesh.cols(), mesh.rows()) as f64,
            )
        }),
    ));
    fig
}

/// Figure 5: analytical vs simulated average network distance (hops)
/// for Ring, Spidergon and the balanced mesh, `N` from 8 to 32.
///
/// Simulated values are the mean hop count of delivered packets under
/// light uniform traffic; analytical values are the exact mean shortest
/// path over ordered pairs (what a uniform-pair mean converges to).
///
/// # Errors
///
/// Returns the first simulation error.
pub fn fig5(opts: &FigureOptions) -> Result<FigureData, CoreError> {
    if opts.replications == 0 {
        return Err(CoreError::InvalidSpec {
            reason: "replications must be positive".to_owned(),
        });
    }
    let mut fig = FigureData::new(
        "fig5",
        "Analytical and simulation-based average network distances",
        "N",
        "E[D] (hops)",
    );
    let ns: Vec<usize> = (2..=8).map(|h| h * 4).collect(); // 8, 12, ..., 32
    let lambda = 0.1; // light load: negligible queueing, hops unaffected

    let mut analytic: Vec<(String, Vec<(f64, f64)>)> = vec![
        ("ring-analytical".into(), Vec::new()),
        ("spidergon-analytical".into(), Vec::new()),
        ("mesh-analytical".into(), Vec::new()),
    ];
    let mut simulated: Vec<(String, Vec<(f64, f64)>)> = vec![
        ("ring-simulated".into(), Vec::new()),
        ("spidergon-simulated".into(), Vec::new()),
        ("mesh-simulated".into(), Vec::new()),
    ];
    // Analytical curves and the flattened simulation job list (node
    // count × family × replication) are built in one pass; the engine
    // then runs the whole grid at once and results are reassembled in
    // the same (n, family) order.
    let mut grid = Vec::new();
    let mut jobs = Vec::new();
    for &n in &ns {
        let specs = [
            (0usize, TopologySpec::Ring { nodes: n }),
            (1, TopologySpec::Spidergon { nodes: n }),
            (2, TopologySpec::MeshBalanced { nodes: n }),
        ];
        for (slot, spec) in specs {
            let exact = match spec {
                TopologySpec::Ring { nodes } => metrics::average_distance(&Ring::new(nodes)?),
                TopologySpec::Spidergon { nodes } => {
                    metrics::average_distance(&Spidergon::new(nodes)?)
                }
                _ => metrics::average_distance(&RectMesh::balanced(n)?),
            };
            analytic[slot].1.push((n as f64, exact));
            let mut config = opts.base_config();
            config.injection_rate = lambda;
            let experiment = Experiment {
                topology: spec,
                traffic: TrafficSpec::Uniform,
                config,
            };
            for rep in 0..opts.replications {
                jobs.push(ExperimentJob {
                    seed: experiment.config.seed.wrapping_add(rep as u64),
                    experiment: experiment.clone(),
                });
            }
            grid.push((slot, n));
        }
    }
    let mut runs = run_experiment_jobs(jobs, Parallelism::default())?.into_iter();
    for (slot, n) in grid {
        let chunk: Vec<RunResult> = runs.by_ref().take(opts.replications).collect();
        let agg = Aggregate::from_runs(chunk);
        simulated[slot].1.push((n as f64, agg.mean_hops));
    }
    for (label, xy) in analytic.into_iter().chain(simulated) {
        fig.push_series(Series::from_xy(label, xy));
    }
    Ok(fig)
}

/// The three topology families the simulation figures compare at a
/// given node count.
fn families(n: usize) -> Vec<(&'static str, TopologySpec)> {
    vec![
        ("ring", TopologySpec::Ring { nodes: n }),
        ("spidergon", TopologySpec::Spidergon { nodes: n }),
        ("mesh", TopologySpec::MeshBalanced { nodes: n }),
    ]
}

/// One planned sweep of a figure grid: series label plus the
/// (topology, traffic) pair to sweep over the shared rate grid.
type PlannedSweep = (String, TopologySpec, TrafficSpec);

/// Runs every planned sweep as **one** flat job list on the parallel
/// engine (plan-major, rate-major, replication-minor — the order the
/// old nested loops ran in) and reassembles per-plan sweep results in
/// plan order. This exposes the whole figure grid — node counts ×
/// families × scenarios × rates × replications — to the worker pool at
/// once instead of one sweep point at a time.
fn run_planned_sweeps(
    plans: &[PlannedSweep],
    opts: &FigureOptions,
    rates: &[f64],
) -> Result<Vec<SweepResult>, CoreError> {
    validate_rates(rates)?;
    if opts.replications == 0 {
        return Err(CoreError::InvalidSpec {
            reason: "replications must be positive".to_owned(),
        });
    }
    let base = opts.base_config();
    let per_plan = rates.len() * opts.replications;
    let mut jobs = Vec::with_capacity(plans.len() * per_plan);
    for (_, topology, traffic) in plans {
        jobs.extend(sweep_jobs(
            *topology,
            *traffic,
            &base,
            rates,
            opts.replications,
        ));
    }
    let mut runs = run_experiment_jobs(jobs, Parallelism::default())?.into_iter();
    Ok(plans
        .iter()
        .map(|_| {
            let chunk: Vec<RunResult> = runs.by_ref().take(per_plan).collect();
            sweep_from_runs(rates, opts.replications, chunk)
        })
        .collect())
}

fn push_sweep(
    throughput: &mut FigureData,
    latency: &mut FigureData,
    label: String,
    sweep: &SweepResult,
) {
    throughput.push_series(Series {
        label: label.clone(),
        points: sweep
            .points
            .iter()
            .map(|p| Point {
                x: p.rate,
                y: p.throughput_mean,
                std: p.throughput_std,
            })
            .collect(),
    });
    latency.push_series(Series {
        label,
        points: sweep
            .points
            .iter()
            .map(|p| Point {
                x: p.rate,
                y: p.latency_mean,
                std: p.latency_std,
            })
            .collect(),
    });
}

/// Figures 6 and 7: throughput and latency vs injection rate with one
/// hot-spot destination (node 0), per topology and node count.
///
/// # Errors
///
/// Returns the first simulation error.
pub fn fig6_7(opts: &FigureOptions) -> Result<(FigureData, FigureData), CoreError> {
    let mut throughput = FigureData::new(
        "fig6",
        "NoC throughput, one hot-spot destination node",
        "lambda (flits/cycle/source)",
        "throughput (flits/cycle)",
    );
    let mut latency = FigureData::new(
        "fig7",
        "NoC latency, one hot-spot destination node",
        "lambda (flits/cycle/source)",
        "latency (cycles)",
    );
    let rates = opts.rates();
    let mut plans = Vec::new();
    for &n in &opts.node_counts {
        for (family, spec) in families(n) {
            plans.push((
                format!("{family}-{n}"),
                spec,
                TrafficSpec::SingleHotspot { target: 0 },
            ));
        }
    }
    let sweeps = run_planned_sweeps(&plans, opts, &rates)?;
    for ((label, _, _), sweep) in plans.into_iter().zip(&sweeps) {
        push_sweep(&mut throughput, &mut latency, label, sweep);
    }
    Ok((throughput, latency))
}

/// Figures 8 and 9: throughput and latency vs injection rate with two
/// hot-spot destinations under the paper's placement scenarios A
/// (opposed) and B (corner/middle).
///
/// # Errors
///
/// Returns the first simulation error.
pub fn fig8_9(opts: &FigureOptions) -> Result<(FigureData, FigureData), CoreError> {
    let mut throughput = FigureData::new(
        "fig8",
        "NoC throughput, two hot-spot destination nodes",
        "lambda (flits/cycle/source)",
        "throughput (flits/cycle)",
    );
    let mut latency = FigureData::new(
        "fig9",
        "NoC latency, two hot-spot destination nodes",
        "lambda (flits/cycle/source)",
        "latency (cycles)",
    );
    let rates = opts.rates();
    let scenarios = [
        ("A", PlacementScenario::Opposed),
        ("B", PlacementScenario::CornerMiddle),
    ];
    let mut plans = Vec::new();
    for &n in &opts.node_counts {
        for (family, spec) in families(n) {
            for (tag, scenario) in scenarios {
                plans.push((
                    format!("{family}-{n}-{tag}"),
                    spec,
                    TrafficSpec::DoubleHotspotPlaced { scenario },
                ));
            }
        }
    }
    let sweeps = run_planned_sweeps(&plans, opts, &rates)?;
    for ((label, _, _), sweep) in plans.into_iter().zip(&sweeps) {
        push_sweep(&mut throughput, &mut latency, label, sweep);
    }
    Ok((throughput, latency))
}

/// Figures 10 and 11: throughput and latency vs injection rate under
/// homogeneous uniform traffic, per topology and node count.
///
/// # Errors
///
/// Returns the first simulation error.
pub fn fig10_11(opts: &FigureOptions) -> Result<(FigureData, FigureData), CoreError> {
    let mut throughput = FigureData::new(
        "fig10",
        "NoC throughput, homogeneous sources and destinations",
        "lambda (flits/cycle/source)",
        "throughput (flits/cycle)",
    );
    let mut latency = FigureData::new(
        "fig11",
        "NoC latency, homogeneous sources and destinations",
        "lambda (flits/cycle/source)",
        "latency (cycles)",
    );
    let rates = opts.rates();
    let mut plans = Vec::new();
    for &n in &opts.node_counts {
        for (family, spec) in families(n) {
            plans.push((format!("{family}-{n}"), spec, TrafficSpec::Uniform));
        }
    }
    let sweeps = run_planned_sweeps(&plans, opts, &rates)?;
    for ((label, _, _), sweep) in plans.into_iter().zip(&sweeps) {
        push_sweep(&mut throughput, &mut latency, label, sweep);
    }
    Ok((throughput, latency))
}

/// Extension figure: uniform-traffic throughput and latency with the
/// **torus** alongside the paper's three topologies, at a fixed node
/// count (the largest entry of `opts.node_counts`, rounded to a square
/// grid for the torus/mesh).
///
/// # Errors
///
/// Returns the first simulation error.
pub fn ext_torus(opts: &FigureOptions) -> Result<(FigureData, FigureData), CoreError> {
    let mut throughput = FigureData::new(
        "ext-torus",
        "Extension: uniform throughput incl. torus",
        "lambda (flits/cycle/source)",
        "throughput (flits/cycle)",
    );
    let mut latency = FigureData::new(
        "ext-torus-latency",
        "Extension: uniform latency incl. torus",
        "lambda (flits/cycle/source)",
        "latency (cycles)",
    );
    let n = opts.node_counts.iter().copied().max().unwrap_or(16);
    let side = ((n as f64).sqrt().round() as usize).max(3);
    let n = side * side;
    let rates = opts.rates();
    let specs = [
        ("ring", TopologySpec::Ring { nodes: n }),
        ("spidergon", TopologySpec::Spidergon { nodes: n }),
        (
            "mesh",
            TopologySpec::Mesh {
                cols: side,
                rows: side,
            },
        ),
        (
            "torus",
            TopologySpec::Torus {
                cols: side,
                rows: side,
            },
        ),
    ];
    let plans: Vec<PlannedSweep> = specs
        .into_iter()
        .map(|(family, spec)| (format!("{family}-{n}"), spec, TrafficSpec::Uniform))
        .collect();
    let sweeps = run_planned_sweeps(&plans, opts, &rates)?;
    for ((label, _, _), sweep) in plans.into_iter().zip(&sweeps) {
        push_sweep(&mut throughput, &mut latency, label, sweep);
    }
    Ok((throughput, latency))
}

/// Extension figure: deterministic XY versus West-First adaptive mesh
/// routing under uniform traffic, as throughput/latency sweeps.
///
/// # Errors
///
/// Returns the first simulation error.
pub fn ext_adaptive(opts: &FigureOptions) -> Result<(FigureData, FigureData), CoreError> {
    let mut throughput = FigureData::new(
        "ext-adaptive",
        "Extension: XY vs West-First adaptive mesh routing (throughput)",
        "lambda (flits/cycle/source)",
        "throughput (flits/cycle)",
    );
    let mut latency = FigureData::new(
        "ext-adaptive-latency",
        "Extension: XY vs West-First adaptive mesh routing (latency)",
        "lambda (flits/cycle/source)",
        "latency (cycles)",
    );
    let n = opts.node_counts.iter().copied().max().unwrap_or(16);
    let side = ((n as f64).sqrt().round() as usize).max(3);
    let n = side * side;
    let spec = TopologySpec::Mesh {
        cols: side,
        rows: side,
    };
    // Custom routing objects cannot be expressed as `ExperimentJob`s,
    // so this driver uses the generic engine entry point directly: one
    // closure per (routing, rate, replication), each building its own
    // simulation, with results reassembled in flattening order.
    let rates = opts.rates();
    let mut params = Vec::new();
    for adaptive in [false, true] {
        for &rate in &rates {
            for rep in 0..opts.replications {
                params.push((adaptive, rate, opts.seed.wrapping_add(rep as u64)));
            }
        }
    }
    let base = opts.base_config();
    let jobs: Vec<_> = params
        .iter()
        .map(|&(adaptive, rate, seed)| {
            let mut config = base.clone();
            move || -> Result<(f64, Option<f64>), CoreError> {
                config.injection_rate = rate;
                config.seed = seed;
                let routing = if adaptive {
                    spec.build_adaptive_routing()?
                } else {
                    spec.build_routing()?
                };
                let pattern: Box<dyn TrafficPattern> = Box::new(UniformRandom::new(n)?);
                let mut sim = Simulation::new(spec.build()?, routing, pattern, config)?;
                let stats = sim.run()?;
                Ok((stats.throughput_flits_per_cycle(), stats.latency.mean()))
            }
        })
        .collect();
    let mut samples = run_indexed(jobs, Parallelism::default())
        .into_iter()
        .collect::<Result<Vec<_>, CoreError>>()?
        .into_iter();
    for adaptive in [false, true] {
        let label = if adaptive { "west-first" } else { "xy" };
        let mut tp_points = Vec::new();
        let mut lat_points = Vec::new();
        for &rate in &rates {
            let chunk: Vec<(f64, Option<f64>)> = samples.by_ref().take(opts.replications).collect();
            let tp_samples: Vec<f64> = chunk.iter().map(|&(tp, _)| tp).collect();
            let lat_samples: Vec<f64> = chunk.iter().filter_map(|&(_, lat)| lat).collect();
            let (tp_mean, tp_std) = crate::mean_std(&tp_samples);
            let (lat_mean, lat_std) = crate::mean_std(&lat_samples);
            tp_points.push(Point {
                x: rate,
                y: tp_mean,
                std: tp_std,
            });
            lat_points.push(Point {
                x: rate,
                y: lat_mean,
                std: lat_std,
            });
        }
        throughput.push_series(Series {
            label: format!("{label}-{n}"),
            points: tp_points,
        });
        latency.push_series(Series {
            label: format!("{label}-{n}"),
            points: lat_points,
        });
    }
    Ok((throughput, latency))
}

/// Extension figure: Spidergon Across-First vs Across-Last routing,
/// as latency sweeps under uniform traffic and under a single
/// hot-spot (the schemes differ in where they concentrate load, not in
/// path lengths).
///
/// # Errors
///
/// Returns the first simulation error.
pub fn ext_spidergon_routing(opts: &FigureOptions) -> Result<FigureData, CoreError> {
    use noc_routing::{RoutingAlgorithm, SpidergonAcrossFirst, SpidergonAcrossLast};
    use noc_traffic::SingleHotspot;

    let mut fig = FigureData::new(
        "ext-spidergon-routing",
        "Extension: Across-First vs Across-Last latency",
        "lambda (flits/cycle/source)",
        "latency (cycles)",
    );
    let n = opts
        .node_counts
        .iter()
        .copied()
        .filter(|n| n % 2 == 0)
        .max()
        .unwrap_or(16);
    let schemes = [
        ("across-first", true),
        ("across-last", true),
        ("across-first-hotspot", false),
        ("across-last-hotspot", false),
    ];
    // Same pattern as `ext_adaptive`: routing objects are built inside
    // per-(scheme, rate, replication) closures on the generic engine.
    let rates = opts.rates();
    let mut params = Vec::new();
    for (scheme, uniform) in schemes {
        let across_last = scheme.starts_with("across-last");
        for &rate in &rates {
            for rep in 0..opts.replications {
                params.push((
                    across_last,
                    uniform,
                    rate,
                    opts.seed.wrapping_add(rep as u64),
                ));
            }
        }
    }
    let base = opts.base_config();
    let jobs: Vec<_> = params
        .iter()
        .map(|&(across_last, uniform, rate, seed)| {
            let mut config = base.clone();
            move || -> Result<Option<f64>, CoreError> {
                let topo = Spidergon::new(n)?;
                let routing: Box<dyn RoutingAlgorithm> = if across_last {
                    Box::new(SpidergonAcrossLast::new(&topo))
                } else {
                    Box::new(SpidergonAcrossFirst::new(&topo))
                };
                let pattern: Box<dyn TrafficPattern> = if uniform {
                    Box::new(UniformRandom::new(n)?)
                } else {
                    Box::new(SingleHotspot::new(n, noc_topology::NodeId::new(0))?)
                };
                config.injection_rate = rate;
                config.seed = seed;
                let mut sim = Simulation::new(Box::new(topo), routing, pattern, config)?;
                let stats = sim.run()?;
                Ok(stats.latency.mean())
            }
        })
        .collect();
    let mut samples = run_indexed(jobs, Parallelism::default())
        .into_iter()
        .collect::<Result<Vec<_>, CoreError>>()?
        .into_iter();
    for (scheme, _) in schemes {
        let mut points = Vec::new();
        for &rate in &rates {
            let chunk: Vec<f64> = samples.by_ref().take(opts.replications).flatten().collect();
            let (mean, std) = crate::mean_std(&chunk);
            points.push(Point {
                x: rate,
                y: mean,
                std,
            });
        }
        fig.push_series(Series {
            label: format!("{scheme}-{n}"),
            points,
        });
    }
    Ok(fig)
}

/// Extension figure: throughput vs hot-spot fraction (the classic
/// mixed hot-spot model), interpolating between the paper's
/// homogeneous (fraction 0) and pure hot-spot (fraction 1) scenarios
/// at a fixed injection rate.
///
/// # Errors
///
/// Returns the first simulation error.
pub fn ext_mixed_hotspot(opts: &FigureOptions) -> Result<FigureData, CoreError> {
    let mut fig = FigureData::new(
        "ext-mixed-hotspot",
        "Extension: throughput vs hot-spot fraction (lambda = 0.25)",
        "hot-spot fraction",
        "throughput (flits/cycle)",
    );
    let n = opts
        .node_counts
        .iter()
        .copied()
        .filter(|n| n % 2 == 0)
        .max()
        .unwrap_or(16);
    if opts.replications == 0 {
        return Err(CoreError::InvalidSpec {
            reason: "replications must be positive".to_owned(),
        });
    }
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    // Flatten family × fraction × replication into one engine
    // submission, then chunk results back per fraction.
    let mut jobs = Vec::new();
    for (_, spec) in families(n) {
        for &fraction in &fractions {
            let mut config = opts.base_config();
            config.injection_rate = 0.25;
            let experiment = Experiment {
                topology: spec,
                traffic: TrafficSpec::MixedHotspot {
                    target: 0,
                    fraction,
                },
                config,
            };
            for rep in 0..opts.replications {
                jobs.push(ExperimentJob {
                    seed: experiment.config.seed.wrapping_add(rep as u64),
                    experiment: experiment.clone(),
                });
            }
        }
    }
    let mut runs = run_experiment_jobs(jobs, Parallelism::default())?.into_iter();
    for (family, _) in families(n) {
        let mut points = Vec::new();
        for &fraction in &fractions {
            let chunk: Vec<RunResult> = runs.by_ref().take(opts.replications).collect();
            let agg = Aggregate::from_runs(chunk);
            points.push(Point {
                x: fraction,
                y: agg.throughput_mean,
                std: agg.throughput_std,
            });
        }
        fig.push_series(Series {
            label: format!("{family}-{n}"),
            points,
        });
    }
    Ok(fig)
}

/// Extension figure: per-link utilization heatmap under a single
/// hot-spot at node 0 — the paper's central qualitative claim made
/// visible. One curve per family (ring / spidergon / mesh at 16
/// nodes): x is the link index in the simulator's canonical
/// enumeration (node-major, port-minor), y is the link's measured
/// utilization in flits/cycle at `lambda = 0.3`.
///
/// Ring links near the hot-spot saturate while distant ones idle;
/// Spidergon's across links flatten the profile; the mesh concentrates
/// load on the column into the target — the same asymmetry the
/// throughput figures (6/7) show in aggregate.
///
/// # Errors
///
/// Returns the first build or simulation error.
pub fn ext_link_heatmap(opts: &FigureOptions) -> Result<FigureData, CoreError> {
    let n = 16;
    let mut fig = FigureData::new(
        "ext-link-heatmap",
        "Extension: per-link utilization, single hot-spot at node 0 (lambda = 0.3)",
        "link index (node-major, port-minor)",
        "utilization (flits/cycle)",
    );
    let jobs: Vec<ExperimentJob> = families(n)
        .into_iter()
        .map(|(_, spec)| {
            let mut config = opts.base_config();
            config.injection_rate = 0.3;
            ExperimentJob {
                seed: opts.seed,
                experiment: Experiment {
                    topology: spec,
                    traffic: TrafficSpec::SingleHotspot { target: 0 },
                    config,
                },
            }
        })
        .collect();
    let runs = run_experiment_jobs(jobs, Parallelism::default())?;
    for ((family, _), run) in families(n).into_iter().zip(runs) {
        let cycles = run.stats.measured_cycles.max(1) as f64;
        fig.push_series(Series::from_xy(
            format!("{family}-{n}"),
            run.stats
                .per_link
                .iter()
                .enumerate()
                .map(|(i, link)| (i as f64, link.flits as f64 / cycles)),
        ));
    }
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_has_all_families_and_known_values() {
        let fig = fig2(32);
        assert_eq!(fig.series.len(), 5);
        let ring = fig.series_by_label("ring").unwrap();
        assert_eq!(ring.y_at(16.0), Some(8.0));
        let sg = fig.series_by_label("spidergon").unwrap();
        assert_eq!(sg.y_at(16.0), Some(4.0));
        // Spidergon beats real meshes on ND through the plotted range.
        let irr = fig.series_by_label("real-mesh-irregular").unwrap();
        for p in &sg.points {
            if let Some(mesh_nd) = irr.y_at(p.x) {
                assert!(p.y <= mesh_nd, "N={}: {} > {}", p.x, p.y, mesh_nd);
            }
        }
    }

    #[test]
    fn fig3_orderings_match_paper() {
        let fig = fig3(32);
        let ring = fig.series_by_label("ring").unwrap();
        let sg = fig.series_by_label("spidergon").unwrap();
        for p in &sg.points {
            let r = ring.y_at(p.x).unwrap();
            assert!(p.y < r, "spidergon must beat ring at N={}", p.x);
        }
    }

    #[test]
    fn real_mesh_fluctuates_in_fig2() {
        // The balanced-rectangle real mesh must NOT be monotone in N
        // (prime N degenerates): the paper's key observation.
        let fig = fig2(32);
        let rect = fig.series_by_label("real-mesh-rect").unwrap();
        let ys: Vec<f64> = rect.points.iter().map(|p| p.y).collect();
        let monotone = ys.windows(2).all(|w| w[1] >= w[0] - 1e-9);
        assert!(!monotone, "real mesh diameter should fluctuate: {ys:?}");
    }

    #[test]
    fn table_links_matches_formulas() {
        let fig = table_links(&[8, 16, 24]);
        assert_eq!(fig.series_by_label("ring").unwrap().y_at(16.0), Some(32.0));
        assert_eq!(
            fig.series_by_label("spidergon").unwrap().y_at(16.0),
            Some(48.0)
        );
        // 4x4 mesh: 2*3*4 + 2*3*4 = 48.
        assert_eq!(fig.series_by_label("mesh").unwrap().y_at(16.0), Some(48.0));
    }

    #[test]
    fn rates_grid_is_even() {
        let opts = FigureOptions::quick();
        let rates = opts.rates();
        assert_eq!(rates.len(), opts.rate_steps);
        assert!((rates.last().unwrap() - opts.max_rate).abs() < 1e-12);
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
    }

    // Simulation-backed figure tests live in the crate's integration
    // tests (they need more runtime than a unit test should take).
}
