//! `noc-cli` — run a NoC experiment described by a JSON spec.
//!
//! ```text
//! noc-cli run <spec.json>            run one experiment, print stats
//! noc-cli run <spec.json> --reps 5   replicate over 5 seeds
//! noc-cli run <spec.json> --audit    attach the runtime invariant
//!                                    auditor; exit 1 on any violation
//! noc-cli sweep <spec.json> --max 0.6 --steps 12 --reps 3
//!                                    injection-rate sweep, CSV to stdout
//! noc-cli trace <spec.json> --out DIR --window 100
//!                                    traced run: flit-lifecycle JSONL,
//!                                    time-series CSV, per-link CSV and
//!                                    a latency decomposition table
//! noc-cli conformance --nodes 16 --reps 2 --threads 4
//!                                    differential conformance harness
//! noc-cli cache stats [DIR]          entry count / bytes of the store
//! noc-cli cache gc [DIR] --max-bytes B
//!                                    shrink the store, oldest first
//! noc-cli cache verify [DIR] [--fix] validate records, delete bad ones
//! noc-cli example                    print an example spec
//! noc-cli metrics <N>                analytical metrics at N nodes
//! ```
//!
//! `run` and `sweep` accept `--threads N` to pin the parallel engine's
//! worker count (default: all cores, or the `NOC_THREADS` environment
//! variable). Results are bit-identical for any thread count.
//!
//! `run` and `sweep` also accept `--cache` / `--no-cache` to force the
//! content-addressed experiment cache on (at its default directory,
//! `results/.cache`) or off, overriding the `NOC_CACHE` environment
//! variable. Cached results are bit-identical to fresh simulation; a
//! hit/miss summary is printed when caching is active.
//!
//! A spec is the JSON form of [`noc_core::Experiment`]; get a template
//! with `noc-cli example`.

use noc_core::report::RunMetadata;
use noc_core::{
    matched_size_cases, run_conformance, run_indexed, Aggregate, Experiment, Parallelism,
    TopologySpec, TrafficSpec,
};
use noc_sim::{AuditReport, SimConfig};
use std::process::ExitCode;

/// Parses a `--threads` value into a parallelism policy.
fn parse_threads(value: &str) -> Result<Parallelism, String> {
    match value.parse::<usize>() {
        Ok(0) | Err(_) => Err("--threads must be a positive integer".to_owned()),
        Ok(1) => Ok(Parallelism::Sequential),
        Ok(n) => Ok(Parallelism::Fixed(n)),
    }
}

/// Applies a `--cache` / `--no-cache` choice by overriding the
/// `NOC_CACHE` environment variable (read by the experiment engine's
/// [`noc_core::ExperimentCache::from_env`]). Called while the process
/// is still single-threaded, before any worker spawns.
fn apply_cache_flag(choice: Option<bool>) {
    match choice {
        Some(true) => std::env::set_var("NOC_CACHE", "1"),
        Some(false) => std::env::set_var("NOC_CACHE", "0"),
        None => {}
    }
}

/// Prints the hit/miss summary accumulated since `before`, when the
/// cache is active.
fn print_cache_summary(before: noc_core::CacheCounters) {
    if noc_core::ExperimentCache::from_env().is_enabled() {
        let delta = noc_core::cache::counters().since(&before);
        println!("cache: {} hit(s), {} miss(es)", delta.hits, delta.misses);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("conformance") => cmd_conformance(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("example") => cmd_example(),
        Some("metrics") => cmd_metrics(&args[1..]),
        _ => {
            eprintln!(
                "usage: noc-cli run <spec.json> [--reps N] [--threads N] [--audit] [--cache|--no-cache] | sweep <spec.json> [--max R] [--steps K] [--reps N] [--threads N] [--cache|--no-cache] | trace <spec.json> [--out DIR] [--window N] | conformance [--nodes N] [--reps N] [--threads N] | cache stats|gc|verify [DIR] [--max-bytes B] [--fix] | example | metrics <N>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing spec path")?;
    let mut reps = 1usize;
    let mut audit = false;
    let mut cache_flag = None;
    let mut parallelism = Parallelism::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|_| "--reps must be a positive integer")?;
            }
            "--threads" => {
                parallelism = parse_threads(it.next().ok_or("--threads needs a value")?)?;
            }
            "--audit" => audit = true,
            "--cache" => cache_flag = Some(true),
            "--no-cache" => cache_flag = Some(false),
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    apply_cache_flag(cache_flag);
    let counters_before = noc_core::cache::counters();
    let spec = std::fs::read_to_string(path)?;
    let experiment: Experiment = serde_json::from_str(&spec)?;
    println!(
        "running {} / {} at lambda = {} ({} replication{}, {}{})",
        experiment.topology.label()?,
        experiment.traffic.label(),
        experiment.config.injection_rate,
        reps,
        if reps == 1 { "" } else { "s" },
        RunMetadata::for_parallelism(parallelism),
        if audit { ", audited" } else { "" },
    );
    if audit {
        return cmd_run_audited(&experiment, reps, parallelism);
    }
    if reps == 1 {
        let cache = noc_core::ExperimentCache::from_env();
        let result = if cache.is_enabled() {
            noc_core::cache::run_cached(&cache, &experiment, experiment.config.seed)?
        } else {
            experiment.run()?
        };
        println!("{}", result.stats);
        println!(
            "acceptance {:.3}, mean hops {:.3}, p95 latency {} cycles",
            result.stats.acceptance_ratio(),
            result.stats.mean_hops().unwrap_or(f64::NAN),
            result.stats.latency.percentile(95.0).unwrap_or(0),
        );
    } else {
        let agg = experiment.run_replicated_with(reps, parallelism)?;
        print_aggregate(&agg);
    }
    print_cache_summary(counters_before);
    Ok(())
}

/// `run --audit`: every replication executes with the runtime invariant
/// auditor attached; any violation makes the process exit nonzero.
fn cmd_run_audited(
    experiment: &Experiment,
    reps: usize,
    parallelism: Parallelism,
) -> Result<(), Box<dyn std::error::Error>> {
    if reps == 0 {
        return Err("--reps must be a positive integer".into());
    }
    let jobs: Vec<_> = (0..reps)
        .map(|r| {
            let experiment = experiment.clone();
            let seed = experiment.config.seed.wrapping_add(r as u64);
            move || experiment.run_audited_with_seed(seed)
        })
        .collect();
    let outcomes: Vec<_> = run_indexed(jobs, parallelism)
        .into_iter()
        .collect::<Result<_, _>>()?;
    let reports: Vec<AuditReport> = outcomes.iter().map(|(_, rep)| rep.clone()).collect();
    let runs: Vec<_> = outcomes.into_iter().map(|(run, _)| run).collect();
    if runs.len() == 1 {
        println!("{}", runs[0].stats);
    } else {
        print_aggregate(&Aggregate::from_runs(runs));
    }
    let checks: u64 = reports.iter().map(|r| r.checks).sum();
    let flit_events: u64 = reports.iter().map(|r| r.flit_events).sum();
    let violations: usize = reports.iter().map(|r| r.violations.len()).sum();
    println!(
        "audit: {checks} checks, {flit_events} flit events, {violations} violation{}",
        if violations == 1 { "" } else { "s" }
    );
    if violations > 0 {
        for report in &reports {
            for violation in &report.violations {
                eprintln!("  {violation}");
            }
            if let Some(stall) = &report.stall {
                eprintln!("  stall diagnosis: {stall:?}");
            }
        }
        return Err(format!("audit found {violations} violation(s)").into());
    }
    Ok(())
}

fn print_aggregate(agg: &Aggregate) {
    println!(
        "throughput {:.4} ± {:.4} flits/cycle",
        agg.throughput_mean, agg.throughput_std
    );
    println!(
        "latency    {:.1} ± {:.1} cycles (p50 {} / p95 {} / p99 {})",
        agg.latency_mean, agg.latency_std, agg.latency_p50, agg.latency_p95, agg.latency_p99
    );
    println!("acceptance {:.3}", agg.acceptance_mean);
    println!("mean hops  {:.3}", agg.mean_hops);
}

/// `trace`: run one experiment with the flit-lifecycle recorder
/// attached and export its artifacts (JSONL event log, windowed
/// time-series CSV, per-link utilization CSV) plus a latency
/// decomposition table and a determinism digest.
fn cmd_trace(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing spec path")?;
    let mut out_dir = std::path::PathBuf::from("trace-out");
    let mut window = noc_sim::Recorder::DEFAULT_WINDOW;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--out" => out_dir = value.into(),
            "--window" => {
                window = value.parse().map_err(|_| "--window must be an integer")?;
                if window == 0 {
                    return Err("--window must be positive".into());
                }
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let experiment: Experiment = serde_json::from_str(&std::fs::read_to_string(path)?)?;
    println!(
        "tracing {} / {} at lambda = {} (window {window})",
        experiment.topology.label()?,
        experiment.traffic.label(),
        experiment.config.injection_rate,
    );
    let recorder = noc_sim::Recorder::with_window(window);
    let (result, recorder) = experiment.run_traced_with(experiment.config.seed, recorder)?;
    std::fs::create_dir_all(&out_dir)?;
    std::fs::write(out_dir.join("trace.jsonl"), recorder.to_jsonl())?;
    std::fs::write(out_dir.join("timeseries.csv"), recorder.timeseries_csv())?;
    std::fs::write(out_dir.join("links.csv"), recorder.links_csv())?;
    println!("{}", result.stats);
    println!(
        "{}",
        noc_core::report::latency_summary(&result.stats.latency)
    );
    print!(
        "{}",
        noc_core::report::breakdown_table(recorder.breakdown())
    );
    println!(
        "{} events, {} windows -> {}",
        recorder.events().len(),
        recorder.windows().len(),
        out_dir.display()
    );
    println!("digest {:016x}", recorder.digest());
    Ok(())
}

/// `conformance`: the differential harness over the paper's topology
/// triple at matched sizes. Exits nonzero if any case fails.
fn cmd_conformance(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut nodes, mut reps) = (16usize, 2usize);
    let mut parallelism = Parallelism::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--nodes" => nodes = value.parse()?,
            "--reps" => reps = value.parse()?,
            "--threads" => parallelism = parse_threads(value)?,
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let base = SimConfig::builder()
        .warmup_cycles(200)
        .measure_cycles(2_000)
        .seed(42)
        .build()?;
    let cases = matched_size_cases(nodes, &base)?;
    println!(
        "conformance: {} case(s), {} replication(s), {}",
        cases.len(),
        reps,
        RunMetadata::for_parallelism(parallelism)
    );
    let report = run_conformance(&cases, reps, parallelism)?;
    println!("{report}");
    if report.passed() {
        Ok(())
    } else {
        Err("conformance failed".into())
    }
}

fn cmd_sweep(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing spec path")?;
    let (mut max, mut steps, mut reps) = (0.6f64, 12usize, 1usize);
    let mut cache_flag = None;
    let mut parallelism = Parallelism::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--max" => max = value()?.parse()?,
            "--steps" => steps = value()?.parse()?,
            "--reps" => reps = value()?.parse()?,
            "--threads" => parallelism = parse_threads(value()?)?,
            "--cache" => cache_flag = Some(true),
            "--no-cache" => cache_flag = Some(false),
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    apply_cache_flag(cache_flag);
    let counters_before = noc_core::cache::counters();
    let experiment: Experiment = serde_json::from_str(&std::fs::read_to_string(path)?)?;
    let rates: Vec<f64> = (1..=steps).map(|i| max * i as f64 / steps as f64).collect();
    let sweep = noc_core::sweep_rates_with(
        experiment.topology,
        experiment.traffic,
        &experiment.config,
        &rates,
        reps,
        parallelism,
    )?;
    println!(
        "# {} / {} ({})",
        sweep.topology_label,
        sweep.traffic_label,
        RunMetadata::for_parallelism(parallelism)
    );
    println!(
        "rate,throughput,throughput_std,latency,latency_std,acceptance,mean_hops,latency_p50,latency_p95,latency_p99"
    );
    for p in &sweep.points {
        println!(
            "{},{},{},{},{},{},{},{},{},{}",
            p.rate,
            p.throughput_mean,
            p.throughput_std,
            p.latency_mean,
            p.latency_std,
            p.acceptance,
            p.mean_hops,
            p.latency_p50,
            p.latency_p95,
            p.latency_p99
        );
    }
    print_cache_summary(counters_before);
    Ok(())
}

/// `cache`: inspect and maintain the content-addressed experiment
/// store. The directory comes from the positional argument, else
/// `NOC_CACHE` (when it names one), else the default
/// `results/.cache`.
fn cmd_cache(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let action = args
        .first()
        .map(String::as_str)
        .ok_or("cache needs an action: stats | gc | verify")?;
    let mut dir: Option<String> = None;
    let mut max_bytes = noc_core::cache::DEFAULT_GC_BYTES;
    let mut fix = false;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-bytes" => {
                max_bytes = it
                    .next()
                    .ok_or("--max-bytes needs a value")?
                    .parse()
                    .map_err(|_| "--max-bytes must be an integer byte count")?;
            }
            "--fix" => fix = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}").into()),
            positional => {
                if dir.replace(positional.to_owned()).is_some() {
                    return Err("cache takes at most one directory".into());
                }
            }
        }
    }
    let cache = match dir {
        Some(dir) => noc_core::ExperimentCache::at(dir),
        None => {
            let from_env = noc_core::ExperimentCache::from_env();
            if from_env.is_enabled() {
                from_env
            } else {
                noc_core::ExperimentCache::default_dir()
            }
        }
    };
    let dir = cache.dir().expect("cache resolved to a directory");
    match action {
        "stats" => {
            let stats = cache.stats()?;
            println!(
                "{}: {} entr{}, {} bytes",
                dir.display(),
                stats.entries,
                if stats.entries == 1 { "y" } else { "ies" },
                stats.total_bytes
            );
        }
        "gc" => {
            let outcome = cache.gc(max_bytes)?;
            println!(
                "{}: removed {} record(s), freed {} bytes; {} entr{} / {} bytes remain (limit {})",
                dir.display(),
                outcome.removed,
                outcome.freed_bytes,
                outcome.remaining.entries,
                if outcome.remaining.entries == 1 {
                    "y"
                } else {
                    "ies"
                },
                outcome.remaining.total_bytes,
                max_bytes
            );
        }
        "verify" => {
            let outcome = cache.verify(fix)?;
            for (path, reason) in &outcome.corrupt {
                println!("corrupt: {} ({reason})", path.display());
            }
            println!(
                "{}: {} ok, {} corrupt, {} removed",
                dir.display(),
                outcome.ok,
                outcome.corrupt.len(),
                outcome.removed
            );
            if !outcome.corrupt.is_empty() && !fix {
                return Err("corrupt records found (rerun with --fix to delete them)".into());
            }
        }
        other => return Err(format!("unknown cache action {other}").into()),
    }
    Ok(())
}

fn cmd_example() -> Result<(), Box<dyn std::error::Error>> {
    let example = Experiment {
        topology: TopologySpec::Spidergon { nodes: 16 },
        traffic: TrafficSpec::SingleHotspot { target: 0 },
        config: SimConfig::builder()
            .injection_rate(0.2)
            .warmup_cycles(1_000)
            .measure_cycles(10_000)
            .seed(42)
            .build()?,
    };
    println!("{}", serde_json::to_string_pretty(&example)?);
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = args
        .first()
        .ok_or("missing node count")?
        .parse()
        .map_err(|_| "node count must be an integer")?;
    let mut specs = vec![TopologySpec::Ring { nodes: n }];
    if n.is_multiple_of(2) {
        specs.push(TopologySpec::Spidergon { nodes: n });
    }
    specs.push(TopologySpec::MeshBalanced { nodes: n });
    specs.push(TopologySpec::RealisticMesh { nodes: n });
    println!(
        "{:>20}  {:>6}  {:>4}  {:>8}",
        "topology", "links", "ND", "E[D]"
    );
    for spec in specs {
        let topo = spec.build()?;
        let m = noc_topology::metrics::TopologyMetrics::compute(topo.as_ref());
        println!(
            "{:>20}  {:>6}  {:>4}  {:>8.3}",
            m.label, m.num_links, m.diameter, m.mean_distance_paper
        );
    }
    Ok(())
}
