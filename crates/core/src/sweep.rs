//! Injection-rate sweeps: the x-axis of the paper's Figures 6-11.

use crate::parallel::{run_experiment_jobs, ExperimentJob, Parallelism};
use crate::{Aggregate, CoreError, Experiment, RunResult, TopologySpec, TrafficSpec};
use noc_sim::SimConfig;
use serde::{Deserialize, Serialize};

/// One measured point of an injection-rate sweep.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Injection rate lambda in flits/cycle per source.
    pub rate: f64,
    /// Mean aggregate throughput in flits/cycle over replications.
    pub throughput_mean: f64,
    /// Sample standard deviation of throughput.
    pub throughput_std: f64,
    /// Mean packet latency in cycles over replications.
    pub latency_mean: f64,
    /// Sample standard deviation of latency.
    pub latency_std: f64,
    /// Mean acceptance ratio (drops below 1 at saturation).
    pub acceptance: f64,
    /// Mean hops per delivered packet.
    pub mean_hops: f64,
    /// Median packet latency over the merged histogram of all
    /// replications at this rate (0 when nothing was delivered).
    #[serde(default)]
    pub latency_p50: u64,
    /// 95th-percentile packet latency over the merged histogram.
    #[serde(default)]
    pub latency_p95: u64,
    /// 99th-percentile packet latency over the merged histogram.
    #[serde(default)]
    pub latency_p99: u64,
}

/// Result of sweeping one (topology, traffic) pair over several rates.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SweepResult {
    /// Label of the topology swept.
    pub topology_label: String,
    /// Label of the traffic pattern.
    pub traffic_label: String,
    /// The measured points, in ascending rate order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// `(rate, throughput)` pairs for plotting.
    pub fn throughput_xy(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.rate, p.throughput_mean))
            .collect()
    }

    /// `(rate, latency)` pairs for plotting.
    pub fn latency_xy(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.rate, p.latency_mean))
            .collect()
    }
}

/// Sweeps the injection rate over `rates` for a (topology, traffic)
/// pair, running `replications` seeds per point.
///
/// # Errors
///
/// Returns the first build or simulation error. Rates must be given in
/// ascending order (validated, [`CoreError::InvalidSpec`]).
///
/// # Examples
///
/// ```
/// use noc_core::{sweep_rates, TopologySpec, TrafficSpec};
/// use noc_sim::SimConfig;
///
/// let base = SimConfig::builder()
///     .warmup_cycles(100)
///     .measure_cycles(1_000)
///     .build()?;
/// let result = sweep_rates(
///     TopologySpec::Spidergon { nodes: 8 },
///     TrafficSpec::Uniform,
///     &base,
///     &[0.05, 0.1],
///     1,
/// )?;
/// assert_eq!(result.points.len(), 2);
/// assert!(result.points[1].throughput_mean > result.points[0].throughput_mean);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sweep_rates(
    topology: TopologySpec,
    traffic: TrafficSpec,
    base_config: &SimConfig,
    rates: &[f64],
    replications: usize,
) -> Result<SweepResult, CoreError> {
    sweep_rates_with(
        topology,
        traffic,
        base_config,
        rates,
        replications,
        Parallelism::default(),
    )
}

/// [`sweep_rates`] with an explicit parallelism policy.
///
/// The whole rate × replication product is flattened into one job list
/// for the engine — with R rates and K replications, up to `R * K`
/// simulations run concurrently, not just the K replications of one
/// point at a time.
///
/// # Errors
///
/// See [`sweep_rates`].
pub fn sweep_rates_with(
    topology: TopologySpec,
    traffic: TrafficSpec,
    base_config: &SimConfig,
    rates: &[f64],
    replications: usize,
    parallelism: Parallelism,
) -> Result<SweepResult, CoreError> {
    validate_rates(rates)?;
    if replications == 0 {
        return Err(CoreError::InvalidSpec {
            reason: "replications must be positive".to_owned(),
        });
    }
    let jobs = sweep_jobs(topology, traffic, base_config, rates, replications);
    let runs = run_experiment_jobs(jobs, parallelism)?;
    Ok(sweep_from_runs(rates, replications, runs))
}

/// Rejects empty or non-ascending rate lists.
pub(crate) fn validate_rates(rates: &[f64]) -> Result<(), CoreError> {
    if rates.is_empty() {
        return Err(CoreError::InvalidSpec {
            reason: "rate sweep needs at least one rate".to_owned(),
        });
    }
    if rates.windows(2).any(|w| w[0] >= w[1]) {
        return Err(CoreError::InvalidSpec {
            reason: "sweep rates must be strictly ascending".to_owned(),
        });
    }
    Ok(())
}

/// Flattens a sweep into engine jobs: rate-major, replication-minor —
/// exactly the order the old nested loops ran in.
pub(crate) fn sweep_jobs(
    topology: TopologySpec,
    traffic: TrafficSpec,
    base_config: &SimConfig,
    rates: &[f64],
    replications: usize,
) -> Vec<ExperimentJob> {
    let mut jobs = Vec::with_capacity(rates.len() * replications);
    for &rate in rates {
        let mut config = base_config.clone();
        config.injection_rate = rate;
        let experiment = Experiment {
            topology,
            traffic,
            config,
        };
        for r in 0..replications {
            jobs.push(ExperimentJob {
                seed: experiment.config.seed.wrapping_add(r as u64),
                experiment: experiment.clone(),
            });
        }
    }
    jobs
}

/// Reassembles the in-order run results of [`sweep_jobs`] into a
/// [`SweepResult`], chunking `replications` runs per rate.
pub(crate) fn sweep_from_runs(
    rates: &[f64],
    replications: usize,
    runs: Vec<RunResult>,
) -> SweepResult {
    debug_assert_eq!(runs.len(), rates.len() * replications);
    let mut runs = runs.into_iter();
    let mut points = Vec::with_capacity(rates.len());
    let mut topology_label = String::new();
    let mut traffic_label = String::new();
    for &rate in rates {
        let chunk: Vec<RunResult> = runs.by_ref().take(replications).collect();
        let agg = Aggregate::from_runs(chunk);
        topology_label = agg.runs[0].topology_label.clone();
        traffic_label = agg.runs[0].traffic_label.clone();
        points.push(point_from_aggregate(rate, &agg));
    }
    SweepResult {
        topology_label,
        traffic_label,
        points,
    }
}

fn point_from_aggregate(rate: f64, agg: &Aggregate) -> SweepPoint {
    SweepPoint {
        rate,
        throughput_mean: agg.throughput_mean,
        throughput_std: agg.throughput_std,
        latency_mean: agg.latency_mean,
        latency_std: agg.latency_std,
        acceptance: agg.acceptance_mean,
        mean_hops: agg.mean_hops,
        latency_p50: agg.latency_p50,
        latency_p95: agg.latency_p95,
        latency_p99: agg.latency_p99,
    }
}

/// Default injection-rate grid used by the figure reproductions:
/// 0.025 to `max` in steps matched to the paper's axes.
///
/// Stepping is integral — the i-th rate is computed as `(i * 25) /
/// 1000` rather than by repeatedly adding `0.025` (which is not exact
/// in binary and accumulates error), so every grid value is the
/// correctly-rounded double of an exact multiple of 0.025 no matter
/// how long the grid is.
pub fn default_rate_grid(max: f64) -> Vec<f64> {
    // Tolerance mirrors the old `r <= max + 1e-9` bound so a `max`
    // sitting exactly on a step (e.g. 0.5) is included.
    let steps = ((max + 1e-9) / 0.025).floor() as usize;
    (1..=steps).map(|i| (i * 25) as f64 / 1000.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig::builder()
            .warmup_cycles(100)
            .measure_cycles(800)
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_produces_monotone_throughput_below_saturation() {
        let result = sweep_rates(
            TopologySpec::Spidergon { nodes: 8 },
            TrafficSpec::Uniform,
            &base(),
            &[0.05, 0.1, 0.2],
            2,
        )
        .unwrap();
        assert_eq!(result.topology_label, "spidergon-8");
        let tp: Vec<f64> = result.points.iter().map(|p| p.throughput_mean).collect();
        assert!(tp[0] < tp[1] && tp[1] < tp[2], "{tp:?}");
        assert_eq!(result.throughput_xy().len(), 3);
        assert_eq!(result.latency_xy().len(), 3);
        for p in &result.points {
            assert!(p.latency_p50 > 0);
            assert!(p.latency_p50 <= p.latency_p95 && p.latency_p95 <= p.latency_p99);
        }
    }

    #[test]
    fn empty_and_unsorted_rates_rejected() {
        let e = sweep_rates(
            TopologySpec::Ring { nodes: 6 },
            TrafficSpec::Uniform,
            &base(),
            &[],
            1,
        );
        assert!(matches!(e, Err(CoreError::InvalidSpec { .. })));
        let e = sweep_rates(
            TopologySpec::Ring { nodes: 6 },
            TrafficSpec::Uniform,
            &base(),
            &[0.2, 0.1],
            1,
        );
        assert!(matches!(e, Err(CoreError::InvalidSpec { .. })));
    }

    #[test]
    fn default_grid_is_ascending_and_bounded() {
        let grid = default_rate_grid(0.5);
        assert_eq!(grid.first(), Some(&0.025));
        assert_eq!(grid.last(), Some(&0.5));
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(grid.len(), 20);
    }

    #[test]
    fn default_grid_values_are_exact_multiples() {
        // Every value must be the correctly-rounded double of i * 0.025
        // with no accumulated drift, even on a long grid.
        let grid = default_rate_grid(25.0);
        assert_eq!(grid.len(), 1000);
        for (i, &r) in grid.iter().enumerate() {
            let expected = ((i + 1) * 25) as f64 / 1000.0;
            assert_eq!(r.to_bits(), expected.to_bits(), "index {i}");
        }
        // Spot-check values the old accumulating loop drifted away
        // from before rounding: 0.825 = 33 * 0.025.
        assert_eq!(grid[32], 0.825);
        // A max just below a step excludes it; just above includes it.
        assert_eq!(default_rate_grid(0.049).len(), 1);
        assert_eq!(default_rate_grid(0.051).len(), 2);
        assert!(default_rate_grid(0.0).is_empty());
    }

    #[test]
    fn sweep_with_fixed_threads_matches_sequential() {
        let run = |par| {
            sweep_rates_with(
                TopologySpec::Ring { nodes: 6 },
                TrafficSpec::Uniform,
                &base(),
                &[0.05, 0.15],
                2,
                par,
            )
            .unwrap()
        };
        assert_eq!(run(Parallelism::Sequential), run(Parallelism::Fixed(4)));
    }
}
