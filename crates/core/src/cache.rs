//! Content-addressed experiment cache: memoization of deterministic
//! simulation results.
//!
//! The conformance harness ([`crate::conformance`]) proves a run is a
//! pure function of (topology spec, traffic spec, `SimConfig`, seed,
//! engine version) — bit-identical across engine widths and core
//! variants. That makes results safely memoizable, the same shape as a
//! build system caching object files: regenerating the paper's full
//! figure matrix only re-simulates points whose spec, seed or code
//! version changed.
//!
//! Three pieces:
//!
//! 1. **Fingerprint** — [`fingerprint`] hashes the *canonical encoding*
//!    of an experiment point (JSON of the spec with the effective seed
//!    substituted, field order fixed by declaration) with FNV-1a-128,
//!    salted with a code-version token (the workspace crate versions)
//!    and the bumpable [`CACHE_SCHEMA`] constant, so any semantics
//!    change invalidates every prior key cleanly.
//! 2. **Store** — [`ExperimentCache`] keeps one record per fingerprint
//!    under a two-level sharded directory (`results/.cache/ab/cd/…​.noc`
//!    by default). Records are versioned binary envelopes carrying the
//!    full canonical key (collision proof: the key is compared on read,
//!    not just the hash) and an FNV-1a-64 checksum over key + payload;
//!    writes go through a tempfile + atomic rename; corrupt or
//!    mismatched records are evicted and treated as misses, never
//!    trusted. [`ExperimentCache::gc`] bounds the store's size,
//!    removing oldest-modified records first.
//! 3. **Toggles and accounting** — [`ExperimentCache::from_env`] reads
//!    `NOC_CACHE` (unset/`0`/`off` disables; `1`/`on` selects the
//!    default directory; anything else is a directory path), and global
//!    [`counters`] track hits/misses/stores for reports and CI
//!    assertions. `NOC_CACHE_MAX_BYTES` bounds the store after each
//!    scheduler pass.
//!
//! The incremental scheduler lives in
//! [`crate::parallel::run_experiment_jobs_with_cache`]: it partitions a
//! job list into hits and misses, hands only the misses to the parallel
//! engine, and splices cached results back in deterministic job order —
//! so `run_replicated`, `sweep_rates` and every figure function become
//! incremental without API changes.

use crate::{CoreError, Experiment, RunResult};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the cache key and record layout. Bump on **any** change
/// that affects simulation semantics or serialized shapes without
/// showing up in the spec itself — every prior key becomes unreachable
/// and the stale records age out via [`ExperimentCache::gc`].
pub const CACHE_SCHEMA: u32 = 1;

/// Default store location, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/.cache";

/// Default size bound applied by `noc-cli cache gc` when no explicit
/// limit is given (1 GiB).
pub const DEFAULT_GC_BYTES: u64 = 1 << 30;

/// File extension of cache records.
const RECORD_EXT: &str = "noc";

/// Magic prefix of every record envelope.
const MAGIC: [u8; 4] = *b"NOCC";

/// Fixed envelope bytes before the key: magic + schema + key length +
/// payload length + checksum.
const HEADER_LEN: usize = 4 + 4 + 4 + 4 + 8;

/// The code-version salt folded into every fingerprint: the versions
/// of all crates whose behaviour feeds a simulation result.
pub fn code_version_token() -> String {
    format!(
        "core={};topology={};routing={};traffic={};sim={}",
        env!("CARGO_PKG_VERSION"),
        noc_topology::CRATE_VERSION,
        noc_routing::CRATE_VERSION,
        noc_traffic::CRATE_VERSION,
        noc_sim::CRATE_VERSION,
    )
}

/// 128-bit structural fingerprint of one experiment point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// 32-digit lowercase hex form (the record's file stem).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// FNV-1a, 128-bit variant (native `u128` arithmetic; no per-process
/// state, so hashes are stable across processes and platforms).
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u128::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// FNV-1a, 64-bit variant (record checksums).
fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x00000100000001b3;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The canonical key serialized (in declaration order) for hashing and
/// for embedding into records.
#[derive(Serialize)]
struct CacheKey {
    schema: u32,
    code_version: String,
    topology: crate::TopologySpec,
    traffic: crate::TrafficSpec,
    config: noc_sim::SimConfig,
}

/// Canonical JSON encoding of an experiment point under an explicit
/// schema number and code-version token (the testable core of
/// [`canonical_key`]; production callers never override the salt).
pub fn canonical_key_with(
    schema: u32,
    code_version: &str,
    experiment: &Experiment,
    seed: u64,
) -> String {
    // The seed is substituted into the config exactly as
    // `Experiment::run_with_seed` does, so the key describes the run
    // that actually executes.
    let mut config = experiment.config.clone();
    config.seed = seed;
    let key = CacheKey {
        schema,
        code_version: code_version.to_owned(),
        topology: experiment.topology,
        traffic: experiment.traffic,
        config,
    };
    serde_json::to_string(&key).expect("cache key serializes")
}

/// Canonical JSON encoding of an experiment point: schema, code
/// version, topology, traffic and the config with the effective seed.
pub fn canonical_key(experiment: &Experiment, seed: u64) -> String {
    canonical_key_with(CACHE_SCHEMA, &code_version_token(), experiment, seed)
}

/// Fingerprint under an explicit schema/token (see
/// [`canonical_key_with`]); exposed so tests can prove that bumping
/// [`CACHE_SCHEMA`] or changing a crate version invalidates keys.
pub fn fingerprint_with(
    schema: u32,
    code_version: &str,
    experiment: &Experiment,
    seed: u64,
) -> Fingerprint {
    Fingerprint(fnv1a_128(
        canonical_key_with(schema, code_version, experiment, seed).as_bytes(),
    ))
}

/// The stable structural fingerprint of one experiment point.
pub fn fingerprint(experiment: &Experiment, seed: u64) -> Fingerprint {
    Fingerprint(fnv1a_128(canonical_key(experiment, seed).as_bytes()))
}

// --- global hit/miss accounting -----------------------------------------

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide cache counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize)]
pub struct CacheCounters {
    /// Points answered from the store.
    pub hits: u64,
    /// Points that had to be simulated.
    pub misses: u64,
    /// Records written (a miss that simulated successfully).
    pub stores: u64,
}

impl CacheCounters {
    /// The counters accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits.wrapping_sub(earlier.hits),
            misses: self.misses.wrapping_sub(earlier.misses),
            stores: self.stores.wrapping_sub(earlier.stores),
        }
    }
}

/// Current process-wide counters (all cache-aware schedulers in this
/// process accumulate here).
pub fn counters() -> CacheCounters {
    CacheCounters {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        stores: STORES.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide counters to zero.
pub fn reset_counters() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    STORES.store(0, Ordering::Relaxed);
}

pub(crate) fn record_counters(delta: CacheCounters) {
    HITS.fetch_add(delta.hits, Ordering::Relaxed);
    MISSES.fetch_add(delta.misses, Ordering::Relaxed);
    STORES.fetch_add(delta.stores, Ordering::Relaxed);
}

// --- record envelope -----------------------------------------------------

/// Why a record on disk was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
enum RecordFault {
    Truncated,
    BadMagic,
    SchemaMismatch(u32),
    LengthMismatch,
    ChecksumMismatch,
    KeyMismatch,
    BadPayload(String),
    MisfiledKey,
}

impl std::fmt::Display for RecordFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordFault::Truncated => write!(f, "record truncated"),
            RecordFault::BadMagic => write!(f, "bad magic"),
            RecordFault::SchemaMismatch(found) => {
                write!(f, "schema {found} != {CACHE_SCHEMA}")
            }
            RecordFault::LengthMismatch => write!(f, "declared lengths disagree with file size"),
            RecordFault::ChecksumMismatch => write!(f, "checksum mismatch"),
            RecordFault::KeyMismatch => write!(f, "stored key differs from the requested key"),
            RecordFault::BadPayload(reason) => write!(f, "payload does not parse: {reason}"),
            RecordFault::MisfiledKey => write!(f, "file name does not match the stored key"),
        }
    }
}

/// Serializes a record envelope:
/// `NOCC | schema | key_len | payload_len | fnv64(key ++ payload) | key | payload`.
fn encode_record(key: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + key.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CACHE_SCHEMA.to_le_bytes());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut checksum = fnv1a_64(key);
    checksum ^= fnv1a_64(payload).rotate_left(1);
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(payload);
    out
}

/// Splits a record envelope into its validated key and payload slices.
fn parse_record(bytes: &[u8]) -> Result<(&[u8], &[u8]), RecordFault> {
    if bytes.len() < HEADER_LEN {
        return Err(RecordFault::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(RecordFault::BadMagic);
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let schema = word(4);
    if schema != CACHE_SCHEMA {
        return Err(RecordFault::SchemaMismatch(schema));
    }
    let key_len = word(8) as usize;
    let payload_len = word(12) as usize;
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let body = &bytes[HEADER_LEN..];
    if body.len() != key_len.saturating_add(payload_len) {
        return Err(RecordFault::LengthMismatch);
    }
    let (key, payload) = body.split_at(key_len);
    let expected = fnv1a_64(key) ^ fnv1a_64(payload).rotate_left(1);
    if checksum != expected {
        return Err(RecordFault::ChecksumMismatch);
    }
    Ok((key, payload))
}

/// Fully validates a record for `verify`: envelope, checksum, payload
/// parse, and that the file sits where its embedded key hashes to.
fn audit_record(path: &Path, bytes: &[u8]) -> Result<(), RecordFault> {
    let (key, payload) = parse_record(bytes)?;
    let payload_text = std::str::from_utf8(payload)
        .map_err(|e| RecordFault::BadPayload(format!("not UTF-8: {e}")))?;
    let _: RunResult =
        serde_json::from_str(payload_text).map_err(|e| RecordFault::BadPayload(e.to_string()))?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    if stem != Fingerprint(fnv1a_128(key)).hex() {
        return Err(RecordFault::MisfiledKey);
    }
    Ok(())
}

// --- the on-disk store ---------------------------------------------------

/// Handle on the content-addressed result store (or on "caching
/// disabled", which makes every lookup a miss and every store a no-op).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ExperimentCache {
    dir: Option<PathBuf>,
}

/// Entry count and byte total of a store directory.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Number of records.
    pub entries: usize,
    /// Total size of all records in bytes.
    pub total_bytes: u64,
}

/// Outcome of a garbage-collection pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GcOutcome {
    /// Records removed (oldest modification time first).
    pub removed: usize,
    /// Bytes those records occupied.
    pub freed_bytes: u64,
    /// Store contents after the pass.
    pub remaining: CacheStats,
}

/// Outcome of an integrity scan.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VerifyOutcome {
    /// Records that validated end to end.
    pub ok: usize,
    /// Rejected records with the reason each failed.
    pub corrupt: Vec<(PathBuf, String)>,
    /// Rejected records deleted (when `fix` was requested).
    pub removed: usize,
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A process-unique temporary directory path under the system temp dir
/// (not created). Used by tests, the conformance harness and the guard
/// binaries to get isolated cache stores that cannot collide across
/// concurrent test processes.
pub fn unique_temp_dir(prefix: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "{prefix}-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

impl ExperimentCache {
    /// A disabled cache: lookups always miss, stores do nothing.
    pub fn disabled() -> Self {
        ExperimentCache { dir: None }
    }

    /// A cache rooted at an explicit directory (created lazily on the
    /// first store).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        ExperimentCache {
            dir: Some(dir.into()),
        }
    }

    /// A cache rooted at [`DEFAULT_CACHE_DIR`].
    pub fn default_dir() -> Self {
        Self::at(DEFAULT_CACHE_DIR)
    }

    /// Resolves the `NOC_CACHE` environment variable: unset, empty,
    /// `0`, `off`, `false` or `no` disable caching; `1`, `on`, `true`
    /// or `yes` select [`DEFAULT_CACHE_DIR`]; anything else is used as
    /// the store directory.
    pub fn from_env() -> Self {
        match std::env::var("NOC_CACHE") {
            Err(_) => Self::disabled(),
            Ok(value) => match value.trim() {
                "" | "0" | "off" | "false" | "no" => Self::disabled(),
                "1" | "on" | "true" | "yes" => Self::default_dir(),
                dir => Self::at(dir),
            },
        }
    }

    /// `true` when lookups can hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The store directory (`None` when disabled).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The record path for a fingerprint: two hex shard levels, then
    /// the full fingerprint as the file stem.
    fn record_path(dir: &Path, fp: &Fingerprint) -> PathBuf {
        let hex = fp.hex();
        dir.join(&hex[0..2])
            .join(&hex[2..4])
            .join(format!("{hex}.{RECORD_EXT}"))
    }

    /// Looks up a cached result for (experiment, seed). A hit requires
    /// the envelope to validate *and* the embedded canonical key to
    /// equal the requested one byte-for-byte — a hash collision or a
    /// record from a different code version can never be returned.
    /// Invalid records are evicted so the subsequent store replaces
    /// them.
    pub fn lookup(&self, experiment: &Experiment, seed: u64) -> Option<RunResult> {
        let dir = self.dir.as_ref()?;
        let key = canonical_key(experiment, seed);
        let path = Self::record_path(dir, &Fingerprint(fnv1a_128(key.as_bytes())));
        let bytes = std::fs::read(&path).ok()?;
        let parsed = parse_record(&bytes).and_then(|(stored_key, payload)| {
            if stored_key != key.as_bytes() {
                return Err(RecordFault::KeyMismatch);
            }
            let text = std::str::from_utf8(payload)
                .map_err(|e| RecordFault::BadPayload(format!("not UTF-8: {e}")))?;
            serde_json::from_str::<RunResult>(text)
                .map_err(|e| RecordFault::BadPayload(e.to_string()))
        });
        match parsed {
            Ok(result) => Some(result),
            Err(_) => {
                // Corrupt, stale-schema or mismatched record: treat as
                // a miss and evict so the recomputed result replaces it.
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores a result under (experiment, seed), atomically (tempfile
    /// then rename, so readers never observe a half-written record).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers on the simulation path
    /// treat failures as "cache unavailable", not as run failures.
    pub fn store(
        &self,
        experiment: &Experiment,
        seed: u64,
        result: &RunResult,
    ) -> std::io::Result<bool> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(false);
        };
        let key = canonical_key(experiment, seed);
        let payload = serde_json::to_string(result).expect("run result serializes");
        let bytes = encode_record(key.as_bytes(), payload.as_bytes());
        let path = Self::record_path(dir, &Fingerprint(fnv1a_128(key.as_bytes())));
        let shard = path.parent().expect("record path has a parent");
        std::fs::create_dir_all(shard)?;
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        Ok(true)
    }

    /// Every record in the store as `(path, len, modified)`.
    fn walk(&self) -> std::io::Result<Vec<(PathBuf, u64, std::time::SystemTime)>> {
        let mut records = Vec::new();
        let Some(dir) = self.dir.as_ref() else {
            return Ok(records);
        };
        if !dir.exists() {
            return Ok(records);
        }
        let mut stack = vec![dir.clone()];
        while let Some(current) = stack.pop() {
            for entry in std::fs::read_dir(&current)? {
                let entry = entry?;
                let path = entry.path();
                let meta = entry.metadata()?;
                if meta.is_dir() {
                    stack.push(path);
                } else if path.extension().and_then(|e| e.to_str()) == Some(RECORD_EXT) {
                    let modified = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                    records.push((path, meta.len(), modified));
                }
            }
        }
        // Deterministic order for reports.
        records.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(records)
    }

    /// Entry count and byte total of the store.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from scanning the directory.
    pub fn stats(&self) -> std::io::Result<CacheStats> {
        let records = self.walk()?;
        Ok(CacheStats {
            entries: records.len(),
            total_bytes: records.iter().map(|(_, len, _)| len).sum(),
        })
    }

    /// Shrinks the store to at most `max_bytes`, deleting
    /// oldest-modified records first (records answering recent runs
    /// survive).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from scanning or deleting.
    pub fn gc(&self, max_bytes: u64) -> std::io::Result<GcOutcome> {
        let mut records = self.walk()?;
        records.sort_by_key(|(_, _, modified)| *modified);
        let mut total: u64 = records.iter().map(|(_, len, _)| len).sum();
        let mut outcome = GcOutcome::default();
        let mut kept = records.len();
        for (path, len, _) in &records {
            if total <= max_bytes {
                break;
            }
            std::fs::remove_file(path)?;
            total -= len;
            outcome.removed += 1;
            outcome.freed_bytes += len;
            kept -= 1;
        }
        outcome.remaining = CacheStats {
            entries: kept,
            total_bytes: total,
        };
        Ok(outcome)
    }

    /// Applies the `NOC_CACHE_MAX_BYTES` size bound, if set to a
    /// parsable byte count. Failures are ignored — GC is advisory.
    pub fn enforce_env_limit(&self) {
        if let Some(limit) = std::env::var("NOC_CACHE_MAX_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            let _ = self.gc(limit);
        }
    }

    /// Validates every record end to end (envelope, checksum, payload
    /// parse, file placement). With `fix`, rejected records are
    /// deleted so the next run recomputes them.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from scanning or deleting; individual
    /// unreadable records are reported in the outcome instead.
    pub fn verify(&self, fix: bool) -> std::io::Result<VerifyOutcome> {
        let mut outcome = VerifyOutcome::default();
        for (path, _, _) in self.walk()? {
            let fault = match std::fs::read(&path) {
                Ok(bytes) => audit_record(&path, &bytes).err().map(|f| f.to_string()),
                Err(e) => Some(format!("unreadable: {e}")),
            };
            match fault {
                None => outcome.ok += 1,
                Some(reason) => {
                    if fix {
                        std::fs::remove_file(&path)?;
                        outcome.removed += 1;
                    }
                    outcome.corrupt.push((path, reason));
                }
            }
        }
        Ok(outcome)
    }
}

/// Convenience wrapper: run one experiment point through the cache —
/// lookup, simulate on miss, store. Used by the scheduler for its
/// miss path and directly by tests.
///
/// # Errors
///
/// Propagates the simulation error on a miss that fails to run; cache
/// I/O problems silently degrade to recomputation.
pub fn run_cached(
    cache: &ExperimentCache,
    experiment: &Experiment,
    seed: u64,
) -> Result<RunResult, CoreError> {
    if let Some(hit) = cache.lookup(experiment, seed) {
        record_counters(CacheCounters {
            hits: 1,
            ..CacheCounters::default()
        });
        return Ok(hit);
    }
    let result = experiment.run_with_seed(seed)?;
    let stored = cache.store(experiment, seed, &result).unwrap_or(false);
    record_counters(CacheCounters {
        hits: 0,
        misses: 1,
        stores: u64::from(stored),
    });
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TopologySpec, TrafficSpec};
    use noc_sim::SimConfig;

    fn experiment() -> Experiment {
        Experiment {
            topology: TopologySpec::Spidergon { nodes: 8 },
            traffic: TrafficSpec::Uniform,
            config: SimConfig::builder()
                .injection_rate(0.2)
                .warmup_cycles(20)
                .measure_cycles(200)
                .seed(7)
                .build()
                .unwrap(),
        }
    }

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        let exp = experiment();
        assert_eq!(fingerprint(&exp, 7), fingerprint(&exp, 7));
        assert_ne!(fingerprint(&exp, 7), fingerprint(&exp, 8));
    }

    #[test]
    fn canonical_key_substitutes_the_effective_seed() {
        let exp = experiment();
        let key = canonical_key(&exp, 99);
        assert!(key.contains("\"seed\":99"), "{key}");
        assert!(key.contains("code_version"), "{key}");
    }

    #[test]
    fn record_envelope_round_trips() {
        let (key, payload) = (b"key-bytes".as_slice(), b"{\"x\":1}".as_slice());
        let bytes = encode_record(key, payload);
        let (k, p) = parse_record(&bytes).unwrap();
        assert_eq!((k, p), (key, payload));
    }

    #[test]
    fn record_envelope_rejects_damage() {
        let bytes = encode_record(b"key", b"payload");
        assert_eq!(parse_record(&bytes[..10]), Err(RecordFault::Truncated));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(parse_record(&bad_magic), Err(RecordFault::BadMagic));
        let mut bad_schema = bytes.clone();
        bad_schema[4] ^= 0xFF;
        assert!(matches!(
            parse_record(&bad_schema),
            Err(RecordFault::SchemaMismatch(_))
        ));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(parse_record(&flipped), Err(RecordFault::ChecksumMismatch));
        let mut short = bytes;
        short.truncate(short.len() - 1);
        assert_eq!(parse_record(&short), Err(RecordFault::LengthMismatch));
    }

    #[test]
    fn checksum_distinguishes_key_payload_split() {
        // Same concatenated bytes, different split point: the rotated
        // combination must not collide.
        let a = encode_record(b"ab", b"cd");
        let b = encode_record(b"abc", b"d");
        let ck = |bytes: &[u8]| u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_ne!(ck(&a), ck(&b));
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = ExperimentCache::disabled();
        let exp = experiment();
        assert!(!cache.is_enabled());
        assert!(cache.lookup(&exp, 7).is_none());
        let fake = exp.run_with_seed(7).unwrap();
        assert!(!cache.store(&exp, 7, &fake).unwrap());
        assert_eq!(cache.stats().unwrap(), CacheStats::default());
    }

    #[test]
    fn env_resolution() {
        // `from_env` reads the ambient variable, so exercise the match
        // arms through a helper-free contract: the default build of
        // this test environment leaves NOC_CACHE unset.
        if std::env::var("NOC_CACHE").is_err() {
            assert!(!ExperimentCache::from_env().is_enabled());
        }
        assert_eq!(
            ExperimentCache::default_dir().dir().unwrap(),
            Path::new(DEFAULT_CACHE_DIR)
        );
    }

    #[test]
    fn store_lookup_and_gc_cycle() {
        let dir = unique_temp_dir("noc-cache-unit");
        let cache = ExperimentCache::at(&dir);
        let exp = experiment();
        let fresh = exp.run_with_seed(7).unwrap();
        assert!(cache.lookup(&exp, 7).is_none());
        assert!(cache.store(&exp, 7, &fresh).unwrap());
        assert_eq!(cache.lookup(&exp, 7).unwrap(), fresh);
        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert!(stats.total_bytes > 0);
        // A second seed, then GC to zero removes both.
        let fresh2 = exp.run_with_seed(8).unwrap();
        assert!(cache.store(&exp, 8, &fresh2).unwrap());
        let gc = cache.gc(0).unwrap();
        assert_eq!(gc.removed, 2);
        assert_eq!(gc.remaining, CacheStats::default());
        assert!(cache.lookup(&exp, 7).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_and_fixes_corruption() {
        let dir = unique_temp_dir("noc-cache-verify");
        let cache = ExperimentCache::at(&dir);
        let exp = experiment();
        let fresh = exp.run_with_seed(7).unwrap();
        cache.store(&exp, 7, &fresh).unwrap();
        let clean = cache.verify(false).unwrap();
        assert_eq!((clean.ok, clean.corrupt.len(), clean.removed), (1, 0, 0));
        // Flip one payload byte: checksum must reject it.
        let (path, _, _) = cache.walk().unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let dirty = cache.verify(false).unwrap();
        assert_eq!((dirty.ok, dirty.corrupt.len(), dirty.removed), (0, 1, 0));
        assert!(dirty.corrupt[0].1.contains("checksum"), "{dirty:?}");
        let fixed = cache.verify(true).unwrap();
        assert_eq!(fixed.removed, 1);
        assert_eq!(cache.stats().unwrap().entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let dir = unique_temp_dir("noc-cache-counters");
        let cache = ExperimentCache::at(&dir);
        let exp = experiment();
        let before = counters();
        let miss = run_cached(&cache, &exp, 7).unwrap();
        let hit = run_cached(&cache, &exp, 7).unwrap();
        assert_eq!(miss, hit);
        let delta = counters().since(&before);
        assert_eq!(
            delta,
            CacheCounters {
                hits: 1,
                misses: 1,
                stores: 1
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
