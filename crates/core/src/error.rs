//! Unified error type of the experiment harness.

use core::fmt;
use noc_sim::SimError;
use noc_topology::TopologyError;
use noc_traffic::TrafficError;

/// Error produced while building or running an experiment.
#[derive(Clone, PartialEq, Debug)]
pub enum CoreError {
    /// Topology construction failed.
    Topology(TopologyError),
    /// Traffic pattern construction failed.
    Traffic(TrafficError),
    /// Simulation construction or execution failed.
    Sim(SimError),
    /// The experiment specification is inconsistent (e.g. transpose
    /// traffic on a non-square mesh).
    InvalidSpec {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Topology(e) => write!(f, "topology error: {e}"),
            CoreError::Traffic(e) => write!(f, "traffic error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::InvalidSpec { reason } => write!(f, "invalid experiment spec: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Topology(e) => Some(e),
            CoreError::Traffic(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::InvalidSpec { .. } => None,
        }
    }
}

impl From<TopologyError> for CoreError {
    fn from(e: TopologyError) -> Self {
        CoreError::Topology(e)
    }
}

impl From<TrafficError> for CoreError {
    fn from(e: TrafficError) -> Self {
        CoreError::Traffic(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: CoreError = TopologyError::ZeroDimension.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("topology"));
        let e: CoreError = TrafficError::TooFewNodes {
            requested: 1,
            minimum: 2,
        }
        .into();
        assert!(e.to_string().contains("traffic"));
        let e: CoreError = SimError::InvalidConfig { reason: "x".into() }.into();
        assert!(e.to_string().contains("simulation"));
        let e = CoreError::InvalidSpec {
            reason: "bad".into(),
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }
}
