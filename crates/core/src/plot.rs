//! Terminal line plots for [`FigureData`]:
//! render the reproduced figures as ASCII charts so curve shapes —
//! saturation knees, crossovers, collapses — can be eyeballed against
//! the paper without leaving the shell.

use crate::report::FigureData;

use std::fmt::Write as _;

/// Marker characters assigned to series, in order.
const MARKERS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&', '~', '^'];

/// Options for [`render`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlotOptions {
    /// Plot area width in columns (excluding the axis gutter).
    pub width: usize,
    /// Plot area height in rows.
    pub height: usize,
    /// Use a logarithmic y axis (useful for latency figures whose
    /// saturated values dwarf the zero-load ones).
    pub log_y: bool,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            width: 64,
            height: 20,
            log_y: false,
        }
    }
}

impl PlotOptions {
    /// Default geometry with a logarithmic y axis.
    pub fn log() -> Self {
        PlotOptions {
            log_y: true,
            ..PlotOptions::default()
        }
    }
}

/// Renders a figure as an ASCII line plot with a legend.
///
/// Each series gets a marker character; points are placed on a
/// `width x height` grid spanning the data's bounding box. Overlapping
/// points keep the earlier series' marker. Returns a multi-line string
/// ending in a legend.
///
/// # Panics
///
/// Panics if `options.width` or `options.height` is zero.
///
/// # Examples
///
/// ```
/// use noc_core::plot::{render, PlotOptions};
/// use noc_core::report::{FigureData, Series};
///
/// let fig = FigureData::new("demo", "Demo", "x", "y")
///     .with_series(Series::from_xy("linear", (0..10).map(|i| (i as f64, i as f64))));
/// let chart = render(&fig, PlotOptions::default());
/// assert!(chart.contains("o = linear"));
/// ```
pub fn render(figure: &FigureData, options: PlotOptions) -> String {
    assert!(
        options.width > 0 && options.height > 0,
        "plot area must be nonzero"
    );
    let mut out = String::new();
    let _ = writeln!(out, "{}: {}", figure.id, figure.title);

    let points: Vec<(f64, f64, usize)> = figure
        .series
        .iter()
        .enumerate()
        .flat_map(|(si, s)| {
            s.points
                .iter()
                .filter(|p| p.x.is_finite() && p.y.is_finite())
                .filter(|p| !options.log_y || p.y > 0.0)
                .map(move |p| (p.x, p.y, si))
        })
        .collect();
    if points.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }

    let y_of = |y: f64| if options.log_y { y.ln() } else { y };
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y, _) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y_of(y));
        y_max = y_max.max(y_of(y));
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let (w, h) = (options.width, options.height);
    let mut grid = vec![vec![' '; w]; h];
    for &(x, y, si) in &points {
        let cx = (((x - x_min) / (x_max - x_min)) * (w - 1) as f64).round() as usize;
        let cy = (((y_of(y) - y_min) / (y_max - y_min)) * (h - 1) as f64).round() as usize;
        let row = h - 1 - cy;
        if grid[row][cx] == ' ' {
            grid[row][cx] = MARKERS[si % MARKERS.len()];
        }
    }

    let y_top = if options.log_y { y_max.exp() } else { y_max };
    let y_bottom = if options.log_y { y_min.exp() } else { y_min };
    let label_top = format_tick(y_top);
    let label_bottom = format_tick(y_bottom);
    let gutter = label_top.len().max(label_bottom.len());
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            label_top.clone()
        } else if i == h - 1 {
            label_bottom.clone()
        } else {
            String::new()
        };
        let _ = writeln!(out, "{label:>gutter$} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>gutter$} +{}", "", "-".repeat(w));
    let _ = writeln!(
        out,
        "{:>gutter$}  {}{:>rest$}",
        "",
        format_tick(x_min),
        format_tick(x_max),
        rest = w.saturating_sub(format_tick(x_min).len()),
    );
    let _ = writeln!(
        out,
        "x = {}; y = {}{}",
        figure.x_label,
        figure.y_label,
        if options.log_y { " (log scale)" } else { "" }
    );
    for (si, s) in figure.series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", MARKERS[si % MARKERS.len()], s.label);
    }
    out
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;

    fn sample() -> FigureData {
        FigureData::new("t", "Two lines", "load", "throughput")
            .with_series(Series::from_xy("flat", (0..10).map(|i| (i as f64, 1.0))))
            .with_series(Series::from_xy(
                "rising",
                (0..10).map(|i| (i as f64, i as f64)),
            ))
    }

    #[test]
    fn renders_grid_legend_and_axes() {
        let s = render(&sample(), PlotOptions::default());
        assert!(s.contains("o = flat"));
        assert!(s.contains("+ = rising"));
        assert!(s.contains("x = load; y = throughput"));
        // Header + height rows + axis + ticks + labels + 2 legend rows.
        assert!(s.lines().count() >= 20 + 5);
        // Both markers appear in the plot area.
        assert!(s.contains('o') && s.contains('+'));
    }

    #[test]
    fn rising_series_touches_opposite_corners() {
        let fig = FigureData::new("t", "t", "x", "y")
            .with_series(Series::from_xy("diag", [(0.0, 0.0), (1.0, 1.0)]));
        let opts = PlotOptions {
            width: 11,
            height: 5,
            log_y: false,
        };
        let s = render(&fig, opts);
        let rows: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 5);
        // Top row holds the max point at the right edge.
        assert_eq!(rows[0].chars().last(), Some('o'));
        // Bottom row holds the min point at the left edge (after "|").
        let bottom = rows[4];
        let after_pipe = &bottom[bottom.find('|').unwrap() + 1..];
        assert_eq!(after_pipe.chars().next(), Some('o'));
    }

    #[test]
    fn log_scale_drops_nonpositive_points() {
        let fig = FigureData::new("t", "t", "x", "y").with_series(Series::from_xy(
            "mixed",
            [(0.0, 0.0), (1.0, 10.0), (2.0, 1000.0)],
        ));
        let s = render(&fig, PlotOptions::log());
        assert!(s.contains("log scale"));
        // Two positive points only, counted inside the plot rows.
        let markers: usize = s
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.matches('o').count())
            .sum();
        assert_eq!(markers, 2);
    }

    #[test]
    fn empty_figure_says_no_data() {
        let fig = FigureData::new("t", "t", "x", "y");
        assert!(render(&fig, PlotOptions::default()).contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let fig =
            FigureData::new("t", "t", "x", "y").with_series(Series::from_xy("c", [(1.0, 5.0)]));
        let s = render(&fig, PlotOptions::default());
        assert!(s.contains('o'));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_geometry_rejected() {
        let _ = render(
            &sample(),
            PlotOptions {
                width: 0,
                height: 5,
                log_y: false,
            },
        );
    }
}
