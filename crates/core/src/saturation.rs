//! Saturation-point estimation from injection-rate sweeps.
//!
//! The paper reads saturation off its latency plots ("the latency
//! sharply increases when the network saturation is obtained"). Here
//! saturation is detected quantitatively from the acceptance ratio: the
//! first swept rate at which the network stops accepting the offered
//! load.

use crate::SweepResult;
use serde::{Deserialize, Serialize};

/// Estimated saturation point of a sweep.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SaturationPoint {
    /// The injection rate (flits/cycle per source) at which saturation
    /// was declared.
    pub rate: f64,
    /// Throughput measured at that rate (the saturation throughput).
    pub throughput: f64,
    /// Latency measured at that rate.
    pub latency: f64,
}

/// Acceptance-ratio threshold below which a point counts as saturated.
pub const DEFAULT_ACCEPTANCE_THRESHOLD: f64 = 0.95;

/// Finds the first swept point whose acceptance ratio falls below
/// `threshold`; `None` if the sweep never saturates.
///
/// # Panics
///
/// Panics if `threshold` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use noc_core::{saturation_point, sweep_rates, TopologySpec, TrafficSpec};
/// use noc_sim::SimConfig;
///
/// let base = SimConfig::builder()
///     .warmup_cycles(100)
///     .measure_cycles(1_500)
///     .build()?;
/// let sweep = sweep_rates(
///     TopologySpec::Ring { nodes: 16 },
///     TrafficSpec::Uniform,
///     &base,
///     &[0.1, 0.3, 0.6, 0.9],
///     1,
/// )?;
/// // A 16-node ring saturates well below 0.9 flits/cycle/node.
/// let sat = saturation_point(&sweep, 0.95).expect("ring saturates");
/// assert!(sat.rate <= 0.9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn saturation_point(sweep: &SweepResult, threshold: f64) -> Option<SaturationPoint> {
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "threshold must be in (0, 1]"
    );
    sweep
        .points
        .iter()
        .find(|p| p.acceptance < threshold)
        .map(|p| SaturationPoint {
            rate: p.rate,
            throughput: p.throughput_mean,
            latency: p.latency_mean,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SweepPoint;

    fn fake_sweep(acceptances: &[f64]) -> SweepResult {
        SweepResult {
            topology_label: "test".into(),
            traffic_label: "uniform".into(),
            points: acceptances
                .iter()
                .enumerate()
                .map(|(i, &a)| SweepPoint {
                    rate: 0.1 * (i + 1) as f64,
                    throughput_mean: 1.0,
                    throughput_std: 0.0,
                    latency_mean: 10.0,
                    latency_std: 0.0,
                    acceptance: a,
                    mean_hops: 2.0,
                    latency_p50: 10,
                    latency_p95: 10,
                    latency_p99: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn finds_first_saturated_point() {
        let sweep = fake_sweep(&[1.0, 0.99, 0.7, 0.4]);
        let sat = saturation_point(&sweep, 0.95).unwrap();
        assert!((sat.rate - 0.3).abs() < 1e-12);
    }

    #[test]
    fn unsaturated_sweep_returns_none() {
        let sweep = fake_sweep(&[1.0, 1.0, 0.99]);
        assert!(saturation_point(&sweep, 0.95).is_none());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_validated() {
        let sweep = fake_sweep(&[1.0]);
        let _ = saturation_point(&sweep, 0.0);
    }

    #[test]
    fn single_point_sweep_saturated_or_not() {
        // One saturated point: declared at that point's rate.
        let sat = saturation_point(&fake_sweep(&[0.5]), 0.95).unwrap();
        assert!((sat.rate - 0.1).abs() < 1e-12);
        assert!((sat.throughput - 1.0).abs() < 1e-12);
        assert!((sat.latency - 10.0).abs() < 1e-12);
        // One accepting point: no saturation anywhere in the sweep.
        assert!(saturation_point(&fake_sweep(&[1.0]), 0.95).is_none());
        // Empty sweep trivially never saturates.
        assert!(saturation_point(&fake_sweep(&[]), 0.95).is_none());
    }

    #[test]
    fn sweep_saturating_at_first_rate() {
        // Already saturated at the lowest rate — the first point wins
        // even though later points are saturated too.
        let sweep = fake_sweep(&[0.9, 0.8, 0.3]);
        let sat = saturation_point(&sweep, 0.95).unwrap();
        assert!((sat.rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn boundary_acceptance_is_not_saturated() {
        // `acceptance == threshold` counts as accepting (strict <).
        assert!(saturation_point(&fake_sweep(&[0.95, 0.95]), 0.95).is_none());
        let sat = saturation_point(&fake_sweep(&[0.95, 0.9499]), 0.95).unwrap();
        assert!((sat.rate - 0.2).abs() < 1e-12);
    }
}
