//! The parallel engine's core guarantee: output is **bit-identical**
//! to a sequential run for any worker count. Results are compared via
//! their `serde_json` serialization, which covers every public field
//! (including f64 bit patterns — `1e-9`-style tolerances would hide
//! reassembly bugs).
//!
//! Also holds the hop-count regression test for the flit hop counter
//! that replaced the per-packet hop table in the simulator hot path.

use noc_core::figures::{fig6_7, FigureOptions};
use noc_core::{sweep_rates_with, Experiment, Parallelism, TopologySpec, TrafficSpec};
use noc_routing::SpidergonAcrossFirst;
use noc_sim::{SimConfig, Simulation};
use noc_topology::Spidergon;
use noc_traffic::UniformRandom;

fn base_config(lambda: f64) -> SimConfig {
    SimConfig::builder()
        .injection_rate(lambda)
        .warmup_cycles(100)
        .measure_cycles(800)
        .seed(2006)
        .build()
        .unwrap()
}

/// Serializes a value so two results can be compared field-for-field.
fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap()
}

#[test]
fn sweep_is_bit_identical_across_worker_counts() {
    let topology = TopologySpec::Spidergon { nodes: 8 };
    let traffic = TrafficSpec::Uniform;
    let rates = [0.05, 0.15, 0.3];
    let sequential = sweep_rates_with(
        topology,
        traffic,
        &base_config(0.1),
        &rates,
        2,
        Parallelism::Sequential,
    )
    .unwrap();
    for workers in [2usize, 4, 7] {
        let parallel = sweep_rates_with(
            topology,
            traffic,
            &base_config(0.1),
            &rates,
            2,
            Parallelism::Fixed(workers),
        )
        .unwrap();
        assert_eq!(
            json(&parallel),
            json(&sequential),
            "sweep output diverged at {workers} workers"
        );
    }
}

#[test]
fn replicated_runs_are_bit_identical_across_worker_counts() {
    let experiment = Experiment {
        topology: TopologySpec::Ring { nodes: 8 },
        traffic: TrafficSpec::Uniform,
        config: base_config(0.2),
    };
    let sequential = experiment
        .run_replicated_with(3, Parallelism::Sequential)
        .unwrap();
    for workers in [3usize, 8] {
        let parallel = experiment
            .run_replicated_with(3, Parallelism::Fixed(workers))
            .unwrap();
        assert_eq!(json(&parallel), json(&sequential));
    }
}

/// `NOC_THREADS` steers [`Parallelism::Auto`] (the figure drivers'
/// policy), and figure output does not depend on the resolved worker
/// count. One test mutates the process-global variable and exercises a
/// figure under each setting, so the assertions cannot race with each
/// other across test threads; the engine's bit-identity guarantee makes
/// the mutation invisible to every other test in this binary.
#[test]
fn auto_policy_honors_noc_threads_and_figures_stay_bit_identical() {
    let opts = FigureOptions {
        warmup_cycles: 50,
        measure_cycles: 400,
        replications: 2,
        seed: 2006,
        max_rate: 0.3,
        rate_steps: 2,
        node_counts: vec![8],
    };
    std::env::set_var("NOC_THREADS", "1");
    assert_eq!(Parallelism::Auto.worker_count(), 1);
    let (tp_seq, lat_seq) = fig6_7(&opts).unwrap();

    std::env::set_var("NOC_THREADS", "4");
    assert_eq!(Parallelism::Auto.worker_count(), 4);
    let (tp_par, lat_par) = fig6_7(&opts).unwrap();
    assert_eq!(json(&tp_par), json(&tp_seq));
    assert_eq!(json(&lat_par), json(&lat_seq));

    // Garbage values fall back to the host core count.
    std::env::set_var("NOC_THREADS", "zero");
    assert_eq!(
        Parallelism::Auto.worker_count(),
        noc_core::parallel::available_cores()
    );
    std::env::remove_var("NOC_THREADS");
}

/// Every flit carries its own hop counter; the tail's count at
/// consumption must equal the topological distance the packet actually
/// travelled. Across-First routing on Spidergon is minimal, so each
/// delivered packet's hop count must equal the shortest-path distance
/// between its endpoints.
#[test]
fn delivered_hop_counts_match_spidergon_distances() {
    let sg = Spidergon::new(12).unwrap();
    let routing = SpidergonAcrossFirst::new(&sg);
    let pattern = UniformRandom::new(12).unwrap();
    let mut cfg = base_config(0.15);
    cfg.record_deliveries = true;
    let distances = sg.clone();
    let mut sim = Simulation::new(Box::new(sg), Box::new(routing), Box::new(pattern), cfg).unwrap();
    sim.run().unwrap();
    assert!(
        sim.deliveries().len() > 100,
        "too few deliveries ({}) for a meaningful check",
        sim.deliveries().len()
    );
    for d in sim.deliveries() {
        assert_eq!(
            d.hops,
            distances.distance(d.src, d.dst) as u64,
            "packet {} -> {} took a non-minimal hop count",
            d.src,
            d.dst
        );
    }
}
