//! Integration tests for the traced run mode and the observability
//! figure: recorder output must be deterministic, identical across
//! engine parallelism, and consistent with the untraced simulation.

use noc_core::figures::ext_link_heatmap;
use noc_core::{Experiment, FigureOptions, Parallelism, TopologySpec, TrafficSpec};
use noc_sim::SimConfig;

/// The ISSUE's reference trace workload: spidergon-16, single hot-spot
/// at node 0.
fn hotspot_experiment() -> Experiment {
    Experiment {
        topology: TopologySpec::Spidergon { nodes: 16 },
        traffic: TrafficSpec::SingleHotspot { target: 0 },
        config: SimConfig::builder()
            .injection_rate(0.2)
            .warmup_cycles(100)
            .measure_cycles(800)
            .seed(2006)
            .build()
            .unwrap(),
    }
}

#[test]
fn traced_run_digest_is_reproducible() {
    let exp = hotspot_experiment();
    let (res_a, rec_a) = exp.run_traced_with_seed(exp.config.seed).unwrap();
    let (res_b, rec_b) = exp.run_traced_with_seed(exp.config.seed).unwrap();
    assert_eq!(res_a, res_b);
    assert_eq!(rec_a.digest(), rec_b.digest());
    assert_eq!(rec_a.to_jsonl(), rec_b.to_jsonl());
    assert_eq!(rec_a.timeseries_csv(), rec_b.timeseries_csv());
    assert_eq!(rec_a.links_csv(), rec_b.links_csv());
}

#[test]
fn traced_digests_identical_across_engine_parallelism() {
    // Fan the same traced run out through the deterministic engine
    // under both thread policies; every worker must produce the same
    // bytes — the property the CI trace smoke step checks end to end.
    let digests = |par: Parallelism| -> Vec<u64> {
        let jobs: Vec<_> = (0..4)
            .map(|i| {
                move || {
                    let exp = hotspot_experiment();
                    let (_, rec) = exp
                        .run_traced_with_seed(exp.config.seed.wrapping_add(i % 2))
                        .unwrap();
                    rec.digest()
                }
            })
            .collect();
        noc_core::run_indexed(jobs, par)
    };
    let sequential = digests(Parallelism::Sequential);
    let threaded = digests(Parallelism::Fixed(4));
    assert_eq!(sequential, threaded);
    // Same seed, same digest; different seed, different digest.
    assert_eq!(sequential[0], sequential[2]);
    assert_ne!(sequential[0], sequential[1]);
}

#[test]
fn traced_run_matches_untraced_counters() {
    let exp = hotspot_experiment();
    let plain = exp.run_with_seed(exp.config.seed).unwrap();
    let (traced, rec) = exp.run_traced_with_seed(exp.config.seed).unwrap();
    assert_eq!(plain, traced, "tracing must not perturb the simulation");
    // The recorder watches the whole run, warmup included.
    assert_eq!(
        rec.observed_cycles(),
        exp.config.warmup_cycles + plain.stats.measured_cycles
    );
    // One decomposition per delivered packet; the recorder also sees
    // the packets delivered during warmup, so it records at least as
    // many as the measured statistics.
    assert!(rec.breakdown().total.count() >= plain.stats.packets_delivered);
    let link_total: u64 = rec.link_flits().iter().flatten().sum();
    let csv_total: u64 = rec
        .links_csv()
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(2).unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(link_total, csv_total);
}

#[test]
fn link_heatmap_covers_every_link_per_family() {
    let opts = FigureOptions::quick();
    let fig = ext_link_heatmap(&opts).unwrap();
    assert_eq!(fig.series.len(), 3);
    // Link counts at N = 16: ring 2N = 32, spidergon 3N = 48,
    // 4x4 mesh 2(m-1)n + 2(n-1)m = 48.
    for (label, links) in [("ring-16", 32), ("spidergon-16", 48), ("mesh-16", 48)] {
        let s = fig.series_by_label(label).unwrap();
        assert_eq!(s.points.len(), links, "{label}");
        assert!(s.points.iter().all(|p| p.y >= 0.0 && p.y <= 1.0));
        assert!(s.points.iter().any(|p| p.y > 0.0), "{label} all idle");
    }
    // Hot-spot asymmetry: the busiest ring link carries far more than
    // the median ring link.
    let ring = fig.series_by_label("ring-16").unwrap();
    let mut ys: Vec<f64> = ring.points.iter().map(|p| p.y).collect();
    ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(ys[ys.len() - 1] > 2.0 * ys[ys.len() / 2]);
}
