//! Acceptance proofs for the content-addressed experiment cache:
//!
//! * **fingerprint sensitivity** — changing any single field of the
//!   topology spec, traffic spec, `SimConfig`, or the seed changes the
//!   fingerprint (property-based over random experiment points);
//! * **cross-process stability** — the fingerprint of a pinned spec
//!   under a pinned code-version token equals a hard-coded golden
//!   value (FNV-1a over a canonical encoding has no per-process
//!   state to vary);
//! * **invalidation** — bumping `CACHE_SCHEMA` or changing the
//!   code-version token re-keys every point;
//! * **corruption robustness** — truncated and bit-flipped records are
//!   rejected by the checksum, the point is recomputed, the bad entry
//!   is replaced, and nothing ever panics or returns a wrong result;
//! * **incremental scheduling** — a cold pass simulates and stores
//!   every point, a warm pass answers all of them from disk
//!   bit-identically, sequential or parallel.

use noc_core::cache::{
    self, canonical_key, code_version_token, fingerprint, fingerprint_with, run_cached,
    unique_temp_dir, ExperimentCache, CACHE_SCHEMA,
};
use noc_core::{Experiment, ExperimentJob, Parallelism, TopologySpec, TrafficSpec};
use noc_sim::SimConfig;
use proptest::prelude::*;

fn topology(pick: u8, size: usize) -> TopologySpec {
    match pick % 3 {
        0 => TopologySpec::Ring {
            nodes: size.clamp(4, 32),
        },
        1 => TopologySpec::Spidergon {
            nodes: size.clamp(2, 16) * 4,
        },
        _ => TopologySpec::MeshBalanced {
            nodes: size.clamp(4, 32),
        },
    }
}

fn experiment(pick: u8, size: usize, hotspot: bool, rate: f64, seed: u64) -> Experiment {
    Experiment {
        topology: topology(pick, size),
        traffic: if hotspot {
            TrafficSpec::SingleHotspot { target: 0 }
        } else {
            TrafficSpec::Uniform
        },
        config: SimConfig::builder()
            .injection_rate(rate)
            .warmup_cycles(10)
            .measure_cycles(100)
            .seed(seed)
            .build()
            .unwrap(),
    }
}

/// A fast experiment for tests that actually simulate.
fn small_experiment(rate: f64) -> Experiment {
    experiment(1, 2, false, rate, 7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-field change re-keys the point; re-hashing the same
    /// point is stable.
    #[test]
    fn fingerprint_sensitive_to_every_field(
        pick in 0u8..3,
        size in 2usize..9,
        hotspot_pick in 0u8..2,
        rate in 0.05f64..0.5,
        seed in 0u64..1_000,
    ) {
        let hotspot = hotspot_pick == 1;
        let base = experiment(pick, size, hotspot, rate, seed);
        let fp = fingerprint(&base, seed);
        prop_assert_eq!(fp, fingerprint(&base, seed), "re-hash must be stable");

        // Seed (the replication index) re-keys.
        prop_assert_ne!(fp, fingerprint(&base, seed.wrapping_add(1)));

        // Topology family / size re-keys.
        let mut other_topology = base.clone();
        other_topology.topology = topology(pick + 1, size);
        prop_assert_ne!(fp, fingerprint(&other_topology, seed));
        let mut grown = base.clone();
        grown.topology = topology(pick, size + 8);
        prop_assert_ne!(fp, fingerprint(&grown, seed));

        // Traffic pattern re-keys.
        let mut other_traffic = base.clone();
        other_traffic.traffic = if hotspot {
            TrafficSpec::Uniform
        } else {
            TrafficSpec::SingleHotspot { target: 0 }
        };
        prop_assert_ne!(fp, fingerprint(&other_traffic, seed));

        // Every SimConfig knob that can change the simulation re-keys.
        let perturbations: Vec<(&str, Experiment)> = vec![
            ("injection_rate", {
                let mut e = base.clone();
                e.config.injection_rate += 0.01;
                e
            }),
            ("packet_len", {
                let mut e = base.clone();
                e.config.packet_len += 1;
                e
            }),
            ("input_buffer_capacity", {
                let mut e = base.clone();
                e.config.input_buffer_capacity += 1;
                e
            }),
            ("output_buffer_capacity", {
                let mut e = base.clone();
                e.config.output_buffer_capacity += 1;
                e
            }),
            ("sink_rate", {
                let mut e = base.clone();
                e.config.sink_rate += 1;
                e
            }),
            ("warmup_cycles", {
                let mut e = base.clone();
                e.config.warmup_cycles += 1;
                e
            }),
            ("measure_cycles", {
                let mut e = base.clone();
                e.config.measure_cycles += 1;
                e
            }),
            ("sample_interval", {
                let mut e = base.clone();
                e.config.sample_interval += 1;
                e
            }),
            ("router_delay", {
                let mut e = base.clone();
                e.config.router_delay += 1;
                e
            }),
            ("record_deliveries", {
                let mut e = base.clone();
                e.config.record_deliveries = !e.config.record_deliveries;
                e
            }),
            ("sparse", {
                let mut e = base.clone();
                e.config.sparse = !e.config.sparse;
                e
            }),
            ("compiled_routes", {
                let mut e = base.clone();
                e.config.compiled_routes = !e.config.compiled_routes;
                e
            }),
        ];
        let mut seen = vec![fp];
        for (field, perturbed) in &perturbations {
            let other = fingerprint(perturbed, seed);
            prop_assert!(
                !seen.contains(&other),
                "perturbing {} must produce a fresh fingerprint",
                field
            );
            seen.push(other);
        }
    }
}

#[test]
fn fingerprint_is_stable_across_processes() {
    // FNV-1a over the canonical JSON has no per-process state (no
    // randomized hasher, no pointers), so a pinned spec under a pinned
    // schema/token must hash to this golden value in every process and
    // on every host. If this assertion ever fires, the canonical
    // encoding changed — which requires a `CACHE_SCHEMA` bump.
    let exp = experiment(1, 2, true, 0.25, 42);
    let fp = fingerprint_with(1, "test-token", &exp, 42);
    let again = fingerprint_with(1, "test-token", &exp, 42);
    assert_eq!(fp, again);
    assert_eq!(fp.hex().len(), 32);
    assert_eq!(fp.hex(), "ea26fe95856713929254ee31de28ca16");
}

#[test]
fn schema_bump_and_code_version_invalidate_all_keys() {
    let exp = small_experiment(0.2);
    let token = code_version_token();
    let current = fingerprint_with(CACHE_SCHEMA, &token, &exp, 7);
    assert_eq!(
        current,
        fingerprint(&exp, 7),
        "fingerprint() must be fingerprint_with(current schema, current token)"
    );
    // Bumping the schema re-keys the identical spec.
    assert_ne!(current, fingerprint_with(CACHE_SCHEMA + 1, &token, &exp, 7));
    // Any crate-version change re-keys too.
    assert_ne!(
        current,
        fingerprint_with(CACHE_SCHEMA, &format!("{token}+dev"), &exp, 7)
    );
    // The canonical key spells out both, so records are self-describing.
    let key = canonical_key(&exp, 7);
    assert!(key.contains(&format!("\"schema\":{CACHE_SCHEMA}")), "{key}");
    assert!(key.contains(&token), "{key}");
}

#[test]
fn truncated_record_is_rejected_recomputed_and_replaced() {
    let dir = unique_temp_dir("noc-cache-truncate");
    let cache = ExperimentCache::at(&dir);
    let exp = small_experiment(0.2);
    let fresh = exp.run_with_seed(7).unwrap();
    cache.store(&exp, 7, &fresh).unwrap();
    let record = record_paths(&cache)[0].clone();
    let full = std::fs::read(&record).unwrap();

    // Truncate at several depths, including inside the header.
    for keep in [0usize, 10, 24, full.len() / 2, full.len() - 1] {
        std::fs::write(&record, &full[..keep]).unwrap();
        assert!(
            cache.lookup(&exp, 7).is_none(),
            "truncated to {keep} bytes must miss"
        );
        // The corrupt entry was evicted on lookup; recompute and
        // re-store to restore the cache for the next iteration.
        assert!(!record.exists(), "corrupt record must be evicted");
        let recomputed = run_cached(&cache, &exp, 7).unwrap();
        assert_eq!(
            recomputed, fresh,
            "recomputed point must equal the original"
        );
        assert_eq!(std::fs::read(&record).unwrap(), full, "entry replaced");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_record_is_rejected_recomputed_and_replaced() {
    let dir = unique_temp_dir("noc-cache-bitflip");
    let cache = ExperimentCache::at(&dir);
    let exp = small_experiment(0.2);
    let fresh = exp.run_with_seed(7).unwrap();
    cache.store(&exp, 7, &fresh).unwrap();
    let record = record_paths(&cache)[0].clone();
    let full = std::fs::read(&record).unwrap();

    // Flip one bit in the magic, the header lengths, the checksum, the
    // key and the payload — every region must be caught.
    for position in [0usize, 9, 17, 30, full.len() - 3] {
        let mut damaged = full.clone();
        damaged[position] ^= 0x10;
        std::fs::write(&record, &damaged).unwrap();
        let looked_up = cache.lookup(&exp, 7);
        // Either rejected outright (None) or — only if the flipped
        // byte is outside every checked region — identical anyway;
        // a *different* result must never come back.
        if let Some(result) = looked_up {
            panic!(
                "bit flip at {position} returned a record; checksum must reject it: \
                 identical={}",
                result == fresh
            );
        }
        let recomputed = run_cached(&cache, &exp, 7).unwrap();
        assert_eq!(recomputed, fresh);
        assert_eq!(std::fs::read(&record).unwrap(), full, "entry replaced");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_then_warm_pass_is_incremental_and_bit_identical() {
    let dir = unique_temp_dir("noc-cache-coldwarm");
    let cache = ExperimentCache::at(&dir);
    let jobs = || -> Vec<ExperimentJob> {
        [0.1, 0.2, 0.3]
            .iter()
            .flat_map(|&rate| {
                (0..2u64).map(move |r| ExperimentJob {
                    experiment: small_experiment(rate),
                    seed: 7 + r,
                })
            })
            .collect()
    };
    // Reference: no cache involved at all.
    let reference = noc_core::run_experiment_jobs_with_cache(
        jobs(),
        Parallelism::Sequential,
        &ExperimentCache::disabled(),
    )
    .unwrap();

    let before = cache::counters();
    let cold =
        noc_core::run_experiment_jobs_with_cache(jobs(), Parallelism::Fixed(4), &cache).unwrap();
    let cold_delta = cache::counters().since(&before);
    assert_eq!(cold, reference, "cold pass must equal uncached results");
    assert_eq!(
        (cold_delta.hits, cold_delta.misses, cold_delta.stores),
        (0, 6, 6)
    );

    // Warm: every point answered from disk, same bytes, no simulation.
    for parallelism in [Parallelism::Sequential, Parallelism::Fixed(4)] {
        let before = cache::counters();
        let warm = noc_core::run_experiment_jobs_with_cache(jobs(), parallelism, &cache).unwrap();
        let delta = cache::counters().since(&before);
        assert_eq!(warm, reference, "warm pass must equal uncached results");
        assert_eq!((delta.hits, delta.misses), (6, 0));
    }

    // Partially warm: two new seeds slot in between existing points and
    // only they simulate, in deterministic order.
    let mut extended = jobs();
    extended.insert(
        2,
        ExperimentJob {
            experiment: small_experiment(0.1),
            seed: 99,
        },
    );
    extended.push(ExperimentJob {
        experiment: small_experiment(0.3),
        seed: 100,
    });
    let before = cache::counters();
    let mixed =
        noc_core::run_experiment_jobs_with_cache(extended.clone(), Parallelism::Fixed(2), &cache)
            .unwrap();
    let delta = cache::counters().since(&before);
    assert_eq!((delta.hits, delta.misses), (6, 2));
    for (job, result) in extended.iter().zip(&mixed) {
        assert_eq!(result, &job.run().unwrap(), "splice order must match jobs");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gc_keeps_newest_records_within_budget() {
    let dir = unique_temp_dir("noc-cache-gc");
    let cache = ExperimentCache::at(&dir);
    let exp = small_experiment(0.2);
    let mut sizes = Vec::new();
    for seed in 0..4u64 {
        let result = exp.run_with_seed(seed).unwrap();
        cache.store(&exp, seed, &result).unwrap();
        // Space out mtimes so "oldest first" is well defined even on
        // coarse filesystem clocks.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sizes.push(cache.stats().unwrap().total_bytes);
    }
    let total = *sizes.last().unwrap();
    let budget = total - 1; // force at least one eviction
    let outcome = cache.gc(budget).unwrap();
    assert!(outcome.removed >= 1);
    assert!(outcome.remaining.total_bytes <= budget);
    assert_eq!(
        outcome.remaining.entries,
        4 - outcome.removed,
        "{outcome:?}"
    );
    // The newest record survived; the oldest was the first to go.
    assert!(
        cache.lookup(&exp, 3).is_some(),
        "newest record must survive"
    );
    assert!(
        cache.lookup(&exp, 0).is_none(),
        "oldest record must be evicted"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// All record files in the store, sorted.
fn record_paths(cache: &ExperimentCache) -> Vec<std::path::PathBuf> {
    let mut paths = Vec::new();
    let mut stack = vec![cache.dir().unwrap().to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "noc") {
                paths.push(path);
            }
        }
    }
    paths.sort();
    paths
}
