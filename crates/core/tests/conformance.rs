//! The acceptance-criteria proofs for the conformance harness:
//!
//! * audited and unaudited runs of the same seed produce identical
//!   `SimStats`;
//! * parallel (4 workers) matches sequential bit-for-bit with auditing
//!   on;
//! * the sparse active-set core (idle-router skipping, fast-forward,
//!   compiled route tables) matches the dense reference core
//!   bit-for-bit, unaudited and audited;
//! * cached results equal freshly simulated results bit-for-bit, and a
//!   warm cache answers every point without simulating;
//! * zero violations across the paper's topology triple at matched
//!   sizes, under uniform and hot-spot traffic, below and above
//!   saturation.
//!
//! CI runs this suite under both `NOC_THREADS=1` and `NOC_THREADS=4`;
//! the explicit `Parallelism::Fixed` policies below make the
//! four-worker proof independent of the environment either way.

use noc_core::{
    matched_size_cases, run_conformance, Experiment, Parallelism, TopologySpec, TrafficSpec,
};
use noc_sim::SimConfig;

fn base_config() -> SimConfig {
    SimConfig::builder()
        .warmup_cycles(200)
        .measure_cycles(1_500)
        .seed(42)
        .build()
        .unwrap()
}

#[test]
fn topology_triple_conforms_with_four_workers() {
    let cases = matched_size_cases(16, &base_config()).unwrap();
    assert_eq!(cases.len(), 12);
    let report = run_conformance(&cases, 2, Parallelism::Fixed(4)).unwrap();
    assert!(report.passed(), "conformance failed:\n{report}");
    for outcome in &report.outcomes {
        assert!(outcome.audited_matches_unaudited, "{outcome}");
        assert!(outcome.parallel_matches_sequential, "{outcome}");
        assert!(outcome.sparse_matches_dense, "{outcome}");
        assert!(outcome.cached_matches_fresh, "{outcome}");
        assert_eq!(outcome.violations, 0, "{outcome}");
        assert!(outcome.checks > 0, "{outcome}");
    }
}

#[test]
fn sparse_and_dense_cores_agree_for_explicit_seeds() {
    // Direct dense-vs-sparse differential, independent of the grid: the
    // full-featured sparse core (active set + fast-forward + compiled
    // routes) against the dense reference, on the paper's hot-spot
    // scenario where routers idle unevenly.
    let sparse_exp = Experiment {
        topology: TopologySpec::Spidergon { nodes: 16 },
        traffic: TrafficSpec::SingleHotspot { target: 0 },
        config: base_config(),
    };
    let mut dense_exp = sparse_exp.clone();
    dense_exp.config.sparse = false;
    dense_exp.config.compiled_routes = false;
    assert!(sparse_exp.config.sparse, "sparse core is the default");
    for seed in [7u64, 1234] {
        let sparse = sparse_exp.run_with_seed(seed).unwrap();
        let dense = dense_exp.run_with_seed(seed).unwrap();
        assert_eq!(sparse, dense, "seed {seed}: sparse core diverged");
    }
}

#[test]
fn sequential_policy_agrees_with_fixed_policy() {
    // The same grid through two different worker policies must produce
    // the same outcomes (the engine is deterministic by construction).
    let cases = matched_size_cases(8, &base_config()).unwrap();
    let a = run_conformance(&cases, 2, Parallelism::Sequential).unwrap();
    let b = run_conformance(&cases, 2, Parallelism::Fixed(4)).unwrap();
    assert_eq!(a, b);
    assert!(a.passed(), "{a}");
}

#[test]
fn audited_equals_unaudited_for_explicit_seeds() {
    let exp = Experiment {
        topology: TopologySpec::Spidergon { nodes: 16 },
        traffic: TrafficSpec::SingleHotspot { target: 0 },
        config: base_config(),
    };
    for seed in [1u64, 99, 0xBAD5EED] {
        let plain = exp.run_with_seed(seed).unwrap();
        let (audited, report) = exp.run_audited_with_seed(seed).unwrap();
        assert_eq!(plain, audited, "seed {seed}: audit perturbed the run");
        assert!(report.is_clean(), "seed {seed}:\n{report}");
        assert!(report.preflight_ran);
    }
}
