//! Analytical topology exploration: diameter, average distance, link
//! counts and degrees for every family at a chosen node count —
//! the data behind the paper's Figures 2-3 and its Section 2 table.
//!
//! Run with an optional node count (default 24):
//!
//! ```text
//! cargo run --example topology_explorer -- 40
//! ```

use spidergon_noc::topology::{
    analytical, metrics::TopologyMetrics, IrregularMesh, RectMesh, Ring, Spidergon, Topology,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(24);
    if n < 4 {
        return Err("node count must be at least 4".into());
    }

    println!("topology metrics for N = {n} (links are unidirectional)");
    println!();
    println!(
        "{:>22}  {:>4}  {:>6}  {:>4}  {:>8}  {:>8}",
        "topology", "N", "links", "ND", "E[D]", "degree"
    );

    let mut topos: Vec<Box<dyn Topology>> = vec![Box::new(Ring::new(n)?)];
    if n.is_multiple_of(2) {
        topos.push(Box::new(Spidergon::new(n)?));
    }
    topos.push(Box::new(RectMesh::balanced(n)?));
    topos.push(Box::new(IrregularMesh::realistic(n)?));

    for topo in &topos {
        let m = TopologyMetrics::compute(topo.as_ref());
        let degree = if m.min_degree == m.max_degree {
            format!("{}", m.min_degree)
        } else {
            format!("{}-{}", m.min_degree, m.max_degree)
        };
        println!(
            "{:>22}  {:>4}  {:>6}  {:>4}  {:>8.3}  {:>8}",
            m.label, m.num_nodes, m.num_links, m.diameter, m.mean_distance_paper, degree
        );
    }

    println!();
    println!("closed forms (paper section 2, Spidergon E[D] erratum corrected):");
    println!(
        "  ring      ND = floor(N/2) = {:>3}   E[D] ~ N/4      = {:.3}",
        analytical::ring_diameter(n),
        analytical::ring_average_distance(n)
    );
    if n.is_multiple_of(2) {
        println!(
            "  spidergon ND = ceil(N/4)  = {:>3}   E[D] (exact)   = {:.3}",
            analytical::spidergon_diameter(n),
            analytical::spidergon_average_distance(n)
        );
    }
    let mesh = RectMesh::balanced(n)?;
    println!(
        "  mesh {:>2}x{:<2} ND = m+n-2   = {:>3}   E[D] ~ (m+n)/3 = {:.3}",
        mesh.cols(),
        mesh.rows(),
        analytical::mesh_diameter(mesh.cols(), mesh.rows()),
        analytical::mesh_average_distance_approx(mesh.cols(), mesh.rows())
    );
    Ok(())
}
