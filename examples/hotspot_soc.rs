//! The paper's SoC scenario: every IP talks to one external memory
//! controller (a single hot-spot destination).
//!
//! Reproduces the qualitative finding of Figures 6-7: under hot-spot
//! traffic the **destination node**, not the interconnect, is the
//! bottleneck — Ring, Spidergon and 2D Mesh all converge to the same
//! throughput ceiling (the sink's consumption rate, one flit/cycle),
//! so the simpler, constant-degree Spidergon gives the same performance
//! as the mesh at lower cost.
//!
//! Run with:
//!
//! ```text
//! cargo run --example hotspot_soc
//! ```

use spidergon_noc::sim::SimConfig;
use spidergon_noc::{Experiment, TopologySpec, TrafficSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let topologies = [
        ("ring", TopologySpec::Ring { nodes: n }),
        ("spidergon", TopologySpec::Spidergon { nodes: n }),
        ("2d-mesh", TopologySpec::MeshBalanced { nodes: n }),
    ];
    let rates = [0.05, 0.1, 0.2, 0.4];

    println!("single hot-spot (node 0 = external memory), N = {n}");
    println!("aggregate offered load = lambda * {} sources", n - 1);
    println!();
    println!(
        "{:>8}  {:>10}  {:>12}  {:>12}  {:>10}",
        "lambda", "topology", "throughput", "latency", "accepted"
    );

    for &lambda in &rates {
        for (name, spec) in topologies {
            let result = Experiment {
                topology: spec,
                traffic: TrafficSpec::SingleHotspot { target: 0 },
                config: SimConfig::builder()
                    .injection_rate(lambda)
                    .warmup_cycles(1_000)
                    .measure_cycles(8_000)
                    .seed(7)
                    .build()?,
            }
            .run()?;
            println!(
                "{:>8.2}  {:>10}  {:>12.4}  {:>12.1}  {:>9.1}%",
                lambda,
                name,
                result.throughput(),
                result.latency(),
                100.0 * result.stats.acceptance_ratio(),
            );
        }
        println!();
    }

    println!("note: throughput saturates near 1 flit/cycle for every topology");
    println!("      once (N-1) * lambda > 1 — the hot spot is the bottleneck.");
    Ok(())
}
