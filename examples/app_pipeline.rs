//! Application-trace replay: a streaming pipeline (e.g. a video
//! decoder) mapped onto a Spidergon NoC — the paper's future-work item
//! "specific traffic patterns originated by common applications".
//!
//! Four pipeline stages are mapped to IPs around the Spidergon; every
//! `period` cycles an item enters stage 0, and each stage forwards its
//! item to the next stage. The trace replays exactly (no stochastic
//! sources), and the per-packet delivery log shows end-to-end behavior.
//!
//! Run with:
//!
//! ```text
//! cargo run --example app_pipeline
//! ```

use spidergon_noc::routing::SpidergonAcrossFirst;
use spidergon_noc::sim::{SimConfig, Simulation};
use spidergon_noc::topology::{NodeId, Spidergon};
use spidergon_noc::traffic::Trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let topo = Spidergon::new(n)?;
    let routing = SpidergonAcrossFirst::new(&topo);

    // Stage mapping: input DMA -> decoder -> filter -> display,
    // deliberately spread across the ring so the across links matter.
    let stages = [
        NodeId::new(0),
        NodeId::new(8), // opposite node: one across hop
        NodeId::new(12),
        NodeId::new(4),
    ];
    let items = 200;
    let period = 8;
    let trace = Trace::pipeline(n, &stages, items, period)?;
    println!(
        "pipeline {:?}, {} items, one every {period} cycles -> {} packets",
        stages.iter().map(|s| s.index()).collect::<Vec<_>>(),
        items,
        trace.len()
    );

    let config = SimConfig::builder()
        .warmup_cycles(0)
        .measure_cycles(trace.last_cycle().unwrap_or(0) + 500)
        .record_deliveries(true)
        .build()?;
    let mut sim = Simulation::with_trace(Box::new(topo), Box::new(routing), &trace, config)?;
    let stats = sim.run()?;

    println!(
        "delivered {} / {} packets, mean latency {:.1} cycles, mean hops {:.2}",
        stats.packets_delivered,
        trace.len(),
        stats.latency.mean().unwrap_or(f64::NAN),
        stats.mean_hops().unwrap_or(f64::NAN),
    );

    // Per-stage-link latency report from the delivery log.
    println!();
    println!(
        "{:>12}  {:>8}  {:>12}  {:>10}",
        "link", "packets", "mean latency", "mean hops"
    );
    for window in stages.windows(2) {
        let (src, dst) = (window[0], window[1]);
        let deliveries: Vec<_> = sim
            .deliveries()
            .iter()
            .filter(|d| d.src == src && d.dst == dst)
            .collect();
        let count = deliveries.len();
        let lat: f64 =
            deliveries.iter().map(|d| d.latency as f64).sum::<f64>() / count.max(1) as f64;
        let hops: f64 = deliveries.iter().map(|d| d.hops as f64).sum::<f64>() / count.max(1) as f64;
        println!(
            "{:>12}  {:>8}  {:>12.1}  {:>10.2}",
            format!("{src}->{dst}"),
            count,
            lat,
            hops
        );
    }
    Ok(())
}
