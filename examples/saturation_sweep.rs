//! Saturation analysis under homogeneous uniform traffic: sweep the
//! injection rate for each topology and report where each network
//! saturates — the quantitative version of the paper's Figures 10-11
//! ("Ring topology saturates first").
//!
//! Run with an optional node count (default 16):
//!
//! ```text
//! cargo run --release --example saturation_sweep -- 24
//! ```

use spidergon_noc::sim::SimConfig;
use spidergon_noc::{
    saturation_point, sweep_rates, TopologySpec, TrafficSpec, DEFAULT_ACCEPTANCE_THRESHOLD,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(16);
    if n < 4 || !n.is_multiple_of(2) {
        return Err("node count must be even and at least 4".into());
    }

    let base = SimConfig::builder()
        .warmup_cycles(1_000)
        .measure_cycles(8_000)
        .seed(11)
        .build()?;
    let rates: Vec<f64> = (1..=12).map(|i| i as f64 * 0.05).collect();

    println!("uniform traffic, N = {n}, rates 0.05..0.60 flits/cycle/source");
    println!();
    println!(
        "{:>12}  {:>14}  {:>16}  {:>14}",
        "topology", "saturation rate", "sat. throughput", "sat. latency"
    );

    for (name, spec) in [
        ("ring", TopologySpec::Ring { nodes: n }),
        ("spidergon", TopologySpec::Spidergon { nodes: n }),
        ("mesh", TopologySpec::MeshBalanced { nodes: n }),
    ] {
        let sweep = sweep_rates(spec, TrafficSpec::Uniform, &base, &rates, 2)?;
        match saturation_point(&sweep, DEFAULT_ACCEPTANCE_THRESHOLD) {
            Some(sat) => println!(
                "{:>12}  {:>14.2}  {:>16.3}  {:>14.1}",
                name, sat.rate, sat.throughput, sat.latency
            ),
            None => println!(
                "{:>12}  {:>14}  {:>16.3}  {:>14}",
                name,
                "> 0.60",
                sweep
                    .points
                    .last()
                    .map(|p| p.throughput_mean)
                    .unwrap_or(0.0),
                "-"
            ),
        }
    }

    println!();
    println!("expected ordering (paper fig. 10): ring saturates first;");
    println!("spidergon and mesh stay close, mesh ahead only at high N.");
    Ok(())
}
