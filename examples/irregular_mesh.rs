//! Irregular meshes: the paper's "first work considering irregular mesh
//! topologies".
//!
//! A SoC floorplan rarely yields a perfect rectangle of IPs. This
//! example shows (a) how the metrics of the "real" mesh you actually
//! get fluctuate with the node count while Spidergon degrades smoothly,
//! and (b) that the simulator runs wormhole traffic on an irregular
//! mesh directly, using the amended XY routing.
//!
//! Run with:
//!
//! ```text
//! cargo run --example irregular_mesh
//! ```

use spidergon_noc::routing::{cdg::CdgAnalysis, MeshXY};
use spidergon_noc::sim::SimConfig;
use spidergon_noc::topology::{analytical, metrics, IrregularMesh, Topology};
use spidergon_noc::{Experiment, TopologySpec, TrafficSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("diameter of the mesh you actually get, N = 12..26:");
    println!();
    println!(
        "{:>4}  {:>18}  {:>14}  {:>12}",
        "N", "irregular mesh", "mesh diameter", "spidergon ND"
    );
    for n in 12..=26usize {
        let mesh = IrregularMesh::realistic(n)?;
        let nd = metrics::diameter(&mesh);
        let sg = if n % 2 == 0 {
            format!("{}", analytical::spidergon_diameter(n))
        } else {
            "-".to_owned()
        };
        println!("{:>4}  {:>18}  {:>14}  {:>12}", n, mesh.label(), nd, sg);
    }

    // A concrete irregular mesh: 14 IPs on a 4-wide grid (3 full rows
    // plus 2 nodes). Verify the amended XY routing is deadlock-free,
    // then simulate uniform traffic on it.
    let n = 14;
    let mesh = IrregularMesh::realistic(n)?;
    let routing = MeshXY::new_irregular(&mesh);
    let analysis = CdgAnalysis::analyze(&routing, &mesh);
    println!();
    println!(
        "{}: {} channels, {} dependencies, deadlock-free = {}",
        mesh.label(),
        analysis.num_channels(),
        analysis.num_dependencies(),
        analysis.is_deadlock_free()
    );

    let result = Experiment {
        topology: TopologySpec::RealisticMesh { nodes: n },
        traffic: TrafficSpec::Uniform,
        config: SimConfig::builder()
            .injection_rate(0.15)
            .warmup_cycles(1_000)
            .measure_cycles(8_000)
            .seed(3)
            .build()?,
    }
    .run()?;
    println!(
        "simulated: throughput {:.4} flits/cycle, mean latency {:.1} cycles, mean hops {:.2}",
        result.throughput(),
        result.latency(),
        result.stats.mean_hops().unwrap_or(f64::NAN)
    );
    println!(
        "exact mean distance of {}: {:.2} hops",
        mesh.label(),
        metrics::average_distance(&mesh)
    );
    Ok(())
}
