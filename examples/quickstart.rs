//! Quickstart: simulate one Spidergon NoC under uniform traffic and
//! print the headline statistics.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spidergon_noc::sim::SimConfig;
use spidergon_noc::{Experiment, TopologySpec, TrafficSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-node Spidergon with the paper's defaults: 6-flit packets,
    // Poisson sources, 1-flit input buffers, 3-flit output buffers,
    // a pair of virtual channels with dateline deadlock avoidance.
    let experiment = Experiment {
        topology: TopologySpec::Spidergon { nodes: 16 },
        traffic: TrafficSpec::Uniform,
        config: SimConfig::builder()
            .injection_rate(0.2) // lambda, flits/cycle per source
            .warmup_cycles(1_000)
            .measure_cycles(10_000)
            .seed(42)
            .build()?,
    };

    let result = experiment.run()?;
    let stats = &result.stats;

    println!("topology       : {}", result.topology_label);
    println!("traffic        : {}", result.traffic_label);
    println!(
        "injection rate : {} flits/cycle/source",
        result.injection_rate
    );
    println!();
    println!(
        "throughput     : {:.4} flits/cycle ({:.4} per node)",
        stats.throughput_flits_per_cycle(),
        stats.throughput_per_node()
    );
    println!(
        "latency        : mean {:.1} cycles, p50 {} / p95 {} / max {}",
        stats.latency.mean().unwrap_or(f64::NAN),
        stats.latency.percentile(50.0).unwrap_or(0),
        stats.latency.percentile(95.0).unwrap_or(0),
        stats.latency.max().unwrap_or(0),
    );
    println!(
        "delivered      : {} packets ({} flits) in {} cycles",
        stats.packets_delivered, stats.flits_delivered, stats.measured_cycles
    );
    println!(
        "mean hops      : {:.3}",
        stats.mean_hops().unwrap_or(f64::NAN)
    );
    println!("acceptance     : {:.3}", stats.acceptance_ratio());
    Ok(())
}
